//! The segmented log writer, the recovery scan, and the read-only
//! verify/inspect views.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::fault::{AppendFault, TearAction};
use crate::record::{parse_frame, Record};
use crate::WalError;

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: no acked admission is ever lost,
    /// even to power failure. The slowest policy by far.
    Always,
    /// `fdatasync` at most once per this many milliseconds (and at every
    /// segment rotation): bounds the power-loss window without paying a
    /// sync per job. The default, at 100 ms.
    IntervalMs(u64),
    /// Never sync explicitly; the OS flushes on its own schedule. Still
    /// exactly-once under a killed *process* (page cache survives
    /// SIGKILL), durable against power loss only after the kernel
    /// writeback interval.
    Never,
}

impl FsyncPolicy {
    /// Parse `always`, `never`, or a number of milliseconds.
    ///
    /// # Errors
    ///
    /// Describes the accepted forms.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            ms => ms
                .parse()
                .map(FsyncPolicy::IntervalMs)
                .map_err(|_| format!("fsync policy `{ms}` is not always|never|<milliseconds>")),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::IntervalMs(ms) => write!(f, "{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Log location and durability knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the active one reaches this size.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Defaults: 100 ms interval fsync, 64 MiB segments.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::IntervalMs(100),
            segment_bytes: 64 << 20,
        }
    }
}

/// Where and why a scan stopped accepting frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Damage {
    /// Index of the damaged segment.
    pub segment: u64,
    /// Byte offset of the first unreadable frame in that segment.
    pub offset: u64,
    /// Human-readable stop reason.
    pub reason: String,
}

/// What recovery did, for operators and the `scratch_wal_*` metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Valid frames accepted across all segments.
    pub frames: u64,
    /// Admission records seen.
    pub admitted: u64,
    /// Completion records seen.
    pub completed: u64,
    /// Checkpoint records seen.
    pub checkpoints: u64,
    /// Unfinished jobs re-admitted for execution.
    pub replayed: u64,
    /// Of those, jobs resuming from a durable checkpoint instead of
    /// re-running from scratch.
    pub resumed: u64,
    /// Jobs whose completion record suppressed re-execution.
    pub deduped: u64,
    /// Bytes truncated off the damaged segment's tail.
    pub torn_bytes: u64,
    /// Whole segments dropped because they sat past the damage.
    pub dropped_segments: u64,
    /// Recovery wall clock, milliseconds (scan + truncate, not replay).
    pub recovery_ms: u64,
}

/// One unfinished job recovered from the log, in admission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEntry {
    /// The original request id (completions must settle under it).
    pub id: u64,
    /// Tenant the job bills against.
    pub tenant: String,
    /// Submission label.
    pub label: String,
    /// The serialized submission exactly as admitted.
    pub payload: Vec<u8>,
    /// Newest durable checkpoint: output base address + snap bytes.
    pub checkpoint: Option<(u64, Vec<u8>)>,
}

/// Everything [`Wal::open`] recovered.
#[derive(Debug)]
pub struct Recovery {
    /// Unfinished jobs to re-admit, in admission order.
    pub pending: Vec<PendingEntry>,
    /// The operator-facing summary.
    pub report: RecoveryReport,
    /// First request id the restarted server may mint: one past the
    /// largest id in the log, so ids stay unique across lifetimes.
    pub next_id: u64,
}

/// What one append did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    /// Frame bytes written (header + payload).
    pub bytes: u64,
    /// Whether this append paid an fsync.
    pub synced: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

/// Existing segment files, sorted by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

/// Fold of one full scan: every valid frame in segment order, plus the
/// first damage (if any) and the segments sitting past it.
struct Scan {
    frames: u64,
    damage: Option<Damage>,
    /// Segments after the damaged one (whole files past the valid
    /// prefix), with their sizes.
    dropped: Vec<(PathBuf, u64)>,
    /// Bytes past the last valid frame inside the damaged segment.
    torn_bytes: u64,
    segments: u64,
    /// Index and valid length of the last surviving segment, if any.
    last_valid: Option<(u64, u64)>,
}

fn scan(dir: &Path, mut on_record: impl FnMut(&Record)) -> Result<Scan, WalError> {
    let mut result = Scan {
        frames: 0,
        damage: None,
        dropped: Vec::new(),
        torn_bytes: 0,
        segments: 0,
        last_valid: None,
    };
    for (index, path) in list_segments(dir)? {
        result.segments += 1;
        if result.damage.is_some() {
            let len = std::fs::metadata(&path)?.len();
            result.dropped.push((path, len));
            continue;
        }
        let buf = std::fs::read(&path)?;
        let mut offset = 0usize;
        loop {
            match parse_frame(&buf, offset) {
                Ok(None) => break,
                Ok(Some((record, consumed))) => {
                    on_record(&record);
                    result.frames += 1;
                    offset += consumed;
                }
                Err(reason) => {
                    result.torn_bytes = (buf.len() - offset) as u64;
                    result.damage = Some(Damage {
                        segment: index,
                        offset: offset as u64,
                        reason: reason.to_string(),
                    });
                    break;
                }
            }
        }
        result.last_valid = Some((index, offset as u64));
    }
    Ok(result)
}

/// Recovery fold state shared by [`Wal::open`] and the read-only views.
#[derive(Default)]
struct Fold {
    /// Admission order of ids (first admission wins on duplicates).
    order: Vec<u64>,
    admitted: BTreeMap<u64, (String, String, Vec<u8>)>,
    completed: BTreeMap<u64, u64>,
    checkpoints: BTreeMap<u64, (u64, Vec<u8>)>,
    admitted_count: u64,
    completed_count: u64,
    checkpoint_count: u64,
    max_id: Option<u64>,
}

impl Fold {
    fn absorb(&mut self, record: &Record) {
        let id = record.id();
        self.max_id = Some(self.max_id.map_or(id, |m| m.max(id)));
        match record {
            Record::Admitted {
                id,
                tenant,
                label,
                payload,
            } => {
                self.admitted_count += 1;
                if !self.admitted.contains_key(id) {
                    self.order.push(*id);
                    self.admitted
                        .insert(*id, (tenant.clone(), label.clone(), payload.clone()));
                }
            }
            Record::Completed { id, .. } => {
                self.completed_count += 1;
                *self.completed.entry(*id).or_insert(0) += 1;
            }
            Record::Checkpoint { id, out_addr, snap } => {
                self.checkpoint_count += 1;
                // Newest durable checkpoint wins; one completed or never
                // admitted is useless but harmless to remember.
                self.checkpoints.insert(*id, (*out_addr, snap.clone()));
            }
        }
    }
}

/// The log writer. One per serving process; appends are serialized by the
/// caller (the serving layer holds it in a mutex).
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    active: File,
    active_index: u64,
    active_len: u64,
    appends: u64,
    last_sync: Instant,
    hook: Option<Box<dyn AppendFault>>,
}

impl Wal {
    /// Open (or create) the log at `config.dir`, recover its state, and
    /// position the writer after the last valid frame.
    ///
    /// Torn or corrupt tails are truncated on disk here, so a subsequent
    /// [`verify`] of the directory reports clean.
    ///
    /// # Errors
    ///
    /// Filesystem failures only — damaged content is recovery input, not
    /// an error.
    pub fn open(config: WalConfig) -> Result<(Wal, Recovery), WalError> {
        let started = Instant::now();
        std::fs::create_dir_all(&config.dir)?;
        let mut fold = Fold::default();
        let scan = scan(&config.dir, |record| fold.absorb(record))?;

        // Truncate the damaged segment to its valid prefix and drop every
        // segment past it: the durable history is the longest valid
        // prefix, nothing else.
        let mut dropped_segments = 0u64;
        let mut torn_bytes = scan.torn_bytes;
        if let Some(damage) = &scan.damage {
            let path = segment_path(&config.dir, damage.segment);
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(damage.offset)?;
            file.sync_all()?;
            for (path, len) in &scan.dropped {
                torn_bytes += len;
                dropped_segments += 1;
                std::fs::remove_file(path)?;
            }
        }

        // The writer continues the last surviving segment unless it is
        // already past the rotation bound (or none exists yet).
        let (active_index, active_len) = match scan.last_valid {
            Some((index, len)) if len < config.segment_bytes => (index, len),
            Some((index, _)) => (index + 1, 0),
            None => (0, 0),
        };
        let active = OpenOptions::new()
            .append(true)
            .create(true)
            .open(segment_path(&config.dir, active_index))?;

        let pending: Vec<PendingEntry> = fold
            .order
            .iter()
            .filter(|id| !fold.completed.contains_key(id))
            .map(|id| {
                let (tenant, label, payload) = fold.admitted[id].clone();
                PendingEntry {
                    id: *id,
                    tenant,
                    label,
                    payload,
                    checkpoint: fold.checkpoints.get(id).cloned(),
                }
            })
            .collect();
        let resumed = pending.iter().filter(|p| p.checkpoint.is_some()).count() as u64;
        let deduped = fold.completed.len() as u64;
        let report = RecoveryReport {
            segments: scan.segments,
            frames: scan.frames,
            admitted: fold.admitted_count,
            completed: fold.completed_count,
            checkpoints: fold.checkpoint_count,
            replayed: pending.len() as u64,
            resumed,
            deduped,
            torn_bytes,
            dropped_segments,
            recovery_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        };
        let recovery = Recovery {
            pending,
            report,
            next_id: fold.max_id.map_or(0, |m| m + 1),
        };
        Ok((
            Wal {
                config,
                active,
                active_index,
                active_len,
                appends: 0,
                last_sync: Instant::now(),
                hook: None,
            },
            recovery,
        ))
    }

    /// The configured directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Index of the segment currently receiving appends.
    #[must_use]
    pub fn active_segment(&self) -> u64 {
        self.active_index
    }

    /// Install a test-only append saboteur (see [`crate::fault`]).
    pub fn set_fault_hook(&mut self, hook: Box<dyn AppendFault>) {
        self.hook = Some(hook);
    }

    /// Append one record, honouring the fsync policy and rotating the
    /// segment when it fills.
    ///
    /// # Errors
    ///
    /// Filesystem failure, an oversized record, or an installed fault
    /// hook tearing the write.
    pub fn append(&mut self, record: &Record) -> Result<AppendInfo, WalError> {
        let frame = record.frame()?;
        self.appends += 1;
        if let Some(hook) = &mut self.hook {
            if let TearAction::Tear { keep, abort } = hook.on_append(self.appends, &frame) {
                let keep = keep.min(frame.len());
                self.active.write_all(&frame[..keep])?;
                self.active.flush()?;
                self.active_len += keep as u64;
                if abort {
                    // Make the torn bytes reach the disk exactly as a
                    // power cut would leave them, then die mid-append.
                    let _ = self.active.sync_data();
                    eprintln!(
                        "scratch-wal: fault hook aborting mid-append \
                         (append #{}, kept {keep} of {} frame bytes)",
                        self.appends,
                        frame.len()
                    );
                    std::process::abort();
                }
                return Err(WalError::TornWrite);
            }
        }
        self.active.write_all(&frame)?;
        self.active_len += frame.len() as u64;
        let synced = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::IntervalMs(ms) => self.last_sync.elapsed() >= Duration::from_millis(ms),
            FsyncPolicy::Never => false,
        };
        if synced {
            self.active.sync_data()?;
            self.last_sync = Instant::now();
        }
        if self.active_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(AppendInfo {
            bytes: frame.len() as u64,
            synced,
        })
    }

    /// Force an fsync of the active segment (drain/shutdown paths).
    ///
    /// # Errors
    ///
    /// The underlying `fdatasync` failed.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.active.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // A closed segment is history: make it durable regardless of
        // policy before moving on.
        self.active.sync_data()?;
        self.active_index += 1;
        self.active = OpenOptions::new()
            .append(true)
            .create(true)
            .open(segment_path(&self.config.dir, self.active_index))?;
        self.active_len = 0;
        self.last_sync = Instant::now();
        Ok(())
    }
}

/// One completion record's content, as read back by [`WalState::read`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionMeta {
    /// Whether the run succeeded.
    pub ok: bool,
    /// Output digest.
    pub digest: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Failure description (empty when ok).
    pub error: String,
}

/// A read-only materialisation of the log, for harnesses and audits (the
/// chaos driver checks its exactly-once invariant against this).
#[derive(Debug, Default)]
pub struct WalState {
    /// Admitted ids → (tenant, label), first admission record wins.
    pub admitted: BTreeMap<u64, (String, String)>,
    /// Every completion record per id, in log order. Exactly-once means
    /// every vec here has length 1.
    pub completions: BTreeMap<u64, Vec<CompletionMeta>>,
    /// Checkpoint records per id.
    pub checkpoints: BTreeMap<u64, u64>,
    /// First damage the scan hit, if any (an unrecovered log may have a
    /// torn tail; a log [`Wal::open`] has already recovered will not).
    pub damage: Option<Damage>,
}

impl WalState {
    /// Scan `dir` without mutating anything.
    ///
    /// # Errors
    ///
    /// Filesystem failure.
    pub fn read(dir: &Path) -> Result<WalState, WalError> {
        let mut state = WalState::default();
        let scan = scan(dir, |record| match record {
            Record::Admitted {
                id, tenant, label, ..
            } => {
                state
                    .admitted
                    .entry(*id)
                    .or_insert_with(|| (tenant.clone(), label.clone()));
            }
            Record::Completed {
                id,
                ok,
                digest,
                cycles,
                instructions,
                error,
            } => {
                state
                    .completions
                    .entry(*id)
                    .or_default()
                    .push(CompletionMeta {
                        ok: *ok,
                        digest: *digest,
                        cycles: *cycles,
                        instructions: *instructions,
                        error: error.clone(),
                    });
            }
            Record::Checkpoint { id, .. } => {
                *state.checkpoints.entry(*id).or_insert(0) += 1;
            }
        })?;
        state.damage = scan.damage;
        Ok(state)
    }
}

/// What [`verify`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Segment files present.
    pub segments: u64,
    /// Valid frames.
    pub frames: u64,
    /// Admission records.
    pub admitted: u64,
    /// Completion records.
    pub completed: u64,
    /// Checkpoint records.
    pub checkpoints: u64,
    /// Admitted jobs with no completion record.
    pub unfinished: u64,
    /// Ids with more than one completion record (an exactly-once
    /// violation).
    pub duplicate_completions: u64,
    /// Completion records whose id was never admitted.
    pub orphan_completions: u64,
    /// First damage hit by the scan, if any.
    pub damage: Option<Damage>,
}

impl VerifyReport {
    /// No damage, no duplicate completions, no orphans.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.damage.is_none() && self.duplicate_completions == 0 && self.orphan_completions == 0
    }
}

/// Audit the log at `dir` read-only: frame integrity plus the admission /
/// completion bookkeeping invariants.
///
/// # Errors
///
/// Filesystem failure only; damage is a finding, not an error.
pub fn verify(dir: &Path) -> Result<VerifyReport, WalError> {
    let state = WalState::read(dir)?;
    let mut report = VerifyReport {
        damage: state.damage.clone(),
        ..VerifyReport::default()
    };
    let scan = scan(dir, |_| {})?;
    report.segments = scan.segments;
    report.frames = scan.frames;
    report.admitted = state.admitted.len() as u64;
    report.checkpoints = state.checkpoints.values().sum();
    for (id, completions) in &state.completions {
        report.completed += completions.len() as u64;
        if completions.len() > 1 {
            report.duplicate_completions += 1;
        }
        if !state.admitted.contains_key(id) {
            report.orphan_completions += 1;
        }
    }
    report.unfinished = state
        .admitted
        .keys()
        .filter(|id| !state.completions.contains_key(id))
        .count() as u64;
    Ok(report)
}

/// One frame's position and summary, for `wal inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InspectEntry {
    /// Segment index.
    pub segment: u64,
    /// Frame offset inside the segment.
    pub offset: u64,
    /// [`Record::summary`] of the decoded record.
    pub summary: String,
}

/// List up to `limit` frames in log order (0 = no limit), read-only.
///
/// # Errors
///
/// Filesystem failure.
pub fn inspect(dir: &Path, limit: usize) -> Result<Vec<InspectEntry>, WalError> {
    let mut out = Vec::new();
    for (index, path) in list_segments(dir)? {
        let buf = std::fs::read(&path)?;
        let mut offset = 0usize;
        while let Ok(Some((record, consumed))) = parse_frame(&buf, offset) {
            if limit > 0 && out.len() >= limit {
                return Ok(out);
            }
            out.push(InspectEntry {
                segment: index,
                offset: offset as u64,
                summary: record.summary(),
            });
            offset += consumed;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TearOnce;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scratch-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn admitted(id: u64) -> Record {
        Record::Admitted {
            id,
            tenant: format!("t{}", id % 3),
            label: format!("job-{id}"),
            payload: format!("{{\"job\":{id}}}").into_bytes(),
        }
    }

    fn completed(id: u64) -> Record {
        Record::Completed {
            id,
            ok: true,
            digest: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            cycles: 100 + id,
            instructions: 10 + id,
            error: String::new(),
        }
    }

    #[test]
    fn fresh_log_recovers_empty_and_appends_round_trip() {
        let dir = temp_dir("fresh");
        let (mut wal, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.next_id, 0);
        assert_eq!(recovery.report.frames, 0);

        for id in 0..4 {
            wal.append(&admitted(id)).unwrap();
        }
        wal.append(&completed(1)).unwrap();
        wal.append(&Record::Checkpoint {
            id: 2,
            out_addr: 64,
            snap: vec![9; 128],
        })
        .unwrap();
        drop(wal);

        let (_, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovery.next_id, 4);
        let ids: Vec<u64> = recovery.pending.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 2, 3], "completed job 1 is deduped");
        let with_ck = &recovery.pending[1];
        assert_eq!(with_ck.id, 2);
        assert_eq!(with_ck.checkpoint.as_ref().unwrap().0, 64);
        assert_eq!(recovery.report.replayed, 3);
        assert_eq!(recovery.report.resumed, 1);
        assert_eq!(recovery.report.deduped, 1);
        assert_eq!(recovery.report.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_valid_prefix_survives() {
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        // Appends 1-3 land intact; append 4 is torn mid-frame.
        wal.set_fault_hook(Box::new(TearOnce::new(4, 0.5)));
        for id in 0..3 {
            wal.append(&admitted(id)).unwrap();
        }
        assert!(matches!(wal.append(&admitted(3)), Err(WalError::TornWrite)));
        drop(wal);

        let before = verify(&dir).unwrap();
        assert!(before.damage.is_some(), "torn tail must be flagged");

        let (_, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovery.report.frames, 3);
        assert!(recovery.report.torn_bytes > 0);
        assert_eq!(recovery.pending.len(), 3);
        assert_eq!(recovery.next_id, 3, "the torn admission never happened");

        // Recovery truncated the tail: the log is clean now and appends
        // continue after the valid prefix.
        let after = verify(&dir).unwrap();
        assert!(after.damage.is_none());
        assert_eq!(after.frames, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_recovery_reads_across_them() {
        let dir = temp_dir("rotate");
        let config = WalConfig {
            segment_bytes: 256, // tiny, to force rotations
            ..WalConfig::new(&dir)
        };
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for id in 0..32 {
            wal.append(&admitted(id)).unwrap();
            wal.append(&completed(id)).unwrap();
        }
        assert!(wal.active_segment() > 0, "rotation must have happened");
        drop(wal);

        let (_, recovery) = Wal::open(config).unwrap();
        assert!(recovery.report.segments > 1);
        assert_eq!(recovery.report.admitted, 32);
        assert_eq!(recovery.report.deduped, 32);
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.next_id, 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_mid_log_drops_later_segments() {
        let dir = temp_dir("drop");
        let config = WalConfig {
            segment_bytes: 256,
            ..WalConfig::new(&dir)
        };
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for id in 0..32 {
            wal.append(&admitted(id)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        // Corrupt a byte in the middle of the *first* segment: everything
        // after it — including whole later segments — is untrusted.
        let (_, first) = &segments[0];
        let mut bytes = std::fs::read(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(first, &bytes).unwrap();

        let (_, recovery) = Wal::open(config).unwrap();
        assert!(recovery.report.dropped_segments > 0);
        assert!(recovery.report.torn_bytes > 0);
        assert!(verify(&dir).unwrap().damage.is_none(), "recovered clean");
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policies_parse_and_appends_report_syncs() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("250").unwrap(),
            FsyncPolicy::IntervalMs(250)
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());

        let dir = temp_dir("fsync");
        let config = WalConfig {
            fsync: FsyncPolicy::Always,
            ..WalConfig::new(&dir)
        };
        let (mut wal, _) = Wal::open(config).unwrap();
        let info = wal.append(&admitted(0)).unwrap();
        assert!(info.synced);
        drop(wal);
        let config = WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        };
        let (mut wal, _) = Wal::open(config).unwrap();
        let info = wal.append(&admitted(1)).unwrap();
        assert!(!info.synced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_duplicates_and_orphans() {
        let dir = temp_dir("verify");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append(&admitted(0)).unwrap();
        wal.append(&completed(0)).unwrap();
        wal.append(&completed(0)).unwrap(); // duplicate
        wal.append(&completed(5)).unwrap(); // orphan
        drop(wal);
        let report = verify(&dir).unwrap();
        assert_eq!(report.duplicate_completions, 1);
        assert_eq!(report.orphan_completions, 1);
        assert!(!report.clean());

        let entries = inspect(&dir, 0).unwrap();
        assert_eq!(entries.len(), 4);
        assert!(entries[0].summary.contains("admitted"));
        assert!(entries[1].summary.contains("completed"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
