//! Property tests for torn-tail recovery: for random valid logs, truncate
//! at *every* byte offset and flip random bytes — recovery must never
//! panic, must replay exactly the longest valid frame prefix, and `verify`
//! must flag the damage before recovery repairs it.

use std::path::PathBuf;

use proptest::prelude::*;

use scratch_wal::{verify, FsyncPolicy, Record, Wal, WalConfig};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "scratch-wal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Deterministic record stream from a seed (splitmix64 underneath).
fn records(seed: u64, n: usize) -> Vec<Record> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let id = i as u64;
            match next() % 3 {
                0 => Record::Admitted {
                    id,
                    tenant: format!("t{}", next() % 4),
                    label: format!("k{id}"),
                    payload: (0..(next() % 32)).map(|_| (next() & 0xff) as u8).collect(),
                },
                1 => Record::Completed {
                    id,
                    ok: next() % 2 == 0,
                    digest: next(),
                    cycles: next() % 100_000,
                    instructions: next() % 10_000,
                    error: String::new(),
                },
                _ => Record::Checkpoint {
                    id,
                    out_addr: next() % 4096,
                    snap: (0..(next() % 48)).map(|_| (next() & 0xff) as u8).collect(),
                },
            }
        })
        .collect()
}

/// Write `records` into a single-segment log, return the raw segment bytes
/// and the cumulative frame-end offsets.
fn build_log(dir: &PathBuf, records: &[Record]) -> (Vec<u8>, Vec<usize>) {
    let _ = std::fs::remove_dir_all(dir);
    let (mut wal, _) = Wal::open(WalConfig {
        fsync: FsyncPolicy::Never,
        ..WalConfig::new(dir)
    })
    .expect("open");
    let mut boundaries = Vec::new();
    let mut end = 0usize;
    for r in records {
        let info = wal.append(r).expect("append");
        end += usize::try_from(info.bytes).unwrap();
        boundaries.push(end);
    }
    drop(wal);
    let bytes = std::fs::read(dir.join("wal-00000000.seg")).expect("segment");
    assert_eq!(bytes.len(), end, "single segment holds every frame");
    (bytes, boundaries)
}

/// Frames wholly contained in the first `len` bytes.
fn frames_within(boundaries: &[usize], len: usize) -> u64 {
    boundaries.iter().filter(|&&end| end <= len).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Truncate a valid log at every byte offset: recovery replays exactly
    /// the longest valid prefix, never panics, and leaves a clean log.
    #[test]
    fn truncation_at_any_offset_recovers_the_longest_valid_prefix(
        seed in 0u64..10_000,
        n in 3usize..9,
    ) {
        let src = temp_dir("trunc-src");
        let recs = records(seed, n);
        let (bytes, boundaries) = build_log(&src, &recs);
        let dir = temp_dir("trunc");
        for cut in 0..=bytes.len() {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("wal-00000000.seg"), &bytes[..cut]).unwrap();

            let expected = frames_within(&boundaries, cut);
            let at_boundary = cut == 0 || boundaries.contains(&cut);

            // Pre-recovery verify flags the damage (a mid-frame cut).
            let before = verify(&dir).expect("verify");
            prop_assert_eq!(before.frames, expected);
            prop_assert_eq!(before.damage.is_some(), !at_boundary);

            // Recovery truncates to the valid prefix; never panics.
            let (_, recovery) = Wal::open(WalConfig::new(&dir)).expect("open");
            prop_assert_eq!(recovery.report.frames, expected);
            prop_assert_eq!(
                recovery.report.torn_bytes as usize,
                if at_boundary { 0 } else { cut - boundaries.iter().rev().find(|&&b| b <= cut).copied().unwrap_or(0) }
            );

            // Post-recovery the log is clean and the prefix intact.
            let after = verify(&dir).expect("verify");
            prop_assert!(after.damage.is_none());
            prop_assert_eq!(after.frames, expected);
        }
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere: recovery accepts exactly the frames before
    /// the damaged one and repairs the log without panicking.
    #[test]
    fn single_byte_corruption_never_panics_and_keeps_the_prefix(
        seed in 0u64..10_000,
        n in 3usize..9,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let src = temp_dir("flip-src");
        let recs = records(seed, n);
        let (bytes, boundaries) = build_log(&src, &recs);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;

        let dir = temp_dir("flip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-00000000.seg"), &corrupt).unwrap();

        // Frames wholly before the flipped byte survive; the damaged frame
        // and everything after are untrusted.
        let expected = frames_within(&boundaries, pos);
        let before = verify(&dir).expect("verify");
        prop_assert!(before.damage.is_some(), "a byte flip must be detected");
        prop_assert_eq!(before.frames, expected);

        let (_, recovery) = Wal::open(WalConfig::new(&dir)).expect("open");
        prop_assert_eq!(recovery.report.frames, expected);
        prop_assert!(verify(&dir).expect("verify").damage.is_none());
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
