//! WAL micro-costs: append throughput under each fsync policy, and
//! recovery (scan + truncate + fold) wall-clock against log size. These
//! feed `BENCH_wal.json` alongside the serve-level overhead numbers.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_wal::{FsyncPolicy, Record, Wal, WalConfig};

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scratch-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn admitted(id: u64) -> Record {
    Record::Admitted {
        id,
        tenant: "bench".to_owned(),
        label: format!("job-{id}"),
        // Typical admitted payload: a small JSON submission with a
        // modest kernel body.
        payload: vec![0x5a; 512],
    }
}

fn completed(id: u64) -> Record {
    Record::Completed {
        id,
        ok: true,
        digest: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        cycles: 10_000,
        instructions: 2_500,
        error: String::new(),
    }
}

fn append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Elements(1));
    for (name, fsync) in [
        ("interval_100ms", FsyncPolicy::IntervalMs(100)),
        ("never", FsyncPolicy::Never),
        ("always", FsyncPolicy::Always),
    ] {
        let dir = bench_dir(name);
        let (mut wal, _) = Wal::open(WalConfig {
            fsync,
            ..WalConfig::new(&dir)
        })
        .expect("open");
        let mut id = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                wal.append(&admitted(id)).expect("append");
                wal.append(&completed(id)).expect("append");
                id += 1;
            });
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    for jobs in [100u64, 1_000, 10_000] {
        let dir = bench_dir(&format!("recover-{jobs}"));
        let (mut wal, _) = Wal::open(WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        })
        .expect("open");
        for id in 0..jobs {
            wal.append(&admitted(id)).expect("append");
            if id % 2 == 0 {
                wal.append(&completed(id)).expect("append");
            }
        }
        wal.sync().expect("sync");
        drop(wal);
        group.bench_function(format!("open_{jobs}_jobs"), |b| {
            b.iter(|| {
                let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("open");
                assert_eq!(rec.report.admitted, jobs);
                rec
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, append, recovery);
criterion_main!(benches);
