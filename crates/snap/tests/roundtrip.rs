//! Property tests: a randomly populated snapshot survives both the
//! compact binary codec and JSON, bit-for-bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scratch_snap::{
    from_bytes, to_bytes, CuSnapshot, ImagePage, MemoryImage, WaveSnapshot, WorkgroupSnapshot,
};
use serde::{Map, Value};

fn random_stats(rng: &mut StdRng) -> Value {
    let mut map = Map::new();
    map.insert("cycles".to_owned(), Value::U64(rng.gen_range(0..1 << 40)));
    map.insert(
        "instructions".to_owned(),
        Value::U64(rng.gen_range(0..1 << 30)),
    );
    map.insert(
        "histogram".to_owned(),
        Value::Array(
            (0..rng.gen_range(0..6usize))
                .map(|_| Value::U64(rng.gen_range(0..1000)))
                .collect(),
        ),
    );
    Value::Object(map)
}

fn random_wave(rng: &mut StdRng, id: u64) -> WaveSnapshot {
    let sgprs = rng.gen_range(4..32usize);
    let vgprs = rng.gen_range(1..8usize);
    WaveSnapshot {
        id,
        workgroup: rng.gen_range(0..4),
        pc: rng.gen_range(0..4096),
        exec: rng.gen_range(0..u64::MAX),
        vcc: rng.gen_range(0..u64::MAX),
        scc: rng.gen_range(0..2u32) == 1,
        m0: rng.gen_range(0..u32::MAX),
        sgprs: (0..sgprs).map(|_| rng.gen_range(0..u32::MAX)).collect(),
        vgprs: (0..vgprs)
            .map(|_| (0..64).map(|_| rng.gen_range(0..u32::MAX)).collect())
            .collect(),
        next_ready: rng.gen_range(0..1 << 40),
        wait_reason: rng.gen_range(0..8u32) as u8,
        vm_events: (0..rng.gen_range(0..4usize))
            .map(|_| rng.gen_range(0..1 << 40))
            .collect(),
        lgkm_events: (0..rng.gen_range(0..4usize))
            .map(|_| rng.gen_range(0..1 << 40))
            .collect(),
        state: rng.gen_range(0..3u32) as u8,
        retired: rng.gen_range(0..1 << 30),
        pending: (0..rng.gen_range(0..6usize))
            .map(|_| (rng.gen_range(0..0x204u32), rng.gen_range(0..1 << 40)))
            .collect(),
    }
}

fn random_snapshot(seed: u64) -> CuSnapshot {
    let rng = &mut StdRng::seed_from_u64(seed);
    let waves = rng.gen_range(1..6usize);
    CuSnapshot {
        now: rng.gen_range(0..1 << 40),
        rr: rng.gen_range(0..8),
        run_start: if rng.gen_range(0..2u32) == 1 {
            Some(rng.gen_range(0..1 << 40))
        } else {
            None
        },
        waves: (0..waves).map(|i| random_wave(rng, i as u64)).collect(),
        workgroups: (0..rng.gen_range(1..3usize))
            .map(|_| WorkgroupSnapshot {
                lds: (0..rng.gen_range(0..64usize))
                    .map(|_| rng.gen_range(0..u32::MAX))
                    .collect(),
                waves: (0..waves).map(|i| i as u64).collect(),
                arrived: rng.gen_range(0..waves as u64 + 1),
            })
            .collect(),
        salu_busy: rng.gen_range(0..1 << 40),
        lsu_busy: rng.gen_range(0..1 << 40),
        simd_busy: (0..rng.gen_range(1..5usize))
            .map(|_| rng.gen_range(0..1 << 40))
            .collect(),
        simf_busy: (0..rng.gen_range(1..5usize))
            .map(|_| rng.gen_range(0..1 << 40))
            .collect(),
        stall_acc: (0..8).map(|_| rng.gen_range(0..1 << 40)).collect(),
        stats: random_stats(rng),
        pc_counts: (0..rng.gen_range(0..24usize))
            .map(|_| rng.gen_range(0..1 << 40))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn binary_round_trip(seed in 0u64..10_000) {
        let snap = random_snapshot(seed);
        let bytes = to_bytes(&snap);
        let back: CuSnapshot = from_bytes(&bytes).expect("binary decode");
        prop_assert_eq!(&back, &snap);
    }

    #[test]
    fn json_round_trip(seed in 0u64..10_000) {
        let snap = random_snapshot(seed);
        let json = serde_json::to_string(&snap).expect("json encode");
        let back: CuSnapshot = serde_json::from_str(&json).expect("json decode");
        prop_assert_eq!(&back, &snap);
    }

    #[test]
    fn memory_image_round_trip(seed in 0u64..10_000) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..3 * 4096 + 17usize);
        let mut data = vec![0u8; len];
        // Sparse writes so zero pages actually occur.
        for _ in 0..rng.gen_range(0..32u32) {
            if len > 0 {
                let at = rng.gen_range(0..len);
                data[at] = rng.gen_range(0..256u32) as u8;
            }
        }
        let image = MemoryImage::capture(&data);
        prop_assert_eq!(image.restore(), data.clone());
        let bytes = to_bytes(&image);
        let back: MemoryImage = from_bytes(&bytes).expect("binary decode");
        prop_assert_eq!(back.restore(), data);
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let snap = random_snapshot(42);
    let mut bytes = to_bytes(&snap);
    bytes[4..8].copy_from_slice(&(scratch_snap::FORMAT_VERSION + 3).to_le_bytes());
    match from_bytes::<CuSnapshot>(&bytes) {
        Err(scratch_snap::SnapError::Version { found, expected }) => {
            assert_eq!(found, scratch_snap::FORMAT_VERSION + 3);
            assert_eq!(expected, scratch_snap::FORMAT_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn sparse_pages_keep_snapshots_compact() {
    let mut data = vec![0u8; 1 << 20];
    data[123] = 7;
    let image = MemoryImage::capture(&data);
    let bytes = to_bytes(&image);
    assert!(
        bytes.len() < 2 * 4096,
        "1 MiB image with one touched page encoded to {} bytes",
        bytes.len()
    );
    let _ = ImagePage {
        index: 0,
        data: vec![],
    };
}

/// The fast functional tier has no cycle-accurate state to capture, so a
/// preemptible dispatch on it must fail with the typed
/// [`SnapError::UnsupportedExecMode`] — never a silent wrong-cycle
/// checkpoint. Cycle-tier dispatches stay preemptible as before.
#[test]
fn preemptible_dispatch_requires_the_cycle_tier() {
    use scratch_asm::KernelBuilder;
    use scratch_system::{ExecMode, System, SystemConfig, SystemError, SystemKind};

    let kernel = {
        let mut b = KernelBuilder::new("snap_exec_guard");
        b.vgprs(4).sgprs(24).workgroup_size(64);
        b.endpgm().unwrap();
        b.finish().unwrap()
    };
    let system = |exec: ExecMode| {
        let config = SystemConfig::preset(SystemKind::DcdPm).with_exec(exec);
        let mut sys = System::new(config, &kernel).unwrap();
        let out = sys.alloc(4096);
        sys.set_args(&[out as u32]);
        sys
    };

    for exec in [ExecMode::Fast, ExecMode::FastWithTiming] {
        let err = system(exec)
            .dispatch_preemptible([1, 1, 1], 100)
            .unwrap_err();
        assert_eq!(
            err,
            SystemError::Snap(scratch_snap::SnapError::UnsupportedExecMode),
            "{exec:?} must be rejected with the typed snap error"
        );
        assert!(
            err.to_string().contains("cycle execution tier"),
            "error should tell the caller which tier is required: {err}"
        );
    }

    // The guard must not break the supported path.
    use scratch_system::DispatchProgress;
    let progress = system(ExecMode::Cycle)
        .dispatch_preemptible([1, 1, 1], 100)
        .unwrap();
    assert!(
        matches!(progress, DispatchProgress::Complete { .. }),
        "an endpgm kernel finishes in one quantum"
    );
}
