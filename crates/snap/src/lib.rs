//! Serializable snapshots of soft-GPGPU architectural state.
//!
//! A [`CuSnapshot`] captures everything a compute unit needs to resume a
//! paused run at an instruction boundary: per-wave register files (SGPRs,
//! VGPRs), execution and condition masks, program counters, outstanding
//! memory-wait events, per-workgroup LDS and barrier state, scoreboard
//! entries, functional-unit busy times and the CU clock. The structs here
//! are plain data — `scratch-cu` converts to and from its live pipeline
//! state, `scratch-system` wraps them (plus shared-memory state) into a
//! whole-system checkpoint, and everything rides the crate-local serde
//! value model so a snapshot round-trips through JSON *and* through the
//! compact versioned binary form implemented by [`to_bytes`] /
//! [`from_bytes`].
//!
//! The binary codec is a tagged tree encoding of [`serde::Value`] behind a
//! `SNAP` magic and a little-endian `u32` format version; readers reject
//! unknown versions outright ([`SnapError::Version`]) instead of guessing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use serde::{DeError, Deserialize, Map, Serialize, Value};

/// Version stamped into every binary snapshot; bump on any codec or
/// layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every binary snapshot.
pub const MAGIC: [u8; 4] = *b"SNAP";

/// Page granularity of [`MemoryImage`] sparse captures, in bytes.
pub const IMAGE_PAGE: usize = 4096;

/// Everything that can go wrong reading a binary snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with the `SNAP` magic.
    Magic,
    /// The format version is not the one this build understands.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The buffer ended mid-value.
    Truncated,
    /// The buffer is structurally invalid (bad tag, overlong varint,
    /// non-UTF-8 string, trailing bytes, excessive nesting).
    Corrupt(String),
    /// The value tree decoded fine but does not match the target type.
    De(String),
    /// Checkpointing was requested of an execution tier that cannot take
    /// checkpoints (the fast functional tier has no cycle-accurate state
    /// to capture; only `ExecMode::Cycle` dispatches are preemptible).
    UnsupportedExecMode,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Magic => write!(f, "not a snapshot: bad magic"),
            SnapError::Version { found, expected } => {
                write!(
                    f,
                    "snapshot format v{found} unsupported (expected v{expected})"
                )
            }
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapError::De(msg) => write!(f, "snapshot decode: {msg}"),
            SnapError::UnsupportedExecMode => write!(
                f,
                "checkpointing requires the cycle execution tier (ExecMode::Cycle)"
            ),
        }
    }
}

impl Error for SnapError {}

impl From<DeError> for SnapError {
    fn from(e: DeError) -> SnapError {
        SnapError::De(e.0)
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

// Value tags. `BYTES` is a packing of an `Array` whose elements are all
// `U64` values <= 255 (memory pages, LDS images); it decodes back to the
// equivalent `Array`, so the optimization is invisible above the codec.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;
const TAG_BYTES: u8 = 9;

/// Nesting bound for decoding; snapshots are a handful of levels deep, so
/// anything past this is corrupt input, not data.
const MAX_DEPTH: u32 = 64;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            put_varint(out, *n);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            put_varint(out, zigzag(*n));
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Array(items) => {
            let small = |it: &Value| matches!(it, Value::U64(n) if *n <= 0xff);
            if !items.is_empty() && items.iter().all(small) {
                out.push(TAG_BYTES);
                put_varint(out, items.len() as u64);
                for it in items {
                    if let Value::U64(n) = it {
                        out.push(*n as u8);
                    }
                }
            } else {
                out.push(TAG_ARRAY);
                put_varint(out, items.len() as u64);
                for it in items {
                    encode_value(out, it);
                }
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            put_varint(out, map.len() as u64);
            for (k, item) in map {
                put_str(out, k);
                encode_value(out, item);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, SnapError> {
        let b = *self.buf.get(self.pos).ok_or(SnapError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, SnapError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift > 63 || (shift == 63 && b > 1) {
                return Err(SnapError::Corrupt("varint overflow".to_owned()));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Bounded length prefix: no legal count exceeds the bytes left, so a
    /// huge prefix is corruption, not a reason to allocate.
    fn count(&mut self) -> Result<usize, SnapError> {
        let n = self.varint()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapError::Truncated);
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, SnapError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Corrupt("non-UTF-8 string".to_owned()))
    }

    fn value(&mut self, depth: u32) -> Result<Value, SnapError> {
        if depth > MAX_DEPTH {
            return Err(SnapError::Corrupt("nesting too deep".to_owned()));
        }
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => Ok(Value::U64(self.varint()?)),
            TAG_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            TAG_F64 => {
                let bytes = self.take(8)?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(bytes);
                Ok(Value::F64(f64::from_le_bytes(raw)))
            }
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_ARRAY => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_BYTES => {
                let n = self.count()?;
                let bytes = self.take(n)?;
                Ok(Value::Array(
                    bytes.iter().map(|&b| Value::U64(u64::from(b))).collect(),
                ))
            }
            TAG_OBJECT => {
                let n = self.count()?;
                let mut map = Map::new();
                for _ in 0..n {
                    let key = self.string()?;
                    let item = self.value(depth + 1)?;
                    map.insert(key, item);
                }
                Ok(Value::Object(map))
            }
            tag => Err(SnapError::Corrupt(format!("unknown value tag {tag}"))),
        }
    }
}

/// Serialize any serde-capable value into the compact versioned binary
/// form (`SNAP` magic + version header + tagged value tree).
#[must_use]
pub fn to_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    encode_value(&mut out, &value.to_sval());
    out
}

/// Read just the format version out of a snapshot header, without
/// decoding the body. Recovery paths use this to decide whether a durable
/// checkpoint written by an older process is still restorable before
/// spending a full decode on it.
///
/// # Errors
///
/// [`SnapError::Magic`] when the buffer does not open with the `SNAP`
/// magic, [`SnapError::Truncated`] when it is shorter than the header.
pub fn peek_version(bytes: &[u8]) -> Result<u32, SnapError> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(SnapError::Magic);
    }
    if bytes.len() < 8 {
        return Err(SnapError::Truncated);
    }
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&bytes[4..8]);
    Ok(u32::from_le_bytes(ver))
}

/// Parse a binary snapshot produced by [`to_bytes`].
///
/// # Errors
///
/// [`SnapError::Magic`] / [`SnapError::Version`] on a foreign or
/// future-format buffer, [`SnapError::Truncated`] / [`SnapError::Corrupt`]
/// on damaged bytes, [`SnapError::De`] when the tree does not match `T`.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, SnapError> {
    if bytes.len() < 8 {
        return Err(if bytes.len() < 4 || bytes[..4.min(bytes.len())] != MAGIC {
            SnapError::Magic
        } else {
            SnapError::Truncated
        });
    }
    if bytes[..4] != MAGIC {
        return Err(SnapError::Magic);
    }
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&bytes[4..8]);
    let found = u32::from_le_bytes(ver);
    if found != FORMAT_VERSION {
        return Err(SnapError::Version {
            found,
            expected: FORMAT_VERSION,
        });
    }
    let mut reader = Reader { buf: bytes, pos: 8 };
    let value = reader.value(0)?;
    if reader.pos != bytes.len() {
        return Err(SnapError::Corrupt(format!(
            "{} trailing bytes",
            bytes.len() - reader.pos
        )));
    }
    Ok(T::from_sval(&value)?)
}

// ---------------------------------------------------------------------------
// Sparse memory image
// ---------------------------------------------------------------------------

/// One non-zero page of a [`MemoryImage`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImagePage {
    /// Page number (`byte offset / IMAGE_PAGE`).
    pub index: u64,
    /// Raw page bytes (the final page of an image may be short).
    pub data: Vec<u8>,
}

/// A sparse byte-image of a flat memory: all-zero [`IMAGE_PAGE`]-sized
/// pages are elided, which keeps checkpoints of mostly-empty simulated
/// DRAM proportional to the data actually touched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryImage {
    /// Total image length in bytes.
    pub len: u64,
    /// The non-zero pages, in ascending index order.
    pub pages: Vec<ImagePage>,
}

impl MemoryImage {
    /// Capture `data`, skipping pages that are entirely zero.
    #[must_use]
    pub fn capture(data: &[u8]) -> MemoryImage {
        let pages = data
            .chunks(IMAGE_PAGE)
            .enumerate()
            .filter(|(_, chunk)| chunk.iter().any(|&b| b != 0))
            .map(|(index, chunk)| ImagePage {
                index: index as u64,
                data: chunk.to_vec(),
            })
            .collect();
        MemoryImage {
            len: data.len() as u64,
            pages,
        }
    }

    /// Reconstruct the flat byte image.
    #[must_use]
    pub fn restore(&self) -> Vec<u8> {
        let len = usize::try_from(self.len).unwrap_or(0);
        let mut data = vec![0u8; len];
        for page in &self.pages {
            let start = usize::try_from(page.index).unwrap_or(usize::MAX) * IMAGE_PAGE;
            if let Some(dst) = data
                .get_mut(start..)
                .and_then(|tail| tail.get_mut(..page.data.len()))
            {
                dst.copy_from_slice(&page.data);
            }
        }
        data
    }
}

// ---------------------------------------------------------------------------
// Architectural snapshots
// ---------------------------------------------------------------------------

/// One wavefront's full architectural state at an instruction boundary.
///
/// Integer codes mirror `scratch-cu` internals without importing them
/// (this crate sits below the simulator): `state` is 0 = ready,
/// 1 = at-barrier, 2 = done; `wait_reason` indexes the CU's stall-reason
/// table; `pending` maps encoded register keys (see `scratch-cu`) to the
/// cycle their in-flight write completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveSnapshot {
    /// Wave slot index within the CU.
    pub id: u64,
    /// Owning workgroup slot.
    pub workgroup: u64,
    /// Program counter (instruction word index).
    pub pc: u64,
    /// 64-lane execution mask.
    pub exec: u64,
    /// Vector condition code.
    pub vcc: u64,
    /// Scalar condition code.
    pub scc: bool,
    /// Memory-descriptor register.
    pub m0: u32,
    /// Scalar register file.
    pub sgprs: Vec<u32>,
    /// Vector register file; one 64-lane row per allocated VGPR.
    pub vgprs: Vec<Vec<u32>>,
    /// Earliest cycle the wave may issue again.
    pub next_ready: u64,
    /// Index of the stall reason last blamed for a wait.
    pub wait_reason: u8,
    /// Completion cycles of outstanding vector-memory operations.
    pub vm_events: Vec<u64>,
    /// Completion cycles of outstanding LDS/scalar-memory operations.
    pub lgkm_events: Vec<u64>,
    /// Wave state code (0 ready, 1 at-barrier, 2 done).
    pub state: u8,
    /// Instructions retired so far.
    pub retired: u64,
    /// Scoreboard: (encoded register key, ready-at cycle), key-sorted.
    pub pending: Vec<(u32, u64)>,
}

/// One workgroup slot: LDS contents plus barrier bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkgroupSnapshot {
    /// Local data share contents, in words.
    pub lds: Vec<u32>,
    /// Wave slots belonging to this workgroup.
    pub waves: Vec<u64>,
    /// Waves currently arrived at the barrier.
    pub arrived: u64,
}

/// Full architectural state of one compute unit mid-run, capturable at
/// any instruction boundary and sufficient to resume bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuSnapshot {
    /// CU clock at capture.
    pub now: u64,
    /// Round-robin issue pointer.
    pub rr: u64,
    /// Clock value when the (logically single) budgeted run began; drives
    /// the cycle-limit check across pause/resume.
    pub run_start: Option<u64>,
    /// Resident wavefronts, in slot order.
    pub waves: Vec<WaveSnapshot>,
    /// Workgroup slots, in creation order.
    pub workgroups: Vec<WorkgroupSnapshot>,
    /// Cycle the scalar ALU frees up.
    pub salu_busy: u64,
    /// Cycle the load/store unit frees up.
    pub lsu_busy: u64,
    /// Cycle each integer SIMD frees up.
    pub simd_busy: Vec<u64>,
    /// Cycle each floating-point SIMD frees up.
    pub simf_busy: Vec<u64>,
    /// Accumulated stall cycles per reason, indexed like `wait_reason`.
    pub stall_acc: Vec<u64>,
    /// Serialized `CuStats` at capture (kept as a value tree so this
    /// crate stays below `scratch-cu` in the dependency graph).
    pub stats: Value,
    /// Per-PC retire counters at capture (empty unless the CU profiles),
    /// so sliced jobs keep their instruction-usage profile across resume.
    pub pc_counts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let bytes = to_bytes(v);
        from_bytes::<Value>(&bytes).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(i64::MIN),
            Value::I64(-1),
            Value::F64(-1.5),
            Value::Str("héllo".to_owned()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn nested_trees_round_trip() {
        let mut map = Map::new();
        map.insert("a".to_owned(), Value::Array(vec![Value::U64(300)]));
        map.insert("b".to_owned(), Value::Null);
        let v = Value::Array(vec![Value::Object(map), Value::Str(String::new())]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn byte_arrays_pack_and_round_trip() {
        let v = Value::Array((0u64..=255).map(Value::U64).collect());
        let bytes = to_bytes(&v);
        // 8 header + 1 tag + 2 varint count + 256 payload bytes.
        assert_eq!(bytes.len(), 8 + 1 + 2 + 256);
        assert_eq!(bytes[8], TAG_BYTES);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn mixed_arrays_do_not_pack() {
        let v = Value::Array(vec![Value::U64(1), Value::U64(256)]);
        let bytes = to_bytes(&v);
        assert_eq!(bytes[8], TAG_ARRAY);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&Value::U64(7));
        bytes[0] = b'X';
        assert_eq!(from_bytes::<Value>(&bytes), Err(SnapError::Magic));
        assert_eq!(from_bytes::<Value>(b"SN"), Err(SnapError::Magic));
    }

    #[test]
    fn peek_version_reads_the_header_only() {
        let mut bytes = to_bytes(&Value::U64(7));
        assert_eq!(peek_version(&bytes), Ok(FORMAT_VERSION));
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // A future version peeks fine (that's the point) …
        assert_eq!(peek_version(&bytes), Ok(99));
        // … while garbage and short buffers fail without panicking.
        assert_eq!(peek_version(b"nope"), Err(SnapError::Magic));
        assert_eq!(peek_version(b"SNAP\x01"), Err(SnapError::Truncated));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = to_bytes(&Value::U64(7));
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            from_bytes::<Value>(&bytes),
            Err(SnapError::Version {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&Value::Str("hello world".to_owned()));
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Value>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&Value::U64(7));
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn huge_length_prefix_is_truncation_not_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(TAG_ARRAY);
        put_varint(&mut bytes, u64::MAX);
        assert_eq!(from_bytes::<Value>(&bytes), Err(SnapError::Truncated));
    }

    #[test]
    fn memory_image_elides_zero_pages() {
        let mut data = vec![0u8; IMAGE_PAGE * 3 + 100];
        data[IMAGE_PAGE + 5] = 0xab;
        data[IMAGE_PAGE * 3 + 99] = 0xcd;
        let image = MemoryImage::capture(&data);
        assert_eq!(image.pages.len(), 2);
        assert_eq!(image.pages[0].index, 1);
        assert_eq!(image.pages[1].index, 3);
        assert_eq!(image.pages[1].data.len(), 100);
        assert_eq!(image.restore(), data);
    }

    #[test]
    fn empty_memory_image_round_trips() {
        let image = MemoryImage::capture(&[]);
        assert_eq!(image.restore(), Vec::<u8>::new());
        let all_zero = MemoryImage::capture(&[0u8; IMAGE_PAGE]);
        assert!(all_zero.pages.is_empty());
        assert_eq!(all_zero.restore(), vec![0u8; IMAGE_PAGE]);
    }
}
