//! Per-kernel trimming with partial reconfiguration — the extension the
//! paper sketches in its §4.3 discussion: instead of one architecture
//! trimmed for the whole application, reconfigure the vector-execution
//! region between kernel calls, paying the FPGA partial-reconfiguration
//! latency each time the next kernel needs a different architecture.
//!
//! Whether this wins "depends on the ratio between kernel execution time
//! and architecture reconfiguration time" (§4.3); [`analyze_per_kernel`]
//! computes both sides from a measured run and reports the crossover.

use serde::{Deserialize, Serialize};

use scratch_asm::Kernel;
use scratch_fpga::{cu_resources, power, CuShape, ParallelPlan, SystemProfile};
use scratch_system::RunReport;

use crate::trim::{trim_kernel, trim_kernels, TrimReport};
use scratch_asm::AsmError;

/// Partial-reconfiguration cost model for the vector-execution region.
///
/// The paper's suggested strategy fixes the CU count and floor-plans the
/// SIMD/SIMF blocks into a reconfigurable region (§4.3, citing ZyCAP); the
/// bitstream for that region streams through the ICAP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigModel {
    /// Bitstream bytes per kilo-flip-flop of the reconfigured region
    /// (region area dominates partial-bitstream size).
    pub bytes_per_kff: u64,
    /// ICAP throughput in bytes/second (ZyCAP reaches ~382 MB/s).
    pub icap_bytes_per_s: f64,
}

impl Default for ReconfigModel {
    fn default() -> Self {
        ReconfigModel {
            bytes_per_kff: 16_384,
            icap_bytes_per_s: 382.0e6,
        }
    }
}

impl ReconfigModel {
    /// Seconds to reconfigure a vector region of the given shape.
    #[must_use]
    pub fn seconds_for(&self, shape: &CuShape) -> f64 {
        // The reconfigurable region holds the vector units; approximate its
        // size by the difference to a fully scratched vector datapath.
        let with = cu_resources(shape);
        let without = cu_resources(&CuShape {
            kept: shape
                .kept
                .iter()
                .copied()
                .filter(|o| {
                    !matches!(
                        o.unit(),
                        scratch_isa::FuncUnit::Simd | scratch_isa::FuncUnit::Simf
                    )
                })
                .collect(),
            ..shape.clone()
        });
        let region_ff = with.ff.saturating_sub(without.ff).max(1_000);
        let bytes = region_ff.div_ceil(1_000) * self.bytes_per_kff;
        bytes as f64 / self.icap_bytes_per_s
    }
}

/// Outcome of the per-kernel vs per-application comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerKernelAnalysis {
    /// Application name.
    pub name: String,
    /// Per-application (union) trim.
    pub union_kept: usize,
    /// Retained instructions per kernel.
    pub per_kernel_kept: Vec<usize>,
    /// Board power with the union architecture (W).
    pub union_power_w: f64,
    /// Board power per kernel-specific architecture (W).
    pub per_kernel_power_w: Vec<f64>,
    /// Application time on the union architecture (s).
    pub union_seconds: f64,
    /// Application time under per-kernel trimming, including
    /// reconfiguration stalls (s).
    pub per_kernel_seconds: f64,
    /// Total time spent reconfiguring (s).
    pub reconfig_seconds: f64,
    /// Number of reconfigurations (kernel switches in the dispatch trace).
    pub reconfigurations: u64,
    /// Energy on the union architecture (J).
    pub union_energy_j: f64,
    /// Energy under per-kernel trimming (J).
    pub per_kernel_energy_j: f64,
    /// Per-reconfiguration latency at which the two schemes break even
    /// (seconds); `None` when per-kernel trimming never wins (identical
    /// per-kernel requirements).
    pub breakeven_reconfig_s: Option<f64>,
}

impl PerKernelAnalysis {
    /// `true` when per-kernel trimming is the better choice for this trace.
    #[must_use]
    pub fn per_kernel_wins(&self) -> bool {
        self.per_kernel_energy_j < self.union_energy_j
    }
}

/// Compare per-application and per-kernel trimming over a measured run.
///
/// `report` must come from a run of `kernels` (its `per_kernel_cycles`
/// index the same list).
///
/// # Errors
///
/// Fails when a kernel does not decode.
pub fn analyze_per_kernel(
    name: &str,
    kernels: &[Kernel],
    report: &RunReport,
    plan: ParallelPlan,
    model: &ReconfigModel,
) -> Result<PerKernelAnalysis, AsmError> {
    let union = trim_kernels(kernels)?;
    let per_kernel: Vec<TrimReport> = kernels.iter().map(trim_kernel).collect::<Result<_, _>>()?;

    let shape = |t: &TrimReport| CuShape {
        kept: t.kept_opcodes(),
        int_valus: plan.int_valus,
        fp_valus: if t.uses_fp { plan.fp_valus.max(1) } else { 0 },
        datapath_bits: 32,
    };
    let union_shape = shape(&union);
    let union_power = power(SystemProfile::DCD_PM, &union_shape, plan.cus).total_w();
    let kernel_powers: Vec<f64> = per_kernel
        .iter()
        .map(|t| power(SystemProfile::DCD_PM, &shape(t), plan.cus).total_w())
        .collect();

    // Phase times from the measured dispatch trace, at the CU clock.
    let cu_hz = 50.0e6;
    let phase_seconds: Vec<f64> = report
        .per_kernel_cycles
        .iter()
        .map(|&c| c as f64 / cu_hz)
        .collect();
    let union_seconds: f64 =
        phase_seconds.iter().sum::<f64>() + report.host_cycles as f64 / 200.0e6;

    // Reconfiguration: one per kernel switch, sized for the largest
    // kernel-specific vector region.
    let reconfig_each = per_kernel
        .iter()
        .map(|t| model.seconds_for(&shape(t)))
        .fold(0.0, f64::max);
    let identical_requirements = per_kernel
        .iter()
        .all(|t| t.kept_count() == union.kept_count());
    let reconfigs = if identical_requirements {
        0
    } else {
        report.kernel_switches
    };
    let reconfig_seconds = reconfigs as f64 * reconfig_each;
    let per_kernel_seconds = union_seconds + reconfig_seconds;

    let union_energy = union_power * union_seconds;
    let mut per_kernel_energy = reconfig_seconds * union_power; // reconfig at full draw
    for (t, &p) in phase_seconds.iter().zip(&kernel_powers) {
        per_kernel_energy += t * p;
    }
    per_kernel_energy += report.host_cycles as f64 / 200.0e6 * union_power;

    // Break-even reconfiguration latency: energy saved per second of
    // execution vs energy cost per reconfiguration.
    let saved: f64 = phase_seconds
        .iter()
        .zip(&kernel_powers)
        .map(|(t, p)| t * (union_power - p))
        .sum();
    let breakeven = if reconfigs > 0 && saved > 0.0 {
        Some(saved / (reconfigs as f64 * union_power))
    } else {
        None
    };

    Ok(PerKernelAnalysis {
        name: name.to_string(),
        union_kept: union.kept_count(),
        per_kernel_kept: per_kernel.iter().map(TrimReport::kept_count).collect(),
        union_power_w: union_power,
        per_kernel_power_w: kernel_powers,
        union_seconds,
        per_kernel_seconds,
        reconfig_seconds,
        reconfigurations: reconfigs,
        union_energy_j: union_energy,
        per_kernel_energy_j: per_kernel_energy,
        breakeven_reconfig_s: breakeven,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_fpga::ParallelPlan;
    use scratch_system::RunReport;

    fn fake_report(per_kernel_cycles: Vec<u64>, switches: u64) -> RunReport {
        RunReport {
            cu_cycles: per_kernel_cycles.iter().sum(),
            host_cycles: 0,
            seconds: 0.0,
            stats: scratch_cu::CuStats::default(),
            per_cu_cycles: vec![],
            global_accesses: 0,
            prefetch_hits: 0,
            per_kernel_dispatches: per_kernel_cycles.iter().map(|_| 1).collect(),
            per_kernel_cycles,
            kernel_switches: switches,
            trace: None,
            trace_events: None,
            fault_records: vec![],
            pc_profiles: vec![],
        }
    }

    fn two_kernel_app() -> Vec<Kernel> {
        use scratch_asm::KernelBuilder;
        use scratch_isa::{Opcode, Operand};
        // Kernel A: floating point; kernel B: integer only.
        let mut a = KernelBuilder::new("fp_phase");
        a.vgprs(4);
        a.vop2(Opcode::VMulF32, 1, Operand::FloatConst(2.0), 0)
            .unwrap();
        a.endpgm().unwrap();
        let mut b = KernelBuilder::new("int_phase");
        b.vgprs(4);
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(1), 0).unwrap();
        b.endpgm().unwrap();
        vec![a.finish().unwrap(), b.finish().unwrap()]
    }

    #[test]
    fn reconfig_seconds_scale_with_region() {
        let model = ReconfigModel::default();
        let small = CuShape {
            kept: vec![scratch_isa::Opcode::VAddI32, scratch_isa::Opcode::SEndpgm],
            int_valus: 1,
            fp_valus: 0,
            datapath_bits: 32,
        };
        let big = CuShape::full(1, 1);
        assert!(model.seconds_for(&big) > model.seconds_for(&small));
        // Milliseconds, not seconds (ZyCAP-class ICAP streaming).
        assert!(model.seconds_for(&big) < 0.1);
        assert!(model.seconds_for(&small) > 1e-6);
    }

    #[test]
    fn long_phases_favour_per_kernel_trimming() {
        let kernels = two_kernel_app();
        // Long-running phases, few switches.
        let report = fake_report(vec![200_000_000, 200_000_000], 1);
        let a = analyze_per_kernel(
            "synthetic",
            &kernels,
            &report,
            ParallelPlan::baseline(true),
            &ReconfigModel::default(),
        )
        .unwrap();
        assert!(a.per_kernel_wins(), "{a:?}");
        assert!(a.breakeven_reconfig_s.unwrap() > a.reconfig_seconds / a.reconfigurations as f64);
        // The integer phase runs on a cheaper architecture.
        assert!(a.per_kernel_power_w[1] < a.union_power_w);
    }

    #[test]
    fn frequent_switching_favours_application_trimming() {
        let kernels = two_kernel_app();
        // Tiny phases, many switches: reconfiguration dominates.
        let report = fake_report(vec![5_000, 5_000], 10_000);
        let a = analyze_per_kernel(
            "synthetic",
            &kernels,
            &report,
            ParallelPlan::baseline(true),
            &ReconfigModel::default(),
        )
        .unwrap();
        assert!(!a.per_kernel_wins(), "{a:?}");
        assert!(a.per_kernel_seconds > a.union_seconds);
    }
}
