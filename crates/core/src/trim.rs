//! Architecture trimming — the paper's Algorithm 1.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use scratch_asm::{AsmError, Kernel};
use scratch_cu::TrimSet;
use scratch_fpga::{cu_resources, CuShape};
use scratch_isa::{FuncUnit, Opcode};

use crate::analysis::StaticAnalysis;

/// The output of the trimming tool for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrimReport {
    /// Kernel name.
    pub name: String,
    /// The retained instruction set (what the trimmed decode and functional
    /// units still implement).
    pub kept: TrimSet,
    /// Functional units removed wholesale (no retained instruction uses
    /// them — e.g. the SIMF for integer-only kernels).
    pub removed_units: Vec<FuncUnit>,
    /// Instruction usage per unit, % of the supported set (Fig. 6 panel).
    pub usage_percent: BTreeMap<FuncUnit, f64>,
    /// `true` if the kernel needs floating-point vector hardware.
    pub uses_fp: bool,
}

impl TrimReport {
    /// Number of retained instructions.
    #[must_use]
    pub fn kept_count(&self) -> usize {
        self.kept.len()
    }

    /// Number of instructions removed from the supported set.
    #[must_use]
    pub fn removed_count(&self) -> usize {
        Opcode::ALL.len() - self.kept.len()
    }

    /// The retained opcodes as a vector (for the resource model).
    #[must_use]
    pub fn kept_opcodes(&self) -> Vec<Opcode> {
        self.kept.iter().collect()
    }

    /// Resource savings of the trimmed CU relative to a full CU with the
    /// same vector-unit counts, as `[ff%, lut%, dsp%, bram%]`.
    #[must_use]
    pub fn cu_savings_percent(&self, int_valus: u8, fp_valus: u8) -> [f64; 4] {
        let full = cu_resources(&CuShape::full(int_valus, fp_valus.max(1)));
        let trimmed = cu_resources(&CuShape {
            kept: self.kept_opcodes(),
            int_valus,
            fp_valus,
            datapath_bits: 32,
        });
        let saved = full.saturating_sub(&trimmed);
        saved.percent_of(&full)
    }
}

/// Trim for a whole application: the union of the requirements of all its
/// kernels (the paper trims at application level rather than per kernel —
/// see the §4.3 discussion).
///
/// # Errors
///
/// Fails if any binary does not decode.
pub fn trim_kernels(kernels: &[Kernel]) -> Result<TrimReport, AsmError> {
    let mut reports = kernels
        .iter()
        .map(trim_kernel)
        .collect::<Result<Vec<_>, _>>()?;
    let mut merged = reports.pop().expect("at least one kernel");
    for r in reports {
        merged.kept.extend(r.kept.iter());
        merged.uses_fp |= r.uses_fp;
    }
    merged.name = kernels
        .iter()
        .map(Kernel::name)
        .collect::<Vec<_>>()
        .join("+");
    merged.removed_units = FuncUnit::TRIMMABLE
        .iter()
        .copied()
        .filter(|&u| merged.kept.unit_unused(u))
        .collect();
    // Usage percentages over the union.
    merged.usage_percent = FuncUnit::TRIMMABLE
        .iter()
        .map(|&u| {
            let supported = Opcode::ALL.iter().filter(|o| o.unit() == u).count();
            let used = merged.kept.of_unit(u).count();
            (u, 100.0 * used as f64 / supported.max(1) as f64)
        })
        .collect();
    Ok(merged)
}

/// Run the trimming tool on a kernel binary (paper Algorithm 1).
///
/// Step 1 decodes the binary into `required_instructions[FU]`
/// ([`StaticAnalysis`]); step 2 keeps exactly those instructions: every
/// other decode entry and functional sub-unit is removed, and units with no
/// surviving instruction are removed wholesale.
///
/// # Errors
///
/// Fails if the binary does not decode.
pub fn trim_kernel(kernel: &Kernel) -> Result<TrimReport, AsmError> {
    let analysis = StaticAnalysis::of(kernel)?;

    let mut kept = TrimSet::empty();
    for op in analysis.opcodes() {
        kept.insert(op);
    }

    let removed_units = FuncUnit::TRIMMABLE
        .iter()
        .copied()
        .filter(|&u| kept.unit_unused(u))
        .collect();

    let usage_percent = FuncUnit::TRIMMABLE
        .iter()
        .map(|&u| (u, analysis.unit_usage_percent(u)))
        .collect();

    Ok(TrimReport {
        name: kernel.name().to_string(),
        uses_fp: analysis.uses_fp(),
        kept,
        removed_units,
        usage_percent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_asm::KernelBuilder;
    use scratch_isa::Operand;

    fn int_kernel() -> Kernel {
        let mut b = KernelBuilder::new("int");
        b.vgprs(4).sgprs(8);
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(16),
            Operand::IntConst(64),
        )
        .unwrap();
        b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), 0).unwrap();
        b.mubuf(Opcode::BufferStoreDword, 1, 1, 4, Operand::IntConst(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn integer_kernel_drops_whole_simf() {
        let report = trim_kernel(&int_kernel()).unwrap();
        assert!(report.removed_units.contains(&FuncUnit::Simf));
        assert!(!report.removed_units.contains(&FuncUnit::Simd));
        assert!(!report.uses_fp);
        assert_eq!(report.kept_count(), 5);
        assert!(report.removed_count() > 150);
    }

    #[test]
    fn kept_set_is_exactly_the_binary() {
        let report = trim_kernel(&int_kernel()).unwrap();
        for op in [
            Opcode::SMulI32,
            Opcode::VAddI32,
            Opcode::BufferStoreDword,
            Opcode::SWaitcnt,
            Opcode::SEndpgm,
        ] {
            assert!(report.kept.contains(op), "{op:?} must be kept");
        }
        assert!(!report.kept.contains(Opcode::VAddF32));
        assert!(!report.kept.contains(Opcode::VMulLoI32));
    }

    #[test]
    fn savings_increase_when_more_is_removed() {
        let report = trim_kernel(&int_kernel()).unwrap();
        // With FP hardware removed entirely, savings must be substantial.
        let [ff, lut, _, _] = report.cu_savings_percent(1, 0);
        assert!(ff > 50.0, "FF savings {ff:.0}%");
        assert!(lut > 50.0, "LUT savings {lut:.0}%");
    }

    #[test]
    fn usage_percentages_are_small_for_tiny_kernels() {
        let report = trim_kernel(&int_kernel()).unwrap();
        for (&unit, &pct) in &report.usage_percent {
            assert!(pct <= 100.0);
            if unit == FuncUnit::Simf {
                assert_eq!(pct, 0.0);
            }
        }
    }
}
