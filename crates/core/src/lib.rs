//! # scratch-core
//!
//! The SCRATCH framework itself: application-aware analysis and trimming of
//! the MIAOW2.0 soft-GPGPU, plus the end-to-end pipeline that connects the
//! compiler output to a runnable, synthesizable (here: simulatable +
//! resource-modelled) system — the paper's §3.
//!
//! * [`analysis`] — static decoding of a kernel binary into the
//!   `required_instructions` dictionary (Algorithm 1, step 1) and dynamic
//!   instruction-mix profiling (the Fig. 4 characterisation);
//! * [`trim`] — Algorithm 1, step 2: drop unused functional units and
//!   decode entries, producing a [`TrimReport`] whose [`scratch_cu::TrimSet`]
//!   the compute unit enforces;
//! * [`pipeline`] — the [`Scratch`] entry point: analyse → trim →
//!   "synthesise" (resource + power report) → allocate parallelism →
//!   configure a [`scratch_system::System`] → summarise runs
//!   (time, energy, instructions-per-Joule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod pipeline;
pub mod reconfig;
pub mod trim;

pub use analysis::{DynamicMix, StaticAnalysis};
pub use pipeline::{configure, profile_of, RunSummary, Scratch, SynthesisReport};
pub use reconfig::{analyze_per_kernel, PerKernelAnalysis, ReconfigModel};
pub use trim::{trim_kernel, trim_kernels, TrimReport};
