//! The end-to-end SCRATCH pipeline: compile-time analysis and trimming,
//! synthesis-style reporting, parallelism planning, and run summaries.

use serde::{Deserialize, Serialize};

use scratch_asm::{AsmError, Kernel};
use scratch_cu::CuConfig;
use scratch_fpga::{
    allocate_multicore, allocate_multithread, cu_resources, power, system_resources, CuShape,
    Device, ParallelPlan, PowerBreakdown, Resources, SystemProfile,
};
use scratch_system::{RunReport, SystemConfig, SystemKind};

use crate::analysis::StaticAnalysis;
use crate::trim::{trim_kernel, TrimReport};

/// Map a system kind to its hardware profile for the resource/power model.
#[must_use]
pub fn profile_of(kind: SystemKind) -> SystemProfile {
    match kind {
        SystemKind::Original => SystemProfile::ORIGINAL,
        SystemKind::Dcd => SystemProfile::DCD,
        SystemKind::DcdPm => SystemProfile::DCD_PM,
    }
}

/// Build a runnable [`SystemConfig`] from a system kind, a parallelism
/// plan, and (optionally) a trim report whose instruction set the CUs will
/// enforce.
#[must_use]
pub fn configure(kind: SystemKind, plan: ParallelPlan, trim: Option<&TrimReport>) -> SystemConfig {
    let cu = CuConfig {
        int_valus: plan.int_valus,
        fp_valus: plan.fp_valus,
        trim: trim.map(|t| t.kept.clone()),
        ..CuConfig::default()
    };
    SystemConfig::preset(kind)
        .with_cus(plan.cus)
        .expect("allocator plans stay within the device capacity bound")
        .with_cu_config(cu)
}

/// The "synthesis" output of the pipeline: where Vivado would report
/// utilisation and power, the calibrated model does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Total occupied resources.
    pub resources: Resources,
    /// Utilisation as a percentage of the device, `[ff, lut, dsp, bram]`.
    pub utilization_percent: [f64; 4],
    /// CU-level savings relative to an untrimmed CU of the same
    /// parallelism, `[ff, lut, dsp, bram]` (the Fig. 6 savings panel).
    pub cu_savings_percent: [f64; 4],
    /// Board power.
    pub power: PowerBreakdown,
}

/// A run measurement combined with the power model: the quantities the
/// paper reports (execution time, power, energy, instructions-per-Joule).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// CU cycles (max across compute units).
    pub cu_cycles: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Board power.
    pub power: PowerBreakdown,
    /// Energy consumed, `P × t`, in joules.
    pub energy_j: f64,
    /// Energy efficiency: instructions per joule.
    pub ipj: f64,
}

impl RunSummary {
    /// Speedup of `self` relative to `other` (time ratio).
    #[must_use]
    pub fn speedup_vs(&self, other: &RunSummary) -> f64 {
        other.seconds / self.seconds
    }

    /// Energy-efficiency gain of `self` relative to `other` (IPJ ratio).
    #[must_use]
    pub fn ipj_gain_vs(&self, other: &RunSummary) -> f64 {
        self.ipj / other.ipj
    }
}

/// The SCRATCH framework entry point.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Target device for synthesis and allocation.
    pub device: Device,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

impl Scratch {
    /// Framework targeting the paper's Virtex-7 XC7VX690T.
    #[must_use]
    pub fn new() -> Scratch {
        Scratch {
            device: Device::XC7VX690T,
        }
    }

    /// Static analysis of a kernel (Algorithm 1, step 1).
    ///
    /// # Errors
    ///
    /// Fails if the binary does not decode.
    pub fn analyze(&self, kernel: &Kernel) -> Result<StaticAnalysis, AsmError> {
        StaticAnalysis::of(kernel)
    }

    /// Trim the architecture for a kernel (Algorithm 1, step 2).
    ///
    /// # Errors
    ///
    /// Fails if the binary does not decode.
    pub fn trim(&self, kernel: &Kernel) -> Result<TrimReport, AsmError> {
        trim_kernel(kernel)
    }

    /// Resource/power report for a configuration — what the Vivado flow of
    /// §3.3 would print after implementation.
    #[must_use]
    pub fn synthesize(
        &self,
        kind: SystemKind,
        trim: Option<&TrimReport>,
        plan: ParallelPlan,
    ) -> SynthesisReport {
        let shape = match trim {
            Some(t) => CuShape {
                kept: t.kept_opcodes(),
                int_valus: plan.int_valus,
                fp_valus: plan.fp_valus,
                datapath_bits: 32,
            },
            None => CuShape::full(plan.int_valus, plan.fp_valus),
        };
        let profile = profile_of(kind);
        let resources = system_resources(profile, &shape, plan.cus);
        let full = cu_resources(&CuShape::full(plan.int_valus.max(1), plan.fp_valus.max(1)));
        let trimmed_cu = cu_resources(&shape);
        SynthesisReport {
            resources,
            utilization_percent: resources.percent_of(&self.device.capacity),
            cu_savings_percent: full.saturating_sub(&trimmed_cu).percent_of(&full),
            power: power(profile, &shape, plan.cus),
        }
    }

    /// Plan multi-core parallelism from the freed area (Fig. 7A).
    #[must_use]
    pub fn plan_multicore(&self, trim: &TrimReport, max_cus: u8) -> ParallelPlan {
        allocate_multicore(&self.device, &trim.kept_opcodes(), max_cus)
    }

    /// Plan multi-thread parallelism from the freed area (Fig. 7B).
    #[must_use]
    pub fn plan_multithread(&self, trim: &TrimReport, max_valus: u8) -> ParallelPlan {
        allocate_multithread(&self.device, &trim.kept_opcodes(), max_valus)
    }

    /// Combine a run measurement with the power model.
    #[must_use]
    pub fn summarize(
        &self,
        kind: SystemKind,
        trim: Option<&TrimReport>,
        plan: ParallelPlan,
        report: &RunReport,
    ) -> RunSummary {
        let synth = self.synthesize(kind, trim, plan);
        let seconds = report.seconds;
        let energy_j = synth.power.total_w() * seconds;
        let instructions = report.instructions();
        RunSummary {
            seconds,
            cu_cycles: report.cu_cycles,
            instructions,
            power: synth.power,
            energy_j,
            ipj: if energy_j > 0.0 {
                instructions as f64 / energy_j
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_asm::KernelBuilder;
    use scratch_isa::{Opcode, Operand, SmrdOffset};
    use scratch_system::{abi, System};

    /// out[gid] = in[gid] * 3 (integer, memory-bound).
    fn triple_kernel() -> Kernel {
        let mut b = KernelBuilder::new("triple");
        b.vgprs(8).sgprs(32);
        b.smrd(
            Opcode::SBufferLoadDwordx2,
            Operand::Sgpr(20),
            abi::CONST_BUF1,
            SmrdOffset::Imm(0),
        )
        .unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(abi::WG_ID_X),
            Operand::IntConst(64),
        )
        .unwrap();
        b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), abi::TID_X)
            .unwrap();
        b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 1)
            .unwrap();
        b.mubuf(
            Opcode::BufferLoadDword,
            2,
            1,
            abi::UAV_DESC,
            Operand::Sgpr(20),
            0,
        )
        .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.vop3a(
            Opcode::VMulLoI32,
            2,
            Operand::Vgpr(2),
            Operand::IntConst(3),
            None,
        )
        .unwrap();
        b.mubuf(
            Opcode::BufferStoreDword,
            2,
            1,
            abi::UAV_DESC,
            Operand::Sgpr(21),
            0,
        )
        .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    fn run(kernel: &Kernel, config: SystemConfig, n: u32) -> (Vec<u32>, RunReport) {
        let mut sys = System::new(config, kernel).unwrap();
        let input: Vec<u32> = (0..n).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(u64::from(n) * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([n / 64, 1, 1]).unwrap();
        (sys.read_words(a_out, n as usize), sys.report())
    }

    #[test]
    fn end_to_end_trimmed_run_matches_untrimmed() {
        let kernel = triple_kernel();
        let scratch = Scratch::new();
        let trim = scratch.trim(&kernel).unwrap();
        assert!(!trim.uses_fp);

        let plan = ParallelPlan::baseline(trim.uses_fp);
        let base_cfg = configure(SystemKind::DcdPm, ParallelPlan::baseline(true), None);
        let trim_cfg = configure(SystemKind::DcdPm, plan, Some(&trim));

        let (out_base, rep_base) = run(&kernel, base_cfg, 512);
        let (out_trim, rep_trim) = run(&kernel, trim_cfg, 512);
        assert_eq!(out_base, out_trim, "trimming never changes results");
        assert_eq!(out_trim[10], 30);

        // Same cycles (trimming does not change timing), less power.
        assert_eq!(rep_base.cu_cycles, rep_trim.cu_cycles);
        let s_base = scratch.summarize(
            SystemKind::DcdPm,
            None,
            ParallelPlan::baseline(true),
            &rep_base,
        );
        let s_trim = scratch.summarize(SystemKind::DcdPm, Some(&trim), plan, &rep_trim);
        assert!(s_trim.power.total_w() < s_base.power.total_w());
        let gain = s_trim.ipj_gain_vs(&s_base);
        assert!(
            gain > 1.05 && gain < 1.6,
            "trim-only IPJ gain {gain:.2} outside the paper's 1.02-1.25 band"
        );
    }

    #[test]
    fn multicore_plan_speeds_up_and_wins_energy() {
        let kernel = triple_kernel();
        let scratch = Scratch::new();
        let trim = scratch.trim(&kernel).unwrap();
        let plan = scratch.plan_multicore(&trim, 3);
        assert!(plan.cus >= 2);

        let base_cfg = configure(SystemKind::DcdPm, ParallelPlan::baseline(true), None);
        let par_cfg = configure(SystemKind::DcdPm, plan, Some(&trim));
        let (out_base, rep_base) = run(&kernel, base_cfg, 4096);
        let (out_par, rep_par) = run(&kernel, par_cfg, 4096);
        assert_eq!(out_base, out_par);

        let s_base = scratch.summarize(
            SystemKind::DcdPm,
            None,
            ParallelPlan::baseline(true),
            &rep_base,
        );
        let s_par = scratch.summarize(SystemKind::DcdPm, Some(&trim), plan, &rep_par);
        let speedup = s_par.speedup_vs(&s_base);
        assert!(
            speedup > 1.5 && speedup < f64::from(plan.cus) + 0.5,
            "multicore speedup {speedup:.2}"
        );
        assert!(s_par.ipj_gain_vs(&s_base) > 1.0);
    }

    #[test]
    fn synthesis_report_shapes() {
        let kernel = triple_kernel();
        let scratch = Scratch::new();
        let trim = scratch.trim(&kernel).unwrap();
        let base = scratch.synthesize(SystemKind::DcdPm, None, ParallelPlan::baseline(true));
        let trimmed = scratch.synthesize(
            SystemKind::DcdPm,
            Some(&trim),
            ParallelPlan::baseline(false),
        );
        assert!(trimmed.resources.ff < base.resources.ff);
        assert!(trimmed.cu_savings_percent[0] > 40.0);
        assert_eq!(base.cu_savings_percent[0], 0.0);
        assert!(base.utilization_percent[0] < 100.0);
    }

    #[test]
    fn trimmed_system_rejects_foreign_kernel() {
        let kernel = triple_kernel();
        let scratch = Scratch::new();
        let trim = scratch.trim(&kernel).unwrap();

        // An FP kernel on the integer-trimmed architecture must fail hard.
        let mut b = KernelBuilder::new("fp");
        b.vgprs(4).sgprs(8);
        b.vop2(Opcode::VAddF32, 1, Operand::FloatConst(1.0), 0)
            .unwrap();
        b.endpgm().unwrap();
        let fp_kernel = b.finish().unwrap();

        let cfg = configure(
            SystemKind::DcdPm,
            ParallelPlan::baseline(false),
            Some(&trim),
        );
        let mut sys = System::new(cfg, &fp_kernel).unwrap();
        sys.set_args(&[0]);
        assert!(sys.dispatch([1, 1, 1]).is_err());
    }
}
