//! Kernel analysis: the compile-time inspection that drives trimming, and
//! the dynamic characterisation behind the paper's Fig. 4.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use scratch_asm::{AsmError, Kernel};
use scratch_cu::CuStats;
use scratch_isa::{Category, DataType, FuncUnit, Opcode};

/// Static analysis of a kernel binary — Algorithm 1, step 1: walk the
/// binary, decode every instruction, and collect the required instructions
/// per functional unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticAnalysis {
    /// Kernel name.
    pub name: String,
    /// `required_instructions[FU]` from the paper's Algorithm 1.
    pub required: BTreeMap<FuncUnit, BTreeSet<Opcode>>,
    /// Static instruction count (decoded, not executed).
    pub static_instructions: usize,
}

impl StaticAnalysis {
    /// Analyse a kernel binary.
    ///
    /// # Errors
    ///
    /// Fails if the binary does not decode.
    pub fn of(kernel: &Kernel) -> Result<StaticAnalysis, AsmError> {
        let mut required: BTreeMap<FuncUnit, BTreeSet<Opcode>> = BTreeMap::new();
        let insts = kernel.instructions()?;
        let n = insts.len();
        for (_, inst) in insts {
            required
                .entry(inst.opcode.unit())
                .or_default()
                .insert(inst.opcode);
        }
        Ok(StaticAnalysis {
            name: kernel.name().to_string(),
            required,
            static_instructions: n,
        })
    }

    /// All distinct opcodes the kernel uses.
    #[must_use]
    pub fn opcodes(&self) -> Vec<Opcode> {
        self.required.values().flatten().copied().collect()
    }

    /// Distinct opcodes used on `unit`.
    #[must_use]
    pub fn unit_opcodes(&self, unit: FuncUnit) -> usize {
        self.required.get(&unit).map_or(0, BTreeSet::len)
    }

    /// Instruction usage of `unit` as a percentage of the supported set —
    /// the "Instruction Usage" panel of Fig. 6.
    #[must_use]
    pub fn unit_usage_percent(&self, unit: FuncUnit) -> f64 {
        let supported = Opcode::ALL.iter().filter(|o| o.unit() == unit).count();
        if supported == 0 {
            return 0.0;
        }
        100.0 * self.unit_opcodes(unit) as f64 / supported as f64
    }

    /// `true` if the kernel needs floating-point vector hardware.
    #[must_use]
    pub fn uses_fp(&self) -> bool {
        self.unit_opcodes(FuncUnit::Simf) > 0
    }
}

/// Dynamic instruction mix of an execution — the Fig. 4 characterisation
/// (per computational category, split by scalar/vector and int/FP).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicMix {
    /// Total dynamic instructions.
    pub total: u64,
    /// Counts per `(category, data type, vector?)`.
    pub buckets: BTreeMap<(Category, DataType, bool), u64>,
}

impl DynamicMix {
    /// Build the mix from compute-unit statistics.
    #[must_use]
    pub fn of(stats: &CuStats) -> DynamicMix {
        let mut buckets: BTreeMap<(Category, DataType, bool), u64> = BTreeMap::new();
        let mut total = 0;
        for (&op, &n) in &stats.histogram {
            total += n;
            let vector = matches!(op.unit(), FuncUnit::Simd | FuncUnit::Simf)
                || op.is_vector_memory()
                || op.is_lds();
            *buckets
                .entry((op.category(), op.data_type(), vector))
                .or_default() += n;
        }
        DynamicMix { total, buckets }
    }

    /// Percentage of executed instructions in `category` (both domains).
    #[must_use]
    pub fn percent(&self, category: Category) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self
            .buckets
            .iter()
            .filter(|((c, _, _), _)| *c == category)
            .map(|(_, &n)| n)
            .sum();
        100.0 * n as f64 / self.total as f64
    }

    /// Percentage in `category` restricted to `dt`.
    #[must_use]
    pub fn percent_typed(&self, category: Category, dt: DataType) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self
            .buckets
            .iter()
            .filter(|((c, d, _), _)| *c == category && *d == dt)
            .map(|(_, &n)| n)
            .sum();
        100.0 * n as f64 / self.total as f64
    }

    /// Usage classification for Fig. 4's scalar/vector markers: returns
    /// `(uses_scalar, uses_vector)` for the category.
    #[must_use]
    pub fn scalar_vector_use(&self, category: Category) -> (bool, bool) {
        let mut scalar = false;
        let mut vector = false;
        for ((c, _, v), &n) in &self.buckets {
            if *c == category && n > 0 {
                if *v {
                    vector = true;
                } else {
                    scalar = true;
                }
            }
        }
        (scalar, vector)
    }

    /// `true` when any single-precision floating-point arithmetic executed.
    #[must_use]
    pub fn uses_fp(&self) -> bool {
        self.buckets
            .iter()
            .any(|((_, d, _), &n)| *d == DataType::Fp32 && n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_asm::KernelBuilder;
    use scratch_isa::Operand;

    fn mixed_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mixed");
        b.vgprs(8).sgprs(8);
        b.sop1(Opcode::SMovB32, Operand::Sgpr(0), Operand::IntConst(1))
            .unwrap();
        b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), 0).unwrap();
        b.vop2(Opcode::VMulF32, 2, Operand::FloatConst(2.0), 1)
            .unwrap();
        b.mubuf(Opcode::BufferStoreDword, 2, 1, 4, Operand::IntConst(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn static_analysis_builds_required_dictionary() {
        let a = StaticAnalysis::of(&mixed_kernel()).unwrap();
        assert_eq!(a.static_instructions, 6);
        assert_eq!(a.unit_opcodes(FuncUnit::Salu), 1);
        assert_eq!(a.unit_opcodes(FuncUnit::Simd), 1);
        assert_eq!(a.unit_opcodes(FuncUnit::Simf), 1);
        assert_eq!(a.unit_opcodes(FuncUnit::Lsu), 1);
        assert_eq!(a.unit_opcodes(FuncUnit::Branch), 2); // waitcnt + endpgm
        assert!(a.uses_fp());
        assert!(a.unit_usage_percent(FuncUnit::Simf) > 0.0);
        assert!(a.unit_usage_percent(FuncUnit::Simf) < 20.0);
    }

    #[test]
    fn integer_kernel_has_no_fp() {
        let mut b = KernelBuilder::new("int");
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(1), 0).unwrap();
        b.endpgm().unwrap();
        let a = StaticAnalysis::of(&b.finish().unwrap()).unwrap();
        assert!(!a.uses_fp());
        assert_eq!(a.unit_usage_percent(FuncUnit::Simf), 0.0);
    }

    #[test]
    fn dynamic_mix_percentages() {
        let mut stats = CuStats::default();
        for _ in 0..3 {
            stats.record_issue(Opcode::VAddI32, 64);
        }
        stats.record_issue(Opcode::VMulF32, 64);
        let mix = DynamicMix::of(&stats);
        assert_eq!(mix.total, 4);
        assert!((mix.percent(Category::Add) - 75.0).abs() < 1e-9);
        assert!((mix.percent_typed(Category::Mul, DataType::Fp32) - 25.0).abs() < 1e-9);
        assert!(mix.uses_fp());
        let (scalar, vector) = mix.scalar_vector_use(Category::Add);
        assert!(vector && !scalar);
    }
}
