use std::fmt;

use scratch_isa::{FuncUnit, IsaError, Opcode};

/// Errors raised by the compute-unit simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CuError {
    /// The kernel binary failed to decode.
    Isa(IsaError),
    /// An instruction was issued that the trimming tool removed from this
    /// architecture.
    Trimmed {
        /// The offending opcode.
        opcode: Opcode,
    },
    /// An instruction requires a functional unit that the architecture
    /// configuration does not instantiate (e.g. an FP opcode on a CU whose
    /// SIMF units were scratched).
    MissingUnit {
        /// The required unit.
        unit: FuncUnit,
        /// The offending opcode.
        opcode: Opcode,
    },
    /// Control flow left the kernel binary.
    PcOutOfRange {
        /// Word offset the program counter reached.
        pc: usize,
    },
    /// A register index exceeded the kernel's declared budget.
    RegisterOutOfRange {
        /// Register class.
        what: &'static str,
        /// The offending index.
        index: u32,
    },
    /// An LDS access fell outside the workgroup's allocation.
    LdsOutOfRange {
        /// Byte address of the access.
        addr: u32,
        /// Allocated LDS bytes.
        size: u32,
    },
    /// More wavefronts were started than the fetch controller supports.
    TooManyWavefronts,
    /// No wavefront can ever make progress again (e.g. a barrier that can
    /// never be satisfied).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The simulation exceeded its configured cycle budget.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A checkpoint could not be restored onto this configuration/kernel.
    Snapshot {
        /// What failed to match or decode.
        reason: String,
    },
}

impl fmt::Display for CuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CuError::Isa(e) => write!(f, "isa error: {e}"),
            CuError::Trimmed { opcode } => write!(
                f,
                "instruction {} was trimmed from this architecture",
                opcode.mnemonic()
            ),
            CuError::MissingUnit { unit, opcode } => {
                write!(f, "no {unit} unit instantiated for {}", opcode.mnemonic())
            }
            CuError::PcOutOfRange { pc } => {
                write!(f, "program counter left the binary (word {pc})")
            }
            CuError::RegisterOutOfRange { what, index } => {
                write!(f, "{what}{index} exceeds the kernel register budget")
            }
            CuError::LdsOutOfRange { addr, size } => {
                write!(
                    f,
                    "LDS access at byte {addr} outside allocation of {size} bytes"
                )
            }
            CuError::TooManyWavefronts => {
                write!(f, "fetch controller supports at most 40 wavefronts")
            }
            CuError::Deadlock { cycle } => {
                write!(f, "no wavefront can make progress (cycle {cycle})")
            }
            CuError::CycleLimit { limit } => write!(f, "simulation exceeded {limit} cycles"),
            CuError::Snapshot { reason } => write!(f, "snapshot restore failed: {reason}"),
        }
    }
}

impl std::error::Error for CuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CuError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CuError {
    fn from(e: IsaError) -> Self {
        CuError::Isa(e)
    }
}
