//! The compute-unit timing model: fetch/decode/issue scheduling over the
//! functional executor.

use std::collections::HashMap;

use scratch_asm::{Kernel, KernelMeta};
use scratch_isa::{Fields, FuncUnit, Instruction, Opcode, Operand, WAVEFRONT_SIZE};
use scratch_snap::{CuSnapshot, WaveSnapshot, WorkgroupSnapshot};
use scratch_trace::{Attribution, StallReason, TraceEvent, TraceSummary, Tracer};
use serde::{Deserialize, Serialize};

use crate::fault::FaultHook;
use crate::func::{execute, MemEvent};
use crate::memory::Memory;
use crate::wavefront::{WaveState, Wavefront};
use crate::{CuConfig, CuError, CuStats};

/// Register-level dependency key for the issue scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RegKey {
    S(u8),
    V(u8),
    Vcc,
    Exec,
    Scc,
    M0,
}

impl RegKey {
    /// Stable integer encoding used by [`CuSnapshot`] scoreboard entries.
    fn code(self) -> u32 {
        match self {
            RegKey::S(n) => u32::from(n),
            RegKey::V(n) => 0x100 + u32::from(n),
            RegKey::Vcc => 0x200,
            RegKey::Exec => 0x201,
            RegKey::Scc => 0x202,
            RegKey::M0 => 0x203,
        }
    }

    fn from_code(code: u32) -> Option<RegKey> {
        Some(match code {
            0..=0xff => RegKey::S(code as u8),
            0x100..=0x1ff => RegKey::V((code - 0x100) as u8),
            0x200 => RegKey::Vcc,
            0x201 => RegKey::Exec,
            0x202 => RegKey::Scc,
            0x203 => RegKey::M0,
            _ => return None,
        })
    }
}

fn scalar_key(op: Operand) -> Option<RegKey> {
    match op {
        Operand::Sgpr(n) => Some(RegKey::S(n)),
        Operand::VccLo | Operand::VccHi | Operand::Vccz => Some(RegKey::Vcc),
        Operand::ExecLo | Operand::ExecHi | Operand::Execz => Some(RegKey::Exec),
        Operand::Scc => Some(RegKey::Scc),
        Operand::M0 => Some(RegKey::M0),
        _ => None,
    }
}

fn push_group(keys: &mut Vec<RegKey>, base: RegKey, width: u8) {
    match base {
        RegKey::S(n) => {
            for i in 0..width {
                keys.push(RegKey::S(n.saturating_add(i)));
            }
        }
        RegKey::V(n) => {
            for i in 0..width {
                keys.push(RegKey::V(n.saturating_add(i)));
            }
        }
        other => keys.push(other),
    }
}

/// Source registers an instruction reads (for scoreboarding).
fn source_keys(inst: &Instruction) -> Vec<RegKey> {
    let op = inst.opcode;
    let mut keys = Vec::with_capacity(6);
    for src in inst.source_operands() {
        match src {
            Operand::Vgpr(r) => keys.push(RegKey::V(r)),
            other => {
                if let Some(k) = scalar_key(other) {
                    push_group(&mut keys, k, op.src_width());
                }
            }
        }
    }
    // Vector instructions read the execute mask.
    if op.is_vector_alu() || op.is_vector_memory() || op.is_lds() {
        keys.push(RegKey::Exec);
    }
    // Implicit VCC / SCC reads.
    if op.reads_vcc_implicitly() || op == Opcode::VCndmaskB32 {
        keys.push(RegKey::Vcc);
    }
    match op {
        Opcode::SCselectB32
        | Opcode::SCmovB32
        | Opcode::SAddcU32
        | Opcode::SSubbU32
        | Opcode::SCbranchScc0
        | Opcode::SCbranchScc1 => keys.push(RegKey::Scc),
        Opcode::SCbranchVccz | Opcode::SCbranchVccnz => keys.push(RegKey::Vcc),
        Opcode::SCbranchExecz | Opcode::SCbranchExecnz => keys.push(RegKey::Exec),
        _ => {}
    }
    // Read-modify-write destinations.
    match inst.fields {
        Fields::Sopk { sdst, .. }
            if matches!(
                op,
                Opcode::SCmpkEqI32
                    | Opcode::SCmpkLgI32
                    | Opcode::SCmpkGtI32
                    | Opcode::SCmpkGeI32
                    | Opcode::SCmpkLtI32
                    | Opcode::SCmpkLeI32
                    | Opcode::SAddkI32
                    | Opcode::SMulkI32
            ) =>
        {
            if let Some(k) = scalar_key(sdst) {
                keys.push(k);
            }
        }
        Fields::Sop1 { sdst, .. }
            if matches!(
                op,
                Opcode::SBitset0B32 | Opcode::SBitset1B32 | Opcode::SCmovB32
            ) =>
        {
            if let Some(k) = scalar_key(sdst) {
                keys.push(k);
            }
        }
        Fields::Vop2 { vdst, .. } if op == Opcode::VMacF32 => keys.push(RegKey::V(vdst)),
        // Buffer stores read the data register group.
        Fields::Mubuf { vdata, .. } | Fields::Mtbuf { vdata, .. } if op.is_store() => {
            push_group(&mut keys, RegKey::V(vdata), op.dst_width());
        }
        // Buffer descriptors span four SGPRs.
        Fields::Mubuf { srsrc, .. } | Fields::Mtbuf { srsrc, .. } => {
            push_group(&mut keys, RegKey::S(srsrc), 4);
        }
        _ => {}
    }
    keys
}

/// Destination registers an instruction writes (for scoreboarding).
/// Memory-load destinations are deliberately excluded: SI software must
/// order those with `s_waitcnt`, and the timing model charges them there.
fn dest_keys(inst: &Instruction) -> Vec<RegKey> {
    let op = inst.opcode;
    let mut keys = Vec::with_capacity(4);
    if op.is_memory() {
        return keys;
    }
    match inst.fields {
        Fields::Sop2 { sdst, .. } | Fields::Sopk { sdst, .. } | Fields::Sop1 { sdst, .. } => {
            if let Some(k) = scalar_key(sdst) {
                push_group(&mut keys, k, op.dst_width());
            }
        }
        Fields::Sopc { .. } | Fields::Sopp { .. } => {}
        Fields::Vop1 { vdst, .. } => {
            if op == Opcode::VReadfirstlaneB32 {
                keys.push(RegKey::S(vdst));
            } else {
                keys.push(RegKey::V(vdst));
            }
        }
        Fields::Vop2 { vdst, .. } => keys.push(RegKey::V(vdst)),
        Fields::Vopc { .. } => keys.push(RegKey::Vcc),
        Fields::Vop3a { vdst, .. } => keys.push(RegKey::V(vdst)),
        Fields::Vop3b { vdst, sdst, .. } => {
            if !op.is_vector_compare() {
                keys.push(RegKey::V(vdst));
            }
            if let Some(k) = scalar_key(sdst) {
                push_group(&mut keys, k, 2);
            }
        }
        _ => {}
    }
    if op.writes_scc() {
        keys.push(RegKey::Scc);
    }
    if op.writes_vcc_implicitly() && !matches!(inst.fields, Fields::Vop3b { .. }) {
        keys.push(RegKey::Vcc);
    }
    if matches!(
        op,
        Opcode::SAndSaveexecB64
            | Opcode::SOrSaveexecB64
            | Opcode::SXorSaveexecB64
            | Opcode::SAndn2SaveexecB64
    ) {
        keys.push(RegKey::Exec);
    }
    keys
}

/// Initial state for one wavefront, as the ultra-threaded dispatcher would
/// program it over the register access interfaces (§2.1.2).
#[derive(Debug, Clone, Default)]
pub struct WaveInit {
    /// Workgroup handle from [`ComputeUnit::add_workgroup`].
    pub workgroup: usize,
    /// Initial execute mask (lanes beyond the workgroup tail are disabled).
    pub exec: u64,
    /// `(register, value)` scalar initialisers.
    pub sgprs: Vec<(u32, u32)>,
    /// `(register, per-lane values)` vector initialisers.
    pub vgprs: Vec<(u32, Vec<u32>)>,
}

/// Outcome of a budgeted [`ComputeUnit::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every resident wavefront retired; the value is the cycles the whole
    /// logical run took (summed across any pauses).
    Done(u64),
    /// The cycle budget ran out at an instruction boundary; the CU can be
    /// checkpointed or resumed with another `run_until` call.
    Paused,
}

#[derive(Debug)]
struct Workgroup {
    lds: Vec<u32>,
    waves: Vec<usize>,
    arrived: usize,
}

#[derive(Debug)]
struct FuPool {
    salu_busy: u64,
    lsu_busy: u64,
    simd_busy: Vec<u64>,
    simf_busy: Vec<u64>,
}

/// Per-CU tracing state: the stall-attribution engine, an optional
/// structured-event sink, and scratch space for the decision being
/// attributed. Boxed behind an `Option` on [`ComputeUnit`] so the untraced
/// path pays a single pointer test per scheduling decision.
struct CuTrace {
    /// CU index stamped into events and timelines.
    id: u32,
    attr: Attribution,
    sink: Option<Box<dyn Tracer>>,
    /// Waves that issued in the current scheduling decision.
    issued_now: Vec<usize>,
    /// Open (coalescing) stall interval per wave: `(reason, from, to)`.
    /// Only maintained while a sink is attached.
    open: Vec<Option<(StallReason, u64, u64)>>,
}

impl std::fmt::Debug for CuTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CuTrace")
            .field("id", &self.id)
            .field("attr", &self.attr)
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl CuTrace {
    fn new(id: u32, sink: Option<Box<dyn Tracer>>) -> CuTrace {
        CuTrace {
            id,
            attr: Attribution::new(),
            sink,
            issued_now: Vec::new(),
            open: Vec::new(),
        }
    }

    fn emit(&mut self, ev: &TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(ev);
        }
    }

    /// Close wave `wi`'s open stall interval and emit it as one event.
    fn flush_stall(&mut self, wi: usize) {
        if let Some((reason, from, to)) = self.open.get_mut(wi).and_then(Option::take) {
            let ev = TraceEvent::Stall {
                cu: self.id,
                wave: wi as u32,
                reason,
                from,
                to,
            };
            self.emit(&ev);
        }
    }

    /// Extend wave `wi`'s open stall interval, or start a new one (closing
    /// the previous interval when the reason changes or time is
    /// discontiguous).
    fn note_stall(&mut self, wi: usize, reason: StallReason, from: u64, to: u64) {
        if self.sink.is_none() {
            return;
        }
        if let Some((r, _, t)) = &mut self.open[wi] {
            if *r == reason && *t == from {
                *t = to;
                return;
            }
        }
        self.flush_stall(wi);
        self.open[wi] = Some((reason, from, to));
    }
}

/// The MIAOW2.0 compute unit: program, resident wavefronts, functional
/// units and the cycle-level scheduler.
#[derive(Debug)]
pub struct ComputeUnit {
    config: CuConfig,
    meta: KernelMeta,
    /// Word-indexed decoded program.
    program: Vec<Option<Instruction>>,
    waves: Vec<Wavefront>,
    pending: Vec<HashMap<RegKey, u64>>,
    workgroups: Vec<Workgroup>,
    fus: FuPool,
    rr: usize,
    now: u64,
    /// Clock value at which the current (logically single) run began;
    /// persists across [`ComputeUnit::run_until`] pauses so the cycle
    /// limit spans the whole run, and clears when the run completes.
    run_start: Option<u64>,
    stats: CuStats,
    /// Tracing state; `None` keeps the scheduler on its untraced fast path.
    trace: Option<Box<CuTrace>>,
    /// Waves that issued this scheduling decision (the arbiter starts at
    /// most one instruction per issue class per cycle, hence 4 slots).
    /// Maintained only when `config.metrics` is on.
    issued_now: [usize; 4],
    issued_count: u8,
    /// Always-on stall aggregation, indexed by `StallReason as usize`;
    /// folded into [`CuStats::stall_cycles`] when a batch completes.
    stall_acc: [u64; StallReason::ALL.len()],
    /// Fault-injection state; `None` keeps the issue loop on its
    /// uninstrumented fast path (zero overhead when off).
    fault: Option<Box<FaultState>>,
    /// Per-PC retire counters, indexed by word offset; maintained only
    /// when `config.profile` is on (empty otherwise) and grown lazily to
    /// the highest retired pc.
    pc_counts: Vec<u64>,
}

/// Fault-injection plumbing: the installed hook plus the CU's cumulative
/// issue counter the hook triggers on.
#[derive(Debug)]
struct FaultState {
    issued: u64,
    hook: Box<dyn FaultHook>,
}

impl ComputeUnit {
    /// Build a compute unit loaded with `kernel`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel binary does not decode.
    pub fn new(config: CuConfig, kernel: &Kernel) -> Result<ComputeUnit, CuError> {
        let insts = scratch_isa::Instruction::decode_all(kernel.words())?;
        let mut program = vec![None; kernel.words().len()];
        for (pos, inst) in insts {
            program[pos] = Some(inst);
        }
        Ok(ComputeUnit {
            fus: FuPool {
                salu_busy: 0,
                lsu_busy: 0,
                simd_busy: vec![0; config.int_valus as usize],
                simf_busy: vec![0; config.fp_valus as usize],
            },
            config,
            meta: *kernel.meta(),
            program,
            waves: Vec::new(),
            pending: Vec::new(),
            workgroups: Vec::new(),
            rr: 0,
            now: 0,
            run_start: None,
            stats: CuStats::default(),
            trace: None,
            issued_now: [0; 4],
            issued_count: 0,
            stall_acc: [0; StallReason::ALL.len()],
            fault: None,
            pc_counts: Vec::new(),
        })
    }

    /// Enable stall attribution and summary collection, identifying this
    /// CU as `cu` in timelines and events. No structured events are
    /// recorded; use [`ComputeUnit::set_tracer`] for an event stream.
    pub fn enable_tracing(&mut self, cu: u32) {
        if self.trace.is_none() {
            self.trace = Some(Box::new(CuTrace::new(cu, None)));
        }
    }

    /// Enable tracing with a structured-event sink attached (replaces any
    /// previous tracer and attribution state).
    ///
    /// A disabled sink ([`Tracer::is_enabled`] returning `false`, e.g.
    /// [`scratch_trace::NullTracer`]) switches tracing off entirely, so a
    /// caller can pass any sink and pay nothing when it discards events.
    pub fn set_tracer(&mut self, cu: u32, sink: Box<dyn Tracer>) {
        if sink.is_enabled() {
            self.trace = Some(Box::new(CuTrace::new(cu, Some(sink))));
        } else {
            self.trace = None;
        }
    }

    /// `true` when an attribution engine (and possibly a sink) is attached.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Install a fault-injection hook (replaces any previous one). The
    /// hook runs after every issued instruction's architectural effects
    /// apply; see [`FaultHook`].
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault = Some(Box::new(FaultState { issued: 0, hook }));
    }

    /// `true` when a fault hook is installed.
    #[must_use]
    pub fn fault_injection_enabled(&self) -> bool {
        self.fault.is_some()
    }

    /// Drain the records of faults the installed hook has applied so far
    /// (empty without a hook).
    pub fn drain_fault_records(&mut self) -> Vec<crate::FaultRecord> {
        self.fault
            .as_mut()
            .map(|fs| fs.hook.drain_records())
            .unwrap_or_default()
    }

    /// Fold the attribution collected so far into a [`TraceSummary`]
    /// (`None` when tracing is disabled).
    #[must_use]
    pub fn trace_summary(&self) -> Option<TraceSummary> {
        self.trace
            .as_ref()
            .map(|tr| tr.attr.summarize(tr.id, self.now, &self.stats.fu_busy))
    }

    /// Architecture configuration.
    #[must_use]
    pub fn config(&self) -> &CuConfig {
        &self.config
    }

    /// Current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CuStats {
        &self.stats
    }

    /// Access a resident wavefront (for result inspection in tests).
    #[must_use]
    pub fn wave(&self, idx: usize) -> &Wavefront {
        &self.waves[idx]
    }

    /// Allocate a workgroup (LDS storage + barrier scope); returns its
    /// handle for [`WaveInit::workgroup`].
    pub fn add_workgroup(&mut self) -> usize {
        self.workgroups.push(Workgroup {
            lds: vec![0; (self.meta.lds_bytes as usize).div_ceil(4)],
            waves: Vec::new(),
            arrived: 0,
        });
        self.workgroups.len() - 1
    }

    /// Start a wavefront at PC 0 with the dispatcher-provided register state.
    ///
    /// # Errors
    ///
    /// * [`CuError::TooManyWavefronts`] beyond the fetch controller's limit;
    /// * register initialisers outside the kernel's budgets.
    pub fn start_wave(&mut self, init: WaveInit) -> Result<usize, CuError> {
        let resident = self
            .waves
            .iter()
            .filter(|w| w.state != WaveState::Done)
            .count();
        if resident >= usize::from(self.config.max_wavefronts) {
            return Err(CuError::TooManyWavefronts);
        }
        let idx = self.waves.len();
        let mut wave = Wavefront::new(
            idx,
            init.workgroup,
            usize::from(self.meta.sgprs),
            usize::from(self.meta.vgprs),
        );
        wave.exec = init.exec;
        wave.next_ready = self.now;
        for &(r, v) in &init.sgprs {
            wave.set_sgpr(r, v)?;
        }
        for (r, lanes) in &init.vgprs {
            for (lane, &v) in lanes.iter().enumerate().take(scratch_isa::WAVEFRONT_SIZE) {
                wave.set_vgpr(*r, lane, v)?;
            }
        }
        self.workgroups[init.workgroup].waves.push(idx);
        self.waves.push(wave);
        self.pending.push(HashMap::new());
        Ok(idx)
    }

    /// Drop retired wavefronts and workgroups so a new batch can start.
    /// Cycle count and statistics carry over.
    pub fn clear_waves(&mut self) {
        self.waves.clear();
        self.pending.clear();
        self.workgroups.clear();
        self.rr = 0;
        self.run_start = None;
    }

    /// Replace the loaded program with another kernel (the dispatcher
    /// reloads the instruction memory between kernel launches). Resident
    /// wavefronts are dropped; cycle count and statistics carry over.
    ///
    /// # Errors
    ///
    /// Fails if the kernel binary does not decode.
    pub fn load_kernel(&mut self, kernel: &Kernel) -> Result<(), CuError> {
        let insts = scratch_isa::Instruction::decode_all(kernel.words())?;
        let mut program = vec![None; kernel.words().len()];
        for (pos, inst) in insts {
            program[pos] = Some(inst);
        }
        self.program = program;
        self.meta = *kernel.meta();
        self.pc_counts.clear();
        self.clear_waves();
        Ok(())
    }

    /// Per-PC retire counters of the current kernel, indexed by word
    /// offset (empty unless [`CuConfig::profile`] is on). Entries past the
    /// highest retired pc are absent, not zero.
    #[must_use]
    pub fn pc_counts(&self) -> &[u64] {
        &self.pc_counts
    }

    /// Drain the per-PC retire counters, leaving them zeroed for the next
    /// kernel (the dispatcher's per-kernel aggregation hook).
    pub fn take_pc_counts(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pc_counts)
    }

    /// Run until every resident wavefront has executed `s_endpgm`.
    ///
    /// Returns the number of cycles this batch took.
    ///
    /// # Errors
    ///
    /// Trim violations, missing units, register/LDS range errors, barrier
    /// deadlock, or exceeding the configured cycle limit.
    pub fn run_to_completion(&mut self, mem: &mut dyn Memory) -> Result<u64, CuError> {
        match self.run_until(mem, u64::MAX)? {
            RunStatus::Done(cycles) => Ok(cycles),
            RunStatus::Paused => unreachable!("an unbounded budget cannot pause"),
        }
    }

    /// Run for at most `budget` cycles, pausing at an instruction boundary
    /// when the budget runs out. A paused CU is at a checkpointable state:
    /// [`ComputeUnit::snapshot`] captures it exactly, and further
    /// `run_until` calls continue the same logical run (the configured
    /// cycle limit spans the whole run, across pauses). Tracing sinks are
    /// not resumable; use the preemptible path untraced.
    ///
    /// # Errors
    ///
    /// Same failures as [`ComputeUnit::run_to_completion`].
    pub fn run_until(&mut self, mem: &mut dyn Memory, budget: u64) -> Result<RunStatus, CuError> {
        let entry = self.now;
        let fresh = self.run_start.is_none();
        let start = *self.run_start.get_or_insert(entry);
        let deadline = entry.saturating_add(budget);
        if fresh {
            if let Some(tr) = &mut self.trace {
                tr.attr.begin_run(self.waves.len(), start);
                tr.open.clear();
                tr.open.resize(self.waves.len(), None);
                for w in &self.waves {
                    let ev = TraceEvent::WaveStart {
                        cu: tr.id,
                        wave: w.id as u32,
                        workgroup: w.workgroup as u32,
                        now: start,
                    };
                    tr.emit(&ev);
                }
            }
        }
        while self.waves.iter().any(|w| w.state != WaveState::Done) {
            if self.now - start > self.config.cycle_limit {
                return Err(CuError::CycleLimit {
                    limit: self.config.cycle_limit,
                });
            }
            if self.now >= deadline {
                return Ok(RunStatus::Paused);
            }
            let t0 = self.now;
            let t1 = if self.try_issue(mem)? {
                t0 + 1
            } else {
                self.next_event().ok_or(CuError::Deadlock { cycle: t0 })?
            };
            if self.trace.is_some() {
                self.attribute_interval(t0, t1);
            }
            if self.config.metrics {
                self.account_stalls(t0, t1);
            }
            self.now = t1;
        }
        if let Some(tr) = &mut self.trace {
            for wi in 0..self.waves.len() {
                tr.flush_stall(wi);
            }
            tr.attr.end_run(self.now);
        }
        for (i, &reason) in StallReason::ALL.iter().enumerate() {
            if self.stall_acc[i] > 0 {
                *self.stats.stall_cycles.entry(reason).or_default() += self.stall_acc[i];
                self.stall_acc[i] = 0;
            }
        }
        self.stats.cycles = self.now;
        self.run_start = None;
        Ok(RunStatus::Done(self.now - start))
    }

    /// The always-on counterpart of [`ComputeUnit::attribute_interval`]:
    /// charge the decision interval `[t0, t1)` to a fixed per-reason
    /// accumulator instead of per-wave timelines. Same reason priority,
    /// no allocation, no event assembly — cheap enough to stay enabled
    /// (`CuConfig::metrics`). Early-retired waves' idle slot cycles count
    /// as [`StallReason::WavepoolEmpty`], matching the attribution
    /// engine's batch-end accounting.
    fn account_stalls(&mut self, t0: u64, t1: u64) {
        let dt = t1 - t0;
        let issued = &self.issued_now[..usize::from(self.issued_count)];
        for (wi, w) in self.waves.iter().enumerate() {
            if issued.contains(&wi) {
                continue; // the issue cycle is not a stall
            }
            let reason = if w.state == WaveState::Done {
                StallReason::WavepoolEmpty
            } else if w.state == WaveState::AtBarrier {
                StallReason::Barrier
            } else if w.next_ready > t0 {
                w.wait_reason
            } else {
                StallReason::StructuralFu
            };
            self.stall_acc[reason as usize] += dt;
        }
    }

    /// Charge the decision interval `[t0, t1)` to every live wavefront:
    /// one issue cycle for waves that issued at `t0` (issuing decisions
    /// always advance time by exactly one cycle), and `t1 − t0` stalled
    /// cycles with a single [`StallReason`] for everyone else. Successive
    /// intervals tile each wave's residency, which is what makes the
    /// attribution exact (`issued + Σ stalls == retire − start`).
    fn attribute_interval(&mut self, t0: u64, t1: u64) {
        let Some(mut tr) = self.trace.take() else {
            return;
        };
        for (wi, w) in self.waves.iter().enumerate() {
            if tr.attr.is_retired(wi) {
                continue;
            }
            if tr.issued_now.contains(&wi) {
                tr.flush_stall(wi);
                tr.attr.issue(wi);
                if w.state == WaveState::Done {
                    tr.attr.retire(wi, t0 + 1);
                }
            } else {
                // Reason priority: a wave parked at the barrier waits on
                // its workgroup; a wave whose `next_ready` lies ahead
                // waits on whichever stage pushed it there (recorded in
                // `wait_reason`); a wave that was ready yet skipped lost
                // issue arbitration — its unit was busy or the issue
                // class was already taken this cycle.
                let reason = if w.state == WaveState::AtBarrier {
                    StallReason::Barrier
                } else if w.next_ready > t0 {
                    w.wait_reason
                } else {
                    StallReason::StructuralFu
                };
                tr.attr.stall(wi, reason, t1 - t0);
                tr.note_stall(wi, reason, t0, t1);
            }
        }
        self.trace = Some(tr);
    }

    fn inst_at(&self, pc: usize) -> Result<&Instruction, CuError> {
        self.program
            .get(pc)
            .and_then(|slot| slot.as_ref())
            .ok_or(CuError::PcOutOfRange { pc })
    }

    /// Attempt to issue instructions this cycle. MIAOW's issue stage keeps
    /// one scoreboard per instruction class (branch & message, scalar,
    /// vector, LD/ST — Fig. 2) and its arbiter can start one instruction
    /// of each class per cycle, from different wavefronts. Returns `true`
    /// if anything issued.
    fn try_issue(&mut self, mem: &mut dyn Memory) -> Result<bool, CuError> {
        let mut class_used = [false; 4]; // scalar, vector, lsu, branch
        let mut issued_any = false;
        let n = self.waves.len();
        let rr_start = self.rr;
        if let Some(tr) = &mut self.trace {
            tr.issued_now.clear();
        }
        self.issued_count = 0;
        // Structured events are only worth assembling with a sink attached.
        let emit = self.trace.as_ref().is_some_and(|tr| tr.sink.is_some());
        for i in 0..n {
            if class_used.iter().all(|&u| u) {
                break;
            }
            let wi = (rr_start + i) % n;
            if self.waves[wi].state != WaveState::Ready || self.waves[wi].next_ready > self.now {
                continue;
            }
            let pc = self.waves[wi].pc;
            let inst = *self.inst_at(pc)?;
            let op = inst.opcode;

            // One instruction per issue class per cycle.
            let class = match op.unit() {
                FuncUnit::Salu => 0,
                FuncUnit::Simd | FuncUnit::Simf => 1,
                FuncUnit::Lsu => 2,
                FuncUnit::Branch => 3,
            };
            if class_used[class] {
                continue;
            }

            // Trimmed-architecture enforcement (hard errors: the hardware
            // for this instruction does not exist).
            if let Some(trim) = &self.config.trim {
                if !trim.contains(op) {
                    return Err(CuError::Trimmed { opcode: op });
                }
            }
            let unit = op.unit();
            match unit {
                FuncUnit::Simd if self.config.int_valus == 0 => {
                    return Err(CuError::MissingUnit { unit, opcode: op })
                }
                FuncUnit::Simf if self.config.fp_valus == 0 => {
                    return Err(CuError::MissingUnit { unit, opcode: op })
                }
                _ => {}
            }

            // s_waitcnt blocks at issue until the counters drain.
            if op == Opcode::SWaitcnt {
                let Fields::Sopp { simm16 } = inst.fields else {
                    unreachable!()
                };
                let vm_target = u32::from(simm16 & 0xf);
                let lgkm_target = u32::from((simm16 >> 8) & 0x1f);
                let ready = self.waves[wi].waitcnt_ready_at(vm_target, lgkm_target);
                if ready > self.now {
                    if self.trace.is_some() || self.config.metrics {
                        // Which counter gates the wait? Query each alone
                        // (the other target relaxed to "any") and blame
                        // the one that matches the combined ready time.
                        let vm_ready = self.waves[wi].waitcnt_ready_at(vm_target, u32::MAX);
                        self.waves[wi].wait_reason = if vm_ready >= ready {
                            StallReason::WaitcntVm
                        } else {
                            StallReason::WaitcntLgkm
                        };
                    }
                    self.waves[wi].next_ready = ready;
                    continue;
                }
            }

            // Scoreboard: stall on pending writes to our sources.
            let mut dep_ready = 0u64;
            for key in source_keys(&inst) {
                if let Some(&t) = self.pending[wi].get(&key) {
                    dep_ready = dep_ready.max(t);
                }
            }
            if dep_ready > self.now {
                self.waves[wi].next_ready = dep_ready;
                self.waves[wi].wait_reason = StallReason::ScoreboardRaw;
                continue;
            }

            // Structural hazard: need a free unit instance.
            let is_vector = op.is_vector_alu();
            let slot: Option<usize> = match unit {
                FuncUnit::Salu => (self.fus.salu_busy <= self.now).then_some(0),
                FuncUnit::Lsu => (self.fus.lsu_busy <= self.now).then_some(0),
                FuncUnit::Branch => Some(0),
                FuncUnit::Simd => self.fus.simd_busy.iter().position(|&b| b <= self.now),
                FuncUnit::Simf => self.fus.simf_busy.iter().position(|&b| b <= self.now),
            };
            let Some(slot) = slot else { continue };

            // ---- issue ----
            class_used[class] = true;
            issued_any = true;
            self.rr = (wi + 1) % n;
            if let Some(tr) = &mut self.trace {
                tr.issued_now.push(wi);
            }
            if self.config.metrics {
                self.issued_now[usize::from(self.issued_count)] = wi;
                self.issued_count += 1;
            }
            let beats = self.config.vector_beats();
            // SIMD datapaths are pipelined (one beat per cycle); the SIMF
            // maps to iterative FP cores on the FPGA, so a floating-point
            // instruction occupies its unit for the full operation latency
            // — which is why replicating SIMF units pays off so well in the
            // paper's multi-thread experiments (Fig. 7B).
            let occupancy = match unit {
                FuncUnit::Simd => beats,
                FuncUnit::Simf => beats + self.config.latencies.of(op),
                _ => 1,
            };
            match unit {
                FuncUnit::Salu => self.fus.salu_busy = self.now + 1,
                FuncUnit::Lsu => self.fus.lsu_busy = self.now + 1,
                FuncUnit::Branch => {}
                FuncUnit::Simd => self.fus.simd_busy[slot] = self.now + occupancy,
                FuncUnit::Simf => self.fus.simf_busy[slot] = self.now + occupancy,
            }
            self.stats.record_busy(unit, occupancy);

            let next_pc = pc + inst.size_words();
            let lds_ptr = self.waves[wi].workgroup;
            let wave = &mut self.waves[wi];
            let lanes = wave.active_lanes();
            let outcome = execute(&inst, next_pc, wave, &mut self.workgroups[lds_ptr].lds, mem)?;
            wave.retired += 1;
            self.stats.record_issue(op, lanes);
            if self.config.profile {
                if self.pc_counts.len() <= pc {
                    self.pc_counts.resize(pc + 1, 0);
                }
                self.pc_counts[pc] += 1;
            }

            // Result latency for the scoreboard.
            let latency = self.config.latencies.of(op) + if is_vector { beats - 1 } else { 0 };
            let done_at = self.now + latency.max(1);
            self.pending[wi].retain(|_, &mut t| t > self.now);
            for key in dest_keys(&inst) {
                self.pending[wi].insert(key, done_at);
            }

            // Fetch/decode cost for the following instruction.
            let decode = inst.size_words() as u64;
            self.waves[wi].next_ready = self.now + decode.max(1);
            self.waves[wi].wait_reason = StallReason::FetchStarve;

            // Memory events feed the waitcnt counters.
            let mut mem_trace: Option<(&'static str, u64, u32, u64)> = None;
            match outcome.mem {
                Some(MemEvent::Scalar { addr }) => {
                    let t = mem.access(
                        crate::AccessKind::ScalarLoad,
                        addr,
                        1,
                        self.now + self.config.latencies.lsu_addr,
                    );
                    self.waves[wi].lgkm_events.push(t);
                    self.stats.scalar_mem_ops += 1;
                    mem_trace = Some(("ScalarLoad", addr, 1, t));
                }
                // A fully masked-off vector access issues no memory request
                // at all (the LSU sees an empty lane set).
                Some(MemEvent::Vector { lanes: 0, .. }) => {}
                Some(MemEvent::Vector { kind, addr, lanes }) => {
                    let t =
                        mem.access(kind, addr, lanes, self.now + self.config.latencies.lsu_addr);
                    self.waves[wi].vm_events.push(t);
                    self.stats.vector_mem_ops += 1;
                    let label = match kind {
                        crate::AccessKind::ScalarLoad => "ScalarLoad",
                        crate::AccessKind::VectorLoad => "VectorLoad",
                        crate::AccessKind::VectorStore => "VectorStore",
                    };
                    mem_trace = Some((label, addr, lanes, t));
                }
                Some(MemEvent::Lds) => {
                    let t = self.now + 2;
                    self.waves[wi].lgkm_events.push(t);
                    self.stats.lds_ops += 1;
                    mem_trace = Some(("Lds", 0, lanes, t));
                }
                None => {}
            }
            self.waves[wi].retire_mem_events(self.now);

            // Fault injection fires after the instruction's architectural
            // effects apply, keyed on the CU's cumulative issue index so a
            // campaign reproduces identically under any host scheduling.
            if let Some(fs) = &mut self.fault {
                fs.issued += 1;
                fs.hook.post_issue(
                    self.now,
                    fs.issued,
                    &mut self.waves[wi],
                    &mut self.workgroups[lds_ptr].lds,
                );
            }

            if emit {
                if let Some(tr) = &mut self.trace {
                    let cu = tr.id;
                    let wave = wi as u32;
                    let pc = pc as u32;
                    let now = self.now;
                    tr.emit(&TraceEvent::Fetch { cu, wave, pc, now });
                    tr.emit(&TraceEvent::Decode {
                        cu,
                        wave,
                        pc,
                        now,
                        cycles: decode.max(1),
                    });
                    tr.emit(&TraceEvent::Issue {
                        cu,
                        wave,
                        pc,
                        opcode: op,
                        unit,
                        now,
                    });
                    tr.emit(&TraceEvent::Execute {
                        cu,
                        wave,
                        pc,
                        opcode: op,
                        unit,
                        start: now,
                        end: now + occupancy,
                    });
                    tr.emit(&TraceEvent::Writeback {
                        cu,
                        wave,
                        pc,
                        now: done_at,
                    });
                    if let Some((kind, addr, lanes, done)) = mem_trace {
                        tr.emit(&TraceEvent::MemStart {
                            cu,
                            wave,
                            pc,
                            kind: kind.to_owned(),
                            addr,
                            lanes,
                            now,
                        });
                        tr.emit(&TraceEvent::MemComplete {
                            cu,
                            wave,
                            kind: kind.to_owned(),
                            addr,
                            now: done,
                        });
                    }
                }
            }

            // Control flow.
            if outcome.end {
                self.waves[wi].state = WaveState::Done;
                self.stats.wavefronts_retired += 1;
                if emit {
                    let instructions = self.waves[wi].retired;
                    if let Some(tr) = &mut self.trace {
                        tr.emit(&TraceEvent::Retire {
                            cu: tr.id,
                            wave: wi as u32,
                            now: self.now + 1,
                            instructions,
                        });
                    }
                }
            } else if let Some(target) = outcome.new_pc {
                self.waves[wi].pc = target;
                self.waves[wi].next_ready = self.now + self.config.latencies.branch_taken;
                self.stats.branches_taken += 1;
            } else {
                self.waves[wi].pc = next_pc;
            }

            if outcome.barrier {
                self.stats.barriers += 1;
                let wg = self.waves[wi].workgroup;
                self.waves[wi].state = WaveState::AtBarrier;
                self.workgroups[wg].arrived += 1;
                if emit {
                    if let Some(tr) = &mut self.trace {
                        tr.emit(&TraceEvent::BarrierArrive {
                            cu: tr.id,
                            wave: wi as u32,
                            workgroup: wg as u32,
                            now: self.now,
                        });
                    }
                }
                if self.workgroups[wg].arrived == self.workgroups[wg].waves.len() {
                    self.workgroups[wg].arrived = 0;
                    let release = self.now + 1;
                    for &widx in &self.workgroups[wg].waves.clone() {
                        if self.waves[widx].state == WaveState::AtBarrier {
                            self.waves[widx].state = WaveState::Ready;
                            if release > self.waves[widx].next_ready {
                                self.waves[widx].next_ready = release;
                                self.waves[widx].wait_reason = StallReason::Barrier;
                            }
                        }
                    }
                    if emit {
                        if let Some(tr) = &mut self.trace {
                            tr.emit(&TraceEvent::BarrierRelease {
                                cu: tr.id,
                                workgroup: wg as u32,
                                now: release,
                            });
                        }
                    }
                }
            }
        }
        Ok(issued_any)
    }

    /// Earliest future time at which anything could change.
    fn next_event(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > self.now {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        };
        for (wi, w) in self.waves.iter().enumerate() {
            if w.state != WaveState::Ready {
                continue;
            }
            consider(w.next_ready);
            for &t in &w.vm_events {
                consider(t);
            }
            for &t in &w.lgkm_events {
                consider(t);
            }
            for &t in self.pending[wi].values() {
                consider(t);
            }
        }
        consider(self.fus.salu_busy);
        consider(self.fus.lsu_busy);
        for &t in &self.fus.simd_busy {
            consider(t);
        }
        for &t in &self.fus.simf_busy {
            consider(t);
        }
        best
    }

    /// Capture the CU's full architectural state at the current
    /// instruction boundary (i.e. between [`ComputeUnit::run_until`]
    /// calls). The snapshot plus the same [`CuConfig`] and kernel is
    /// sufficient for [`ComputeUnit::restore`] to continue the run
    /// bit-identically — same outputs, same cycle counts.
    #[must_use]
    pub fn snapshot(&self) -> CuSnapshot {
        let waves = self
            .waves
            .iter()
            .zip(&self.pending)
            .map(|(w, pend)| {
                let mut pending: Vec<(u32, u64)> =
                    pend.iter().map(|(&k, &t)| (k.code(), t)).collect();
                pending.sort_unstable();
                WaveSnapshot {
                    id: w.id as u64,
                    workgroup: w.workgroup as u64,
                    pc: w.pc as u64,
                    exec: w.exec,
                    vcc: w.vcc,
                    scc: w.scc,
                    m0: w.m0,
                    sgprs: w.sgprs_raw().to_vec(),
                    vgprs: w.vgprs_raw().iter().map(|row| row.to_vec()).collect(),
                    next_ready: w.next_ready,
                    wait_reason: stall_code(w.wait_reason),
                    vm_events: w.vm_events.clone(),
                    lgkm_events: w.lgkm_events.clone(),
                    state: match w.state {
                        WaveState::Ready => 0,
                        WaveState::AtBarrier => 1,
                        WaveState::Done => 2,
                    },
                    retired: w.retired,
                    pending,
                }
            })
            .collect();
        CuSnapshot {
            now: self.now,
            rr: self.rr as u64,
            run_start: self.run_start,
            waves,
            workgroups: self
                .workgroups
                .iter()
                .map(|wg| WorkgroupSnapshot {
                    lds: wg.lds.clone(),
                    waves: wg.waves.iter().map(|&i| i as u64).collect(),
                    arrived: wg.arrived as u64,
                })
                .collect(),
            salu_busy: self.fus.salu_busy,
            lsu_busy: self.fus.lsu_busy,
            simd_busy: self.fus.simd_busy.clone(),
            simf_busy: self.fus.simf_busy.clone(),
            stall_acc: self.stall_acc.to_vec(),
            stats: self.stats.to_sval(),
            pc_counts: self.pc_counts.clone(),
        }
    }

    /// Rebuild a CU from a snapshot taken by [`ComputeUnit::snapshot`],
    /// given the same configuration and kernel the snapshotted CU ran.
    /// Tracing and fault hooks are *not* part of a snapshot; reattach them
    /// afterwards if needed.
    ///
    /// # Errors
    ///
    /// [`CuError::Snapshot`] when the snapshot does not fit `config` or
    /// the kernel's register/unit budgets, plus any kernel decode error.
    pub fn restore(
        config: CuConfig,
        kernel: &Kernel,
        snap: &CuSnapshot,
    ) -> Result<ComputeUnit, CuError> {
        let bad = |reason: &str| CuError::Snapshot {
            reason: reason.to_owned(),
        };
        let mut cu = ComputeUnit::new(config, kernel)?;
        if snap.simd_busy.len() != cu.fus.simd_busy.len()
            || snap.simf_busy.len() != cu.fus.simf_busy.len()
        {
            return Err(bad("vector-unit count differs from the configuration"));
        }
        if snap.stall_acc.len() != cu.stall_acc.len() {
            return Err(bad("stall-accumulator table size mismatch"));
        }
        cu.now = snap.now;
        cu.rr = usize::try_from(snap.rr).map_err(|_| bad("rr out of range"))?;
        cu.run_start = snap.run_start;
        cu.fus.salu_busy = snap.salu_busy;
        cu.fus.lsu_busy = snap.lsu_busy;
        cu.fus.simd_busy.copy_from_slice(&snap.simd_busy);
        cu.fus.simf_busy.copy_from_slice(&snap.simf_busy);
        cu.stall_acc.copy_from_slice(&snap.stall_acc);
        cu.stats = CuStats::from_sval(&snap.stats)
            .map_err(|e| bad(&format!("stats do not decode: {}", e.0)))?;
        cu.pc_counts = snap.pc_counts.clone();
        for wgs in &snap.workgroups {
            cu.workgroups.push(Workgroup {
                lds: wgs.lds.clone(),
                waves: wgs
                    .waves
                    .iter()
                    .map(|&i| usize::try_from(i).map_err(|_| bad("wave index out of range")))
                    .collect::<Result<_, _>>()?,
                arrived: usize::try_from(wgs.arrived).map_err(|_| bad("arrived out of range"))?,
            });
        }
        for ws in &snap.waves {
            let workgroup =
                usize::try_from(ws.workgroup).map_err(|_| bad("workgroup out of range"))?;
            if workgroup >= cu.workgroups.len() {
                return Err(bad("wave references a missing workgroup"));
            }
            let mut w = Wavefront::new(
                usize::try_from(ws.id).map_err(|_| bad("wave id out of range"))?,
                workgroup,
                usize::from(cu.meta.sgprs),
                usize::from(cu.meta.vgprs),
            );
            if ws.sgprs.len() != w.sgpr_count() || ws.vgprs.len() != w.vgpr_count() {
                return Err(bad("register-file shape differs from the kernel budgets"));
            }
            w.pc = usize::try_from(ws.pc).map_err(|_| bad("pc out of range"))?;
            w.exec = ws.exec;
            w.vcc = ws.vcc;
            w.scc = ws.scc;
            w.m0 = ws.m0;
            w.sgprs_mut().copy_from_slice(&ws.sgprs);
            for (row, src) in w.vgprs_mut().iter_mut().zip(&ws.vgprs) {
                if src.len() != WAVEFRONT_SIZE {
                    return Err(bad("vgpr row is not wavefront-sized"));
                }
                row.copy_from_slice(src);
            }
            w.next_ready = ws.next_ready;
            w.wait_reason = *StallReason::ALL
                .get(usize::from(ws.wait_reason))
                .ok_or_else(|| bad("unknown stall reason"))?;
            w.vm_events = ws.vm_events.clone();
            w.lgkm_events = ws.lgkm_events.clone();
            w.state = match ws.state {
                0 => WaveState::Ready,
                1 => WaveState::AtBarrier,
                2 => WaveState::Done,
                _ => return Err(bad("unknown wave state")),
            };
            w.retired = ws.retired;
            let mut pending = HashMap::with_capacity(ws.pending.len());
            for &(code, t) in &ws.pending {
                let key = RegKey::from_code(code).ok_or_else(|| bad("unknown register key"))?;
                pending.insert(key, t);
            }
            cu.waves.push(w);
            cu.pending.push(pending);
        }
        Ok(cu)
    }
}

/// Stable snapshot code for a stall reason (its index in
/// [`StallReason::ALL`]).
fn stall_code(reason: StallReason) -> u8 {
    StallReason::ALL
        .iter()
        .position(|&r| r == reason)
        .unwrap_or(0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::FixedLatencyMemory;
    use crate::TrimSet;
    use scratch_asm::KernelBuilder;
    use scratch_isa::{Opcode, Operand};

    /// v1 = v0 * 3 + 7 elementwise, no memory.
    fn alu_kernel() -> Kernel {
        let mut b = KernelBuilder::new("alu");
        b.vgprs(4).sgprs(8);
        b.vop3a(
            Opcode::VMulLoI32,
            1,
            Operand::Vgpr(0),
            Operand::IntConst(3),
            None,
        )
        .unwrap();
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(7), 1).unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    fn tid_init(workgroup: usize) -> WaveInit {
        WaveInit {
            workgroup,
            exec: u64::MAX,
            sgprs: vec![],
            vgprs: vec![(0, (0..64).collect())],
        }
    }

    #[test]
    fn single_wave_alu_results() {
        let kernel = alu_kernel();
        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        let w = cu.start_wave(tid_init(wg)).unwrap();
        let mut mem = FixedLatencyMemory::new(0, 0);
        let cycles = cu.run_to_completion(&mut mem).unwrap();
        assert!(cycles > 0);
        for lane in 0..64 {
            assert_eq!(cu.wave(w).vgpr(1, lane).unwrap(), lane as u32 * 3 + 7);
        }
        assert_eq!(cu.stats().wavefronts_retired, 1);
        assert_eq!(cu.stats().instructions, 3);
    }

    #[test]
    fn dependent_chain_slower_than_independent() {
        // Dependent: v1 = v0+1; v2 = v1+1; v3 = v2+1 (RAW chain).
        let mut b = KernelBuilder::new("dep");
        b.vgprs(8);
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(1), 0).unwrap();
        b.vop2(Opcode::VAddI32, 2, Operand::IntConst(1), 1).unwrap();
        b.vop2(Opcode::VAddI32, 3, Operand::IntConst(1), 2).unwrap();
        b.endpgm().unwrap();
        let dep = b.finish().unwrap();

        // Independent: v1 = v0+1; v2 = v0+1; v3 = v0+1.
        let mut b = KernelBuilder::new("indep");
        b.vgprs(8);
        for d in 1..=3 {
            b.vop2(Opcode::VAddI32, d, Operand::IntConst(1), 0).unwrap();
        }
        b.endpgm().unwrap();
        let indep = b.finish().unwrap();

        let run = |k: &Kernel| {
            let mut cu = ComputeUnit::new(
                CuConfig {
                    int_valus: 4,
                    ..CuConfig::default()
                },
                k,
            )
            .unwrap();
            let wg = cu.add_workgroup();
            cu.start_wave(tid_init(wg)).unwrap();
            let mut mem = FixedLatencyMemory::new(0, 0);
            cu.run_to_completion(&mut mem).unwrap()
        };
        assert!(
            run(&dep) > run(&indep),
            "RAW chain must be slower than independent ops"
        );
    }

    #[test]
    fn multiple_valus_speed_up_many_waves() {
        let kernel = alu_kernel();
        let run = |valus: u8| {
            let mut cu = ComputeUnit::new(
                CuConfig {
                    int_valus: valus,
                    ..CuConfig::default()
                },
                &kernel,
            )
            .unwrap();
            let wg = cu.add_workgroup();
            for _ in 0..16 {
                cu.start_wave(tid_init(wg)).unwrap();
            }
            let mut mem = FixedLatencyMemory::new(0, 0);
            cu.run_to_completion(&mut mem).unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four * 2 < one,
            "4 VALUs ({four} cy) should be >2x faster than 1 ({one} cy)"
        );
    }

    #[test]
    fn waitcnt_charges_memory_latency() {
        // load -> waitcnt -> endpgm with big latency vs small latency.
        let mut b = KernelBuilder::new("mem");
        b.vgprs(4).sgprs(8);
        b.mubuf(Opcode::BufferLoadDword, 1, 0, 4, Operand::IntConst(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let run = |latency: u64| {
            let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
            let wg = cu.add_workgroup();
            cu.start_wave(WaveInit {
                workgroup: wg,
                exec: u64::MAX,
                sgprs: vec![(4, 0), (5, 0), (6, 0)],
                vgprs: vec![(0, (0..64).map(|l| l * 4).collect())],
            })
            .unwrap();
            let mut mem = FixedLatencyMemory::new(1024, latency);
            cu.run_to_completion(&mut mem).unwrap()
        };
        let slow = run(500);
        let fast = run(5);
        assert!(slow > fast + 400, "slow={slow} fast={fast}");
    }

    #[test]
    fn barrier_synchronises_workgroup() {
        // Each wave: atomically add 1 to LDS[0], barrier, read LDS[0].
        let mut b = KernelBuilder::new("bar");
        b.vgprs(4).sgprs(4).lds_bytes(16);
        b.vop1(Opcode::VMovB32, 1, Operand::IntConst(0)).unwrap(); // addr
        b.vop1(Opcode::VMovB32, 2, Operand::IntConst(1)).unwrap(); // data
        b.ds_write(Opcode::DsAddU32, 1, 2, 0).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.sopp(Opcode::SBarrier, 0).unwrap();
        b.ds_read(Opcode::DsReadB32, 3, 1, 0).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        let mut ids = Vec::new();
        for _ in 0..4 {
            // Single active lane per wave so the atomic adds 1 per wave.
            ids.push(
                cu.start_wave(WaveInit {
                    workgroup: wg,
                    exec: 1,
                    sgprs: vec![],
                    vgprs: vec![],
                })
                .unwrap(),
            );
        }
        let mut mem = FixedLatencyMemory::new(0, 0);
        cu.run_to_completion(&mut mem).unwrap();
        for &w in &ids {
            assert_eq!(
                cu.wave(w).vgpr(3, 0).unwrap(),
                4,
                "every wave must observe all 4 atomic adds after the barrier"
            );
        }
        assert_eq!(cu.stats().barriers, 4);
    }

    #[test]
    fn trimmed_instruction_is_fatal() {
        let kernel = alu_kernel();
        let mut trim = TrimSet::empty();
        trim.insert(Opcode::VAddI32);
        trim.insert(Opcode::SEndpgm);
        // v_mul_lo_i32 missing.
        let mut cu = ComputeUnit::new(
            CuConfig {
                trim: Some(trim),
                ..CuConfig::default()
            },
            &kernel,
        )
        .unwrap();
        let wg = cu.add_workgroup();
        cu.start_wave(tid_init(wg)).unwrap();
        let mut mem = FixedLatencyMemory::new(0, 0);
        let err = cu.run_to_completion(&mut mem).unwrap_err();
        assert_eq!(
            err,
            CuError::Trimmed {
                opcode: Opcode::VMulLoI32
            }
        );
    }

    #[test]
    fn missing_simf_is_fatal() {
        let mut b = KernelBuilder::new("fp");
        b.vgprs(4);
        b.vop2(Opcode::VAddF32, 1, Operand::FloatConst(1.0), 0)
            .unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();
        let mut cu = ComputeUnit::new(
            CuConfig {
                fp_valus: 0,
                ..CuConfig::default()
            },
            &kernel,
        )
        .unwrap();
        let wg = cu.add_workgroup();
        cu.start_wave(tid_init(wg)).unwrap();
        let mut mem = FixedLatencyMemory::new(0, 0);
        let err = cu.run_to_completion(&mut mem).unwrap_err();
        assert!(matches!(err, CuError::MissingUnit { .. }));
    }

    #[test]
    fn too_many_wavefronts_rejected() {
        let kernel = alu_kernel();
        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        for _ in 0..40 {
            cu.start_wave(tid_init(wg)).unwrap();
        }
        assert_eq!(
            cu.start_wave(tid_init(wg)).unwrap_err(),
            CuError::TooManyWavefronts
        );
    }

    #[test]
    fn loop_kernel_terminates_with_correct_count() {
        // s0 = 10; loop { s0 -= 1 } until s0 == 0.
        let mut b = KernelBuilder::new("loop");
        b.sgprs(4).vgprs(1);
        let top = b.new_label();
        b.sopk(Opcode::SMovkI32, Operand::Sgpr(0), 10).unwrap();
        b.sopk(Opcode::SMovkI32, Operand::Sgpr(1), 0).unwrap();
        b.bind(top).unwrap();
        b.sop2(
            Opcode::SAddI32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(1),
        )
        .unwrap();
        b.sop2(
            Opcode::SSubI32,
            Operand::Sgpr(0),
            Operand::Sgpr(0),
            Operand::IntConst(1),
        )
        .unwrap();
        b.sopc(Opcode::SCmpLgI32, Operand::Sgpr(0), Operand::IntConst(0))
            .unwrap();
        b.branch(Opcode::SCbranchScc1, top);
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        let w = cu.start_wave(tid_init(wg)).unwrap();
        let mut mem = FixedLatencyMemory::new(0, 0);
        cu.run_to_completion(&mut mem).unwrap();
        assert_eq!(cu.wave(w).sgpr(1).unwrap(), 10);
        assert_eq!(cu.wave(w).sgpr(0).unwrap(), 0);
        assert_eq!(cu.stats().branches_taken, 9);
    }

    #[test]
    fn preempted_run_with_snapshots_is_bit_identical() {
        // Uninterrupted reference.
        let kernel = alu_kernel();
        let mut reference = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = reference.add_workgroup();
        for _ in 0..4 {
            reference.start_wave(tid_init(wg)).unwrap();
        }
        let mut mem = FixedLatencyMemory::new(0, 0);
        let ref_cycles = reference.run_to_completion(&mut mem).unwrap();

        // Same run, preempted every cycle with a snapshot/restore (and a
        // binary serde round trip) between quanta.
        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        for _ in 0..4 {
            cu.start_wave(tid_init(wg)).unwrap();
        }
        let mut mem = FixedLatencyMemory::new(0, 0);
        let mut pauses = 0;
        let cycles = loop {
            match cu.run_until(&mut mem, 1).unwrap() {
                RunStatus::Done(cycles) => break cycles,
                RunStatus::Paused => {
                    pauses += 1;
                    let bytes = scratch_snap::to_bytes(&cu.snapshot());
                    let snap: CuSnapshot = scratch_snap::from_bytes(&bytes).unwrap();
                    cu = ComputeUnit::restore(CuConfig::default(), &kernel, &snap).unwrap();
                }
            }
        };
        assert!(pauses > 1, "budget of 1 cycle must actually preempt");
        assert_eq!(cycles, ref_cycles);
        assert_eq!(cu.now(), reference.now());
        assert_eq!(cu.stats(), reference.stats());
        for w in 0..4 {
            for lane in 0..64 {
                assert_eq!(
                    cu.wave(w).vgpr(1, lane).unwrap(),
                    reference.wave(w).vgpr(1, lane).unwrap()
                );
            }
        }
    }

    #[test]
    fn cycle_limit_spans_pauses() {
        let kernel = alu_kernel();
        let config = CuConfig {
            cycle_limit: 4,
            ..CuConfig::default()
        };
        let mut cu = ComputeUnit::new(config, &kernel).unwrap();
        let wg = cu.add_workgroup();
        for _ in 0..16 {
            cu.start_wave(tid_init(wg)).unwrap();
        }
        let mut mem = FixedLatencyMemory::new(0, 0);
        let mut steps = 0;
        let err = loop {
            match cu.run_until(&mut mem, 1) {
                Ok(RunStatus::Paused) => steps += 1,
                Ok(RunStatus::Done(_)) => panic!("16 waves cannot finish in 4 cycles"),
                Err(e) => break e,
            }
            assert!(steps < 100, "cycle limit never tripped");
        };
        assert_eq!(err, CuError::CycleLimit { limit: 4 });
    }

    #[test]
    fn batches_accumulate_cycles() {
        let kernel = alu_kernel();
        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let mut mem = FixedLatencyMemory::new(0, 0);
        let wg = cu.add_workgroup();
        cu.start_wave(tid_init(wg)).unwrap();
        let c1 = cu.run_to_completion(&mut mem).unwrap();
        cu.clear_waves();
        let wg = cu.add_workgroup();
        cu.start_wave(tid_init(wg)).unwrap();
        let c2 = cu.run_to_completion(&mut mem).unwrap();
        assert_eq!(cu.now(), c1 + c2);
    }
}
