//! Execution statistics collected by the compute unit.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use scratch_isa::{Category, DataType, FuncUnit, Opcode};
use scratch_trace::StallReason;

/// Dynamic per-opcode execution counts.
pub type OpcodeHistogram = BTreeMap<Opcode, u64>;

/// Counters accumulated while a compute unit runs.
///
/// These drive the paper's Fig. 4 characterisation (per-category instruction
/// mixes), the energy model (instructions-per-Joule needs retired
/// instructions) and utilisation sanity checks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CuStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Dynamic instructions issued (wavefront granularity).
    pub instructions: u64,
    /// Work-item level operations (instructions × active lanes for vector
    /// ops, ×1 for scalar).
    pub work_item_ops: u64,
    /// Dynamic histogram by opcode.
    pub histogram: OpcodeHistogram,
    /// Busy cycles per functional-unit class (occupancy, summed over
    /// instances).
    pub fu_busy: BTreeMap<FuncUnit, u64>,
    /// Taken branches.
    pub branches_taken: u64,
    /// Vector memory requests issued.
    pub vector_mem_ops: u64,
    /// Scalar memory requests issued.
    pub scalar_mem_ops: u64,
    /// LDS accesses issued.
    pub lds_ops: u64,
    /// Barriers executed (per wavefront arrival).
    pub barriers: u64,
    /// Wavefronts that ran to `s_endpgm`.
    pub wavefronts_retired: u64,
    /// Wavefront-cycles that did not issue, by reason — the cheap
    /// always-on aggregate of the trace crate's stall taxonomy. Collected
    /// whenever [`CuConfig::metrics`](crate::CuConfig) is on (the
    /// default); empty otherwise. Unlike a full trace this keeps no
    /// per-wave timeline, just totals.
    pub stall_cycles: BTreeMap<StallReason, u64>,
}

impl CuStats {
    /// Record the issue of `opcode` with `lanes` active lanes.
    ///
    /// Exposed so analyses can build synthetic statistics; the compute unit
    /// calls this internally for every issued instruction.
    pub fn record_issue(&mut self, opcode: Opcode, lanes: u32) {
        self.instructions += 1;
        *self.histogram.entry(opcode).or_default() += 1;
        self.work_item_ops += if opcode.is_vector_alu() || opcode.is_vector_memory() {
            u64::from(lanes)
        } else {
            1
        };
    }

    /// Record `cycles` of busy time on `unit`.
    pub(crate) fn record_busy(&mut self, unit: FuncUnit, cycles: u64) {
        *self.fu_busy.entry(unit).or_default() += cycles;
    }

    /// Merge another stats block into this one (used when aggregating CUs).
    pub fn merge(&mut self, other: &CuStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.instructions += other.instructions;
        self.work_item_ops += other.work_item_ops;
        for (&op, &n) in &other.histogram {
            *self.histogram.entry(op).or_default() += n;
        }
        for (&u, &n) in &other.fu_busy {
            *self.fu_busy.entry(u).or_default() += n;
        }
        self.branches_taken += other.branches_taken;
        self.vector_mem_ops += other.vector_mem_ops;
        self.scalar_mem_ops += other.scalar_mem_ops;
        self.lds_ops += other.lds_ops;
        self.barriers += other.barriers;
        self.wavefronts_retired += other.wavefronts_retired;
        for (&r, &n) in &other.stall_cycles {
            *self.stall_cycles.entry(r).or_default() += n;
        }
    }

    /// Instructions per cycle (wavefront granularity); zero before any
    /// cycle has been simulated.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Memory operations (vector + scalar) per cycle.
    #[must_use]
    pub fn mem_ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.vector_mem_ops + self.scalar_mem_ops) as f64 / self.cycles as f64
        }
    }

    /// Total stalled wavefront-cycles across every reason.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stall_cycles.values().sum()
    }

    /// Dynamic instruction counts grouped by `(unit, category, data type)`.
    #[must_use]
    pub fn mix(&self) -> BTreeMap<(FuncUnit, Category, DataType), u64> {
        let mut out = BTreeMap::new();
        for (&op, &n) in &self.histogram {
            *out.entry((op.unit(), op.category(), op.data_type()))
                .or_default() += n;
        }
        out
    }

    /// Dynamic instructions executed on `unit`.
    #[must_use]
    pub fn unit_instructions(&self, unit: FuncUnit) -> u64 {
        self.histogram
            .iter()
            .filter(|(op, _)| op.unit() == unit)
            .map(|(_, &n)| n)
            .sum()
    }

    /// The set of distinct opcodes that were actually executed.
    #[must_use]
    pub fn executed_opcodes(&self) -> Vec<Opcode> {
        self.histogram.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_recording_distinguishes_lanes() {
        let mut s = CuStats::default();
        s.record_issue(Opcode::SAddU32, 64);
        s.record_issue(Opcode::VAddI32, 48);
        assert_eq!(s.instructions, 2);
        assert_eq!(s.work_item_ops, 1 + 48);
        assert_eq!(s.unit_instructions(FuncUnit::Salu), 1);
        assert_eq!(s.unit_instructions(FuncUnit::Simd), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CuStats::default();
        a.record_issue(Opcode::VAddF32, 64);
        a.cycles = 100;
        let mut b = CuStats::default();
        b.record_issue(Opcode::VAddF32, 64);
        b.cycles = 150;
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.histogram[&Opcode::VAddF32], 2);
    }

    #[test]
    fn merge_is_associative_and_histogram_preserving() {
        // Three distinct per-CU stats blocks.
        let mut a = CuStats::default();
        a.record_issue(Opcode::VAddI32, 64);
        a.record_issue(Opcode::SAddU32, 64);
        a.record_busy(FuncUnit::Simd, 4);
        a.cycles = 120;
        a.branches_taken = 3;
        a.stall_cycles.insert(StallReason::FetchStarve, 10);
        let mut b = CuStats::default();
        b.record_issue(Opcode::VAddI32, 32);
        b.record_busy(FuncUnit::Simd, 8);
        b.record_busy(FuncUnit::Salu, 1);
        b.cycles = 90;
        b.vector_mem_ops = 7;
        b.stall_cycles.insert(StallReason::FetchStarve, 5);
        b.stall_cycles.insert(StallReason::Barrier, 2);
        let mut c = CuStats::default();
        c.record_issue(Opcode::VMulF32, 16);
        c.record_busy(FuncUnit::Simf, 40);
        c.cycles = 200;
        c.wavefronts_retired = 5;

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // The merged histogram preserves every per-opcode count.
        assert_eq!(ab_c.histogram[&Opcode::VAddI32], 2);
        assert_eq!(ab_c.histogram[&Opcode::SAddU32], 1);
        assert_eq!(ab_c.histogram[&Opcode::VMulF32], 1);
        let total: u64 = ab_c.histogram.values().sum();
        assert_eq!(total, ab_c.instructions);
        // Busy counters accumulate per unit; cycles take the maximum.
        assert_eq!(ab_c.fu_busy[&FuncUnit::Simd], 12);
        assert_eq!(ab_c.fu_busy[&FuncUnit::Simf], 40);
        assert_eq!(ab_c.cycles, 200);
        assert_eq!(ab_c.work_item_ops, 64 + 1 + 32 + 16);
        // Stall aggregates accumulate per reason.
        assert_eq!(ab_c.stall_cycles[&StallReason::FetchStarve], 15);
        assert_eq!(ab_c.stall_cycles[&StallReason::Barrier], 2);
        assert_eq!(ab_c.stall_total(), 17);
    }

    #[test]
    fn mix_buckets_by_metadata() {
        let mut s = CuStats::default();
        s.record_issue(Opcode::VAddF32, 64);
        s.record_issue(Opcode::VMulF32, 64);
        s.record_issue(Opcode::VAddI32, 64);
        let mix = s.mix();
        assert_eq!(mix[&(FuncUnit::Simf, Category::Add, DataType::Fp32)], 1);
        assert_eq!(mix[&(FuncUnit::Simf, Category::Mul, DataType::Fp32)], 1);
        assert_eq!(mix[&(FuncUnit::Simd, Category::Add, DataType::Int)], 1);
    }
}
