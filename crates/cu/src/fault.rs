//! Fault-injection hooks for the compute-unit pipeline.
//!
//! The SCRATCH CU runs on an FPGA, where single-event upsets in register
//! files, LDS block RAMs and functional-unit datapaths are real failure
//! modes. This module gives the simulator a deterministic model of them:
//! a [`FaultHook`] installed on a [`ComputeUnit`](crate::ComputeUnit) is
//! called once after every issued instruction's architectural effects have
//! applied, and may corrupt the issuing wavefront's registers or its
//! workgroup's LDS.
//!
//! Determinism is the design constraint. Faults trigger on the CU's
//! *cumulative issue index* — the Nth instruction this CU issued, across
//! all resident waves — which is identical however the host scheduled the
//! simulation (serial or multi-worker dispatch), so an injected campaign
//! reproduces bit-for-bit from its seed. Raw cycle numbers would not work:
//! the scheduler skips idle cycles.
//!
//! With no hook installed the pipeline takes its untouched fast path (one
//! `Option` check per issue), preserving the zero-overhead-when-off
//! invariant the tracing and metrics planes already follow.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::wavefront::Wavefront;

/// Where a scheduled upset lands inside the CU.
///
/// Register and lane indices are taken modulo the kernel's actual budgets
/// when the fault fires, so every scheduled fault is applicable to every
/// kernel — a plan generated once stays valid across kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Flip one bit of a scalar register of the issuing wave.
    Sgpr {
        /// Register index (modulo the wave's SGPR count).
        reg: u32,
        /// Bit position (modulo 32).
        bit: u8,
    },
    /// Flip one bit of a vector register lane of the issuing wave.
    Vgpr {
        /// Register index (modulo the wave's VGPR count).
        reg: u32,
        /// Lane (modulo the wavefront size).
        lane: u8,
        /// Bit position (modulo 32).
        bit: u8,
    },
    /// Flip one bit of the issuing wave's workgroup LDS.
    Lds {
        /// Word index (modulo the LDS size; no-op when the kernel has no
        /// LDS allocation).
        word: u32,
        /// Bit position (modulo 32).
        bit: u8,
    },
    /// Transient functional-unit error: flip one bit of the condition-code
    /// output path (the wave's VCC mask) right after an instruction
    /// retires its result.
    FuTransient {
        /// Bit position (modulo 64).
        bit: u8,
    },
}

impl FaultTarget {
    /// Short class label (`sgpr`, `vgpr`, `lds`, `fu`).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            FaultTarget::Sgpr { .. } => "sgpr",
            FaultTarget::Vgpr { .. } => "vgpr",
            FaultTarget::Lds { .. } => "lds",
            FaultTarget::FuTransient { .. } => "fu",
        }
    }
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Sgpr { reg, bit } => write!(f, "sgpr s{reg} bit {bit}"),
            FaultTarget::Vgpr { reg, lane, bit } => {
                write!(f, "vgpr v{reg} lane {lane} bit {bit}")
            }
            FaultTarget::Lds { word, bit } => write!(f, "lds word {word} bit {bit}"),
            FaultTarget::FuTransient { bit } => write!(f, "fu vcc bit {bit}"),
        }
    }
}

/// One scheduled upset: fires after the `at_issue`-th instruction issued
/// by its CU (cumulative across waves), corrupting the issuing wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuFault {
    /// Cumulative issue index the fault triggers at (1-based: `1` fires on
    /// the first issued instruction).
    pub at_issue: u64,
    /// What the upset corrupts.
    pub target: FaultTarget,
}

/// A fault that actually fired, as recorded by [`ScheduledFaults`] and
/// reported through `RunReport` by the system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Compute unit the fault fired on.
    pub cu: u32,
    /// Cumulative issue index at which it fired.
    pub at_issue: u64,
    /// CU cycle at which it fired.
    pub now: u64,
    /// Wavefront that was corrupted.
    pub wave: u32,
    /// The upset, with indices as scheduled (pre-modulo).
    pub target: FaultTarget,
}

/// Pipeline fault hook: called once per issued instruction, after its
/// architectural effects have applied, with mutable access to the issuing
/// wavefront and its workgroup's LDS.
///
/// `Send` because the system dispatcher moves CUs onto worker threads;
/// `Debug` because the CU itself is.
pub trait FaultHook: fmt::Debug + Send {
    /// Inject whatever this hook schedules at cumulative issue index
    /// `issued` (1-based) and cycle `now`.
    fn post_issue(&mut self, now: u64, issued: u64, wave: &mut Wavefront, lds: &mut [u32]);

    /// Drain the records of faults applied so far.
    fn drain_records(&mut self) -> Vec<FaultRecord> {
        Vec::new()
    }
}

/// The standard [`FaultHook`]: a list of [`CuFault`]s applied
/// deterministically at their scheduled issue indices, each recorded as a
/// [`FaultRecord`].
#[derive(Debug)]
pub struct ScheduledFaults {
    cu: u32,
    /// Sorted by `at_issue`; `next` indexes the first unfired fault.
    faults: Vec<CuFault>,
    next: usize,
    records: Vec<FaultRecord>,
}

impl ScheduledFaults {
    /// A hook for CU `cu` applying `faults` (sorted internally).
    #[must_use]
    pub fn new(cu: u32, mut faults: Vec<CuFault>) -> ScheduledFaults {
        faults.sort_by_key(|f| f.at_issue);
        ScheduledFaults {
            cu,
            faults,
            next: 0,
            records: Vec::new(),
        }
    }

    fn apply(target: FaultTarget, wave: &mut Wavefront, lds: &mut [u32]) {
        match target {
            FaultTarget::Sgpr { reg, bit } => {
                let r = reg % wave.sgpr_count().max(1) as u32;
                let v = wave.sgpr(r).unwrap_or(0) ^ (1 << (bit % 32));
                let _ = wave.set_sgpr(r, v);
            }
            FaultTarget::Vgpr { reg, lane, bit } => {
                let r = reg % wave.vgpr_count().max(1) as u32;
                let lane = usize::from(lane) % scratch_isa::WAVEFRONT_SIZE;
                let v = wave.vgpr(r, lane).unwrap_or(0) ^ (1 << (bit % 32));
                let _ = wave.set_vgpr(r, lane, v);
            }
            FaultTarget::Lds { word, bit } => {
                if !lds.is_empty() {
                    let w = word as usize % lds.len();
                    lds[w] ^= 1 << (bit % 32);
                }
            }
            FaultTarget::FuTransient { bit } => {
                wave.vcc ^= 1 << (bit % 64);
            }
        }
    }
}

impl FaultHook for ScheduledFaults {
    fn post_issue(&mut self, now: u64, issued: u64, wave: &mut Wavefront, lds: &mut [u32]) {
        while let Some(f) = self.faults.get(self.next) {
            if f.at_issue > issued {
                break;
            }
            ScheduledFaults::apply(f.target, wave, lds);
            self.records.push(FaultRecord {
                cu: self.cu,
                at_issue: f.at_issue,
                now,
                wave: wave.id as u32,
                target: f.target,
            });
            self.next += 1;
        }
    }

    fn drain_records(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Wavefront {
        Wavefront::new(0, 0, 16, 8)
    }

    #[test]
    fn sgpr_flip_toggles_exactly_one_bit() {
        let mut w = wave();
        w.set_sgpr(3, 0b1010).unwrap();
        let mut lds = [0u32; 4];
        let mut hook = ScheduledFaults::new(
            0,
            vec![CuFault {
                at_issue: 1,
                target: FaultTarget::Sgpr { reg: 3, bit: 1 },
            }],
        );
        hook.post_issue(7, 1, &mut w, &mut lds);
        assert_eq!(w.sgpr(3).unwrap(), 0b1000);
        let recs = hook.drain_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].now, 7);
        assert!(hook.drain_records().is_empty());
    }

    #[test]
    fn fault_waits_for_its_issue_index() {
        let mut w = wave();
        let mut lds = [0u32; 1];
        let mut hook = ScheduledFaults::new(
            0,
            vec![CuFault {
                at_issue: 5,
                target: FaultTarget::Lds { word: 9, bit: 0 },
            }],
        );
        hook.post_issue(0, 4, &mut w, &mut lds);
        assert_eq!(lds[0], 0);
        hook.post_issue(1, 5, &mut w, &mut lds);
        assert_eq!(lds[0], 1); // word 9 % len 1 == 0
    }

    #[test]
    fn indices_clamp_by_modulo() {
        let mut w = wave();
        let mut lds: [u32; 0] = [];
        let mut hook = ScheduledFaults::new(
            2,
            vec![
                CuFault {
                    at_issue: 1,
                    target: FaultTarget::Vgpr {
                        reg: 1000,
                        lane: 200,
                        bit: 40,
                    },
                },
                CuFault {
                    at_issue: 1,
                    target: FaultTarget::Lds { word: 3, bit: 3 },
                },
            ],
        );
        // Out-of-range targets never panic; empty LDS is a no-op.
        hook.post_issue(0, 1, &mut w, &mut lds);
        assert_eq!(hook.drain_records().len(), 2);
    }

    #[test]
    fn targets_roundtrip_through_serde() {
        let f = CuFault {
            at_issue: 42,
            target: FaultTarget::Vgpr {
                reg: 3,
                lane: 17,
                bit: 31,
            },
        };
        let v = serde::Serialize::to_sval(&f);
        let back: CuFault = serde::Deserialize::from_sval(&v).unwrap();
        assert_eq!(back, f);
    }
}
