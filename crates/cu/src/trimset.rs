//! The set of instructions a trimmed architecture retains.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use scratch_isa::{FuncUnit, Opcode};

/// The instruction subset kept by the SCRATCH trimming tool.
///
/// A `TrimSet` is produced by the trimming pass in `scratch-core` and
/// enforced by the compute unit at issue time: decode entries and functional
/// sub-units for anything outside the set no longer exist in the trimmed
/// hardware, so executing such an instruction is an architecture error.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrimSet {
    kept: BTreeSet<Opcode>,
}

impl TrimSet {
    /// The full (untrimmed) instruction set.
    #[must_use]
    pub fn full() -> TrimSet {
        TrimSet {
            kept: Opcode::ALL.iter().copied().collect(),
        }
    }

    /// An empty set (useful as a builder start).
    #[must_use]
    pub fn empty() -> TrimSet {
        TrimSet::default()
    }

    /// Insert an opcode into the kept set.
    pub fn insert(&mut self, opcode: Opcode) {
        self.kept.insert(opcode);
    }

    /// `true` if the architecture retains `opcode`.
    #[must_use]
    pub fn contains(&self, opcode: Opcode) -> bool {
        self.kept.contains(&opcode)
    }

    /// Number of retained instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Iterate over the retained opcodes.
    pub fn iter(&self) -> impl Iterator<Item = Opcode> + '_ {
        self.kept.iter().copied()
    }

    /// Retained opcodes executing on `unit`.
    pub fn of_unit(&self, unit: FuncUnit) -> impl Iterator<Item = Opcode> + '_ {
        self.kept.iter().copied().filter(move |o| o.unit() == unit)
    }

    /// `true` when no retained instruction needs `unit` — the whole unit can
    /// be scratched from the design (e.g. the SIMF for integer-only kernels).
    #[must_use]
    pub fn unit_unused(&self, unit: FuncUnit) -> bool {
        self.of_unit(unit).next().is_none()
    }
}

impl FromIterator<Opcode> for TrimSet {
    fn from_iter<T: IntoIterator<Item = Opcode>>(iter: T) -> Self {
        TrimSet {
            kept: iter.into_iter().collect(),
        }
    }
}

impl Extend<Opcode> for TrimSet {
    fn extend<T: IntoIterator<Item = Opcode>>(&mut self, iter: T) {
        self.kept.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_contains_everything() {
        let t = TrimSet::full();
        assert_eq!(t.len(), Opcode::ALL.len());
        for &op in Opcode::ALL {
            assert!(t.contains(op));
        }
        assert!(!t.unit_unused(FuncUnit::Simf));
    }

    #[test]
    fn integer_only_set_frees_the_simf() {
        let t: TrimSet = [Opcode::SMovB32, Opcode::VAddI32, Opcode::SEndpgm]
            .into_iter()
            .collect();
        assert!(t.unit_unused(FuncUnit::Simf));
        assert!(!t.unit_unused(FuncUnit::Simd));
        assert!(t.contains(Opcode::VAddI32));
        assert!(!t.contains(Opcode::VAddF32));
    }
}
