//! The global-memory interface the compute unit talks to.

use serde::{Deserialize, Serialize};

/// Classification of a memory access, used by timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// SMRD scalar load (one request per wavefront).
    ScalarLoad,
    /// MUBUF/MTBUF vector load.
    VectorLoad,
    /// MUBUF/MTBUF vector store.
    VectorStore,
}

/// Functional + timing interface to the memory system behind the CU.
///
/// `scratch-system` implements the paper's three configurations (Original,
/// DCD, DCD+PM); [`FixedLatencyMemory`] is a flat test double.
///
/// Functional reads/writes are performed eagerly when an instruction issues;
/// [`Memory::access`] separately returns the *completion cycle* used to
/// drive the wavefront's `vmcnt`/`lgkmcnt` counters.
pub trait Memory {
    /// Read a 32-bit word. Unmapped addresses read as zero (matching the
    /// out-of-range behaviour of SI buffer loads).
    fn read_u32(&mut self, addr: u64) -> u32;

    /// Write a 32-bit word. Writes outside the mapped range are dropped
    /// (matching SI buffer-store range checking).
    fn write_u32(&mut self, addr: u64, value: u32);

    /// Charge the timing of an access issued at cycle `now` touching
    /// `lanes` active lanes at `addr`; returns the completion cycle.
    fn access(&mut self, kind: AccessKind, addr: u64, lanes: u32, now: u64) -> u64;
}

/// A flat memory with a fixed per-access latency — the unit-test double.
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    data: Vec<u8>,
    latency: u64,
    /// Number of accesses that fell outside the mapped range.
    pub out_of_range: u64,
}

impl FixedLatencyMemory {
    /// Allocate `size` bytes of zeroed memory with the given latency.
    #[must_use]
    pub fn new(size: usize, latency: u64) -> FixedLatencyMemory {
        FixedLatencyMemory {
            data: vec![0; size],
            latency,
            out_of_range: 0,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the memory has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy a `u32` slice into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit.
    pub fn load_words(&mut self, addr: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = addr as usize + i * 4;
            self.data[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Read back a `u32` slice.
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    #[must_use]
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| {
                let a = addr as usize + i * 4;
                u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
            })
            .collect()
    }
}

impl Memory for FixedLatencyMemory {
    fn read_u32(&mut self, addr: u64) -> u32 {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
        } else {
            self.out_of_range += 1;
            0
        }
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.out_of_range += 1;
        }
    }

    fn access(&mut self, _kind: AccessKind, _addr: u64, _lanes: u32, now: u64) -> u64 {
        now + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = FixedLatencyMemory::new(64, 10);
        m.write_u32(8, 0xdead_beef);
        assert_eq!(m.read_u32(8), 0xdead_beef);
        assert_eq!(m.read_u32(12), 0);
    }

    #[test]
    fn out_of_range_is_safe() {
        let mut m = FixedLatencyMemory::new(8, 1);
        m.write_u32(100, 1);
        assert_eq!(m.read_u32(100), 0);
        assert_eq!(m.out_of_range, 2);
    }

    #[test]
    fn bulk_helpers() {
        let mut m = FixedLatencyMemory::new(64, 1);
        m.load_words(0, &[1, 2, 3]);
        assert_eq!(m.read_words(0, 3), vec![1, 2, 3]);
    }

    #[test]
    fn fixed_latency() {
        let mut m = FixedLatencyMemory::new(8, 25);
        assert_eq!(m.access(AccessKind::VectorLoad, 0, 64, 100), 125);
    }
}
