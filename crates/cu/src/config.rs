//! Compute-unit architecture configuration.

use serde::{Deserialize, Serialize};

use scratch_isa::{Category, Opcode};

use crate::TrimSet;

/// Execution latencies, in CU cycles, per operation class.
///
/// Defaults reflect the relative costs of the MIAOW2.0 functional units on
/// the Virtex-7 at 50 MHz: scalar single-cycle, pipelined integer vector
/// operations, multi-cycle floating point, and long transcendental /
/// reciprocal paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latencies {
    /// Scalar ALU operations.
    pub salu: u64,
    /// Integer vector add/logic/shift/mov.
    pub simd_simple: u64,
    /// Integer vector multiply / multiply-add.
    pub simd_mul: u64,
    /// Floating-point add/compare/min/max.
    pub simf_add: u64,
    /// Floating-point multiply / MAC / MAD / FMA.
    pub simf_mul: u64,
    /// Floating-point reciprocal (division path).
    pub simf_div: u64,
    /// Transcendental operations (exp, log, sqrt, rsq, sin, cos).
    pub simf_trans: u64,
    /// Numeric conversions and floating-point rounding.
    pub simf_convert: u64,
    /// LSU address calculation (added before any memory latency).
    pub lsu_addr: u64,
    /// Penalty on a taken branch (refetch through the wavepool).
    pub branch_taken: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            salu: 1,
            simd_simple: 1,
            simd_mul: 4,
            simf_add: 4,
            simf_mul: 5,
            simf_div: 12,
            simf_trans: 16,
            simf_convert: 4,
            lsu_addr: 1,
            branch_taken: 5,
        }
    }
}

impl Latencies {
    /// Result latency of `opcode` (excluding vector beats and memory time).
    #[must_use]
    pub fn of(&self, opcode: Opcode) -> u64 {
        use scratch_isa::FuncUnit as U;
        match opcode.unit() {
            U::Salu | U::Branch => self.salu,
            U::Lsu => self.lsu_addr,
            U::Simd => match opcode.category() {
                Category::Mul => self.simd_mul,
                _ => self.simd_simple,
            },
            U::Simf => match opcode.category() {
                Category::Mul => self.simf_mul,
                Category::Div => self.simf_div,
                Category::Trans => self.simf_trans,
                Category::Convert => self.simf_convert,
                _ => self.simf_add,
            },
        }
    }
}

/// Architecture configuration of one compute unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuConfig {
    /// Number of integer vector ALUs (SIMD units). MIAOW instantiates up to
    /// four; the paper's multi-thread experiments vary this.
    pub int_valus: u8,
    /// Number of floating-point vector ALUs (SIMF units). Zero on trimmed
    /// integer-only architectures.
    pub fp_valus: u8,
    /// Maximum resident wavefronts (the MIAOW fetch controller supports 40).
    pub max_wavefronts: u8,
    /// SIMD/SIMF datapath width in lanes; a 64-lane wavefront executes in
    /// `64 / simd_width` beats.
    pub simd_width: u8,
    /// Execution latencies.
    pub latencies: Latencies,
    /// Instructions the trimming tool kept; `None` means the full ISA.
    pub trim: Option<TrimSet>,
    /// Upper bound on simulated cycles (deadlock/runaway protection).
    pub cycle_limit: u64,
    /// Keep the always-on metrics aggregates (stall-reason cycle counters
    /// feeding [`CuStats::stall_cycles`](crate::CuStats)). On by default —
    /// the accounting is a few array adds per scheduling decision — and
    /// only turned off by the overhead benchmarks that measure that cost.
    pub metrics: bool,
    /// Keep per-PC retire counters (the continuous-profiler feed behind
    /// `scratch-profile`'s `InstrSignature` aggregation). Off by default:
    /// unlike `metrics` this buys nothing unless someone reads them out.
    pub profile: bool,
}

impl Default for CuConfig {
    fn default() -> Self {
        CuConfig {
            int_valus: 1,
            fp_valus: 1,
            max_wavefronts: scratch_isa::MAX_WAVEFRONTS as u8,
            simd_width: 16,
            latencies: Latencies::default(),
            trim: None,
            cycle_limit: 4_000_000_000,
            metrics: true,
            profile: false,
        }
    }
}

impl CuConfig {
    /// Beats a vector instruction occupies its unit for
    /// (`wavefront / simd_width`).
    #[must_use]
    pub fn vector_beats(&self) -> u64 {
        (scratch_isa::WAVEFRONT_SIZE as u64).div_ceil(u64::from(self.simd_width.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_beats_is_four() {
        assert_eq!(CuConfig::default().vector_beats(), 4);
    }

    #[test]
    fn latency_classes() {
        let l = Latencies::default();
        assert_eq!(l.of(Opcode::SAddU32), l.salu);
        assert_eq!(l.of(Opcode::VAddI32), l.simd_simple);
        assert_eq!(l.of(Opcode::VMulLoI32), l.simd_mul);
        assert_eq!(l.of(Opcode::VAddF32), l.simf_add);
        assert_eq!(l.of(Opcode::VMadF32), l.simf_mul);
        assert_eq!(l.of(Opcode::VRcpF32), l.simf_div);
        assert_eq!(l.of(Opcode::VSqrtF32), l.simf_trans);
        assert_eq!(l.of(Opcode::VCvtF32I32), l.simf_convert);
        assert_eq!(l.of(Opcode::BufferLoadDword), l.lsu_addr);
    }
}
