//! Per-wavefront architectural and timing state.

use scratch_isa::{Operand, WAVEFRONT_SIZE};
use scratch_trace::StallReason;

use crate::CuError;

/// Scheduling state of a wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaveState {
    /// May issue instructions.
    Ready,
    /// Stopped at an `s_barrier`, waiting for the rest of the workgroup.
    AtBarrier,
    /// Executed `s_endpgm`.
    Done,
}

/// One wavefront: 64 work-items sharing a program counter (§2.1.1).
#[derive(Debug, Clone)]
pub struct Wavefront {
    /// Wavefront identifier within the CU.
    pub id: usize,
    /// Workgroup this wavefront belongs to (shares LDS and barriers).
    pub workgroup: usize,
    /// Program counter, in words from the start of the binary.
    pub pc: usize,
    /// 64-bit execute mask.
    pub exec: u64,
    /// Vector condition code.
    pub vcc: u64,
    /// Scalar condition code.
    pub scc: bool,
    /// Memory-descriptor register.
    pub m0: u32,
    sgprs: Vec<u32>,
    vgprs: Vec<[u32; WAVEFRONT_SIZE]>,

    // --- timing state (driven by the pipeline) ---
    /// Cycle at which the next instruction may issue.
    pub(crate) next_ready: u64,
    /// Why the wavefront is waiting for `next_ready` (set by whichever
    /// pipeline stage last pushed `next_ready` forward; read by the
    /// stall-attribution engine when tracing is enabled).
    pub(crate) wait_reason: StallReason,
    /// Outstanding vector-memory completion times (vmcnt).
    pub(crate) vm_events: Vec<u64>,
    /// Outstanding LDS/scalar-memory completion times (lgkmcnt).
    pub(crate) lgkm_events: Vec<u64>,
    pub(crate) state: WaveState,
    /// Dynamic instruction count executed by this wavefront.
    pub(crate) retired: u64,
}

impl Wavefront {
    /// Create a wavefront with the given register budgets, all state zeroed
    /// and all lanes enabled.
    #[must_use]
    pub fn new(id: usize, workgroup: usize, sgprs: usize, vgprs: usize) -> Wavefront {
        Wavefront {
            id,
            workgroup,
            pc: 0,
            exec: u64::MAX,
            vcc: 0,
            scc: false,
            m0: u32::MAX,
            sgprs: vec![0; sgprs],
            vgprs: vec![[0; WAVEFRONT_SIZE]; vgprs],
            next_ready: 0,
            wait_reason: StallReason::FetchStarve,
            vm_events: Vec::new(),
            lgkm_events: Vec::new(),
            state: WaveState::Ready,
            retired: 0,
        }
    }

    /// Number of architected SGPRs.
    #[must_use]
    pub fn sgpr_count(&self) -> usize {
        self.sgprs.len()
    }

    /// Number of architected VGPRs.
    #[must_use]
    pub fn vgpr_count(&self) -> usize {
        self.vgprs.len()
    }

    /// Read SGPR `n`.
    ///
    /// # Errors
    ///
    /// Fails when `n` exceeds the kernel's register budget.
    pub fn sgpr(&self, n: u32) -> Result<u32, CuError> {
        self.sgprs
            .get(n as usize)
            .copied()
            .ok_or(CuError::RegisterOutOfRange {
                what: "s",
                index: n,
            })
    }

    /// Write SGPR `n`.
    ///
    /// # Errors
    ///
    /// Fails when `n` exceeds the kernel's register budget.
    pub fn set_sgpr(&mut self, n: u32, value: u32) -> Result<(), CuError> {
        match self.sgprs.get_mut(n as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(CuError::RegisterOutOfRange {
                what: "s",
                index: n,
            }),
        }
    }

    /// Read VGPR `r` of `lane`.
    ///
    /// # Errors
    ///
    /// Fails when `r` exceeds the kernel's register budget.
    pub fn vgpr(&self, r: u32, lane: usize) -> Result<u32, CuError> {
        self.vgprs
            .get(r as usize)
            .map(|regs| regs[lane])
            .ok_or(CuError::RegisterOutOfRange {
                what: "v",
                index: r,
            })
    }

    /// Write VGPR `r` of `lane`.
    ///
    /// # Errors
    ///
    /// Fails when `r` exceeds the kernel's register budget.
    pub fn set_vgpr(&mut self, r: u32, lane: usize, value: u32) -> Result<(), CuError> {
        match self.vgprs.get_mut(r as usize) {
            Some(regs) => {
                regs[lane] = value;
                Ok(())
            }
            None => Err(CuError::RegisterOutOfRange {
                what: "v",
                index: r,
            }),
        }
    }

    /// Full scalar register file (for checkpointing).
    pub(crate) fn sgprs_raw(&self) -> &[u32] {
        &self.sgprs
    }

    /// Full vector register file (for checkpointing).
    pub(crate) fn vgprs_raw(&self) -> &[[u32; WAVEFRONT_SIZE]] {
        &self.vgprs
    }

    /// Mutable scalar register file (for snapshot restore).
    pub(crate) fn sgprs_mut(&mut self) -> &mut [u32] {
        &mut self.sgprs
    }

    /// Mutable vector register file (for snapshot restore).
    pub(crate) fn vgprs_mut(&mut self) -> &mut [[u32; WAVEFRONT_SIZE]] {
        &mut self.vgprs
    }

    /// `true` when `lane` is enabled by the execute mask.
    #[must_use]
    pub fn lane_active(&self, lane: usize) -> bool {
        self.exec & (1 << lane) != 0
    }

    /// Number of active lanes.
    #[must_use]
    pub fn active_lanes(&self) -> u32 {
        self.exec.count_ones()
    }

    /// Dynamic instructions retired by this wavefront.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Read a scalar operand of `width` dwords (1 or 2) as a zero-extended
    /// 64-bit value. Inline integer constants are sign-extended; float
    /// constants contribute their IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// Fails on out-of-budget SGPR indices.
    pub fn read_scalar(&self, op: Operand, width: u8) -> Result<u64, CuError> {
        Ok(match op {
            Operand::Sgpr(n) => {
                let lo = u64::from(self.sgpr(n.into())?);
                if width >= 2 {
                    lo | (u64::from(self.sgpr(u32::from(n) + 1)?) << 32)
                } else {
                    lo
                }
            }
            Operand::VccLo => {
                if width >= 2 {
                    self.vcc
                } else {
                    self.vcc & 0xffff_ffff
                }
            }
            Operand::VccHi => self.vcc >> 32,
            Operand::ExecLo => {
                if width >= 2 {
                    self.exec
                } else {
                    self.exec & 0xffff_ffff
                }
            }
            Operand::ExecHi => self.exec >> 32,
            Operand::M0 => u64::from(self.m0),
            Operand::Scc => u64::from(self.scc),
            Operand::Vccz => u64::from(self.vcc == 0),
            Operand::Execz => u64::from(self.exec == 0),
            Operand::IntConst(v) => {
                let v64 = i64::from(v);
                if width >= 2 {
                    v64 as u64
                } else {
                    u64::from(v64 as u32)
                }
            }
            Operand::FloatConst(f) => u64::from(f.to_bits()),
            Operand::Literal(v) => u64::from(v),
            Operand::Vgpr(_) => {
                return Err(CuError::RegisterOutOfRange {
                    what: "scalar read of v",
                    index: 0,
                })
            }
        })
    }

    /// Write a scalar destination of `width` dwords.
    ///
    /// # Errors
    ///
    /// Fails on out-of-budget SGPR indices or non-writable destinations.
    pub fn write_scalar(&mut self, dst: Operand, width: u8, value: u64) -> Result<(), CuError> {
        match dst {
            Operand::Sgpr(n) => {
                self.set_sgpr(n.into(), value as u32)?;
                if width >= 2 {
                    self.set_sgpr(u32::from(n) + 1, (value >> 32) as u32)?;
                }
            }
            Operand::VccLo => {
                if width >= 2 {
                    self.vcc = value;
                } else {
                    self.vcc = (self.vcc & !0xffff_ffff) | (value & 0xffff_ffff);
                }
            }
            Operand::VccHi => {
                self.vcc = (self.vcc & 0xffff_ffff) | (value << 32);
            }
            Operand::ExecLo => {
                if width >= 2 {
                    self.exec = value;
                } else {
                    self.exec = (self.exec & !0xffff_ffff) | (value & 0xffff_ffff);
                }
            }
            Operand::ExecHi => {
                self.exec = (self.exec & 0xffff_ffff) | (value << 32);
            }
            Operand::M0 => self.m0 = value as u32,
            other => {
                return Err(CuError::RegisterOutOfRange {
                    what: "scalar write to non-register operand",
                    index: u32::from(other.encode_src().unwrap_or(0)),
                })
            }
        }
        Ok(())
    }

    /// Read a vector-format source for `lane` (VGPRs per lane, scalars
    /// broadcast).
    ///
    /// # Errors
    ///
    /// Fails on out-of-budget register indices.
    pub fn read_lane(&self, op: Operand, lane: usize) -> Result<u32, CuError> {
        match op {
            Operand::Vgpr(r) => self.vgpr(r.into(), lane),
            other => Ok(self.read_scalar(other, 1)? as u32),
        }
    }

    /// Outstanding vector-memory operations at `now` (the `vmcnt` value).
    #[must_use]
    pub fn vmcnt(&self, now: u64) -> u32 {
        self.vm_events.iter().filter(|&&t| t > now).count() as u32
    }

    /// Outstanding LDS/scalar-memory operations at `now` (`lgkmcnt`).
    #[must_use]
    pub fn lgkmcnt(&self, now: u64) -> u32 {
        self.lgkm_events.iter().filter(|&&t| t > now).count() as u32
    }

    /// Drop completed events (keeps the outstanding lists short).
    pub(crate) fn retire_mem_events(&mut self, now: u64) {
        self.vm_events.retain(|&t| t > now);
        self.lgkm_events.retain(|&t| t > now);
    }

    /// Earliest cycle at which a `s_waitcnt(vm ≤ vm_target, lgkm ≤ lgkm_target)`
    /// would be satisfied.
    #[must_use]
    pub(crate) fn waitcnt_ready_at(&self, vm_target: u32, lgkm_target: u32) -> u64 {
        fn nth_newest_completion(events: &[u64], keep: u32) -> u64 {
            // The counter drops to `keep` once all but `keep` of the events
            // have completed.
            if events.len() <= keep as usize {
                return 0;
            }
            let mut sorted: Vec<u64> = events.to_vec();
            sorted.sort_unstable();
            sorted[events.len() - keep as usize - 1]
        }
        nth_newest_completion(&self.vm_events, vm_target)
            .max(nth_newest_completion(&self.lgkm_events, lgkm_target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_budget_enforced() {
        let mut w = Wavefront::new(0, 0, 8, 4);
        assert!(w.set_sgpr(7, 1).is_ok());
        assert!(w.set_sgpr(8, 1).is_err());
        assert!(w.vgpr(4, 0).is_err());
        assert!(w.set_vgpr(3, 63, 9).is_ok());
        assert_eq!(w.vgpr(3, 63).unwrap(), 9);
    }

    #[test]
    fn scalar_read_widths() {
        let mut w = Wavefront::new(0, 0, 8, 1);
        w.set_sgpr(2, 0x1111_2222).unwrap();
        w.set_sgpr(3, 0x3333_4444).unwrap();
        assert_eq!(w.read_scalar(Operand::Sgpr(2), 1).unwrap(), 0x1111_2222);
        assert_eq!(
            w.read_scalar(Operand::Sgpr(2), 2).unwrap(),
            0x3333_4444_1111_2222
        );
        assert_eq!(
            w.read_scalar(Operand::IntConst(-1), 1).unwrap(),
            0xffff_ffff
        );
        assert_eq!(w.read_scalar(Operand::IntConst(-1), 2).unwrap(), u64::MAX);
        assert_eq!(
            w.read_scalar(Operand::FloatConst(1.0), 1).unwrap(),
            u64::from(1.0f32.to_bits())
        );
    }

    #[test]
    fn special_register_reads() {
        let mut w = Wavefront::new(0, 0, 4, 1);
        w.vcc = 0;
        w.exec = 0;
        assert_eq!(w.read_scalar(Operand::Vccz, 1).unwrap(), 1);
        assert_eq!(w.read_scalar(Operand::Execz, 1).unwrap(), 1);
        w.vcc = 5;
        w.exec = u64::MAX;
        assert_eq!(w.read_scalar(Operand::Vccz, 1).unwrap(), 0);
        assert_eq!(w.read_scalar(Operand::VccLo, 2).unwrap(), 5);
        assert_eq!(w.read_scalar(Operand::ExecHi, 1).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn scalar_write_halves() {
        let mut w = Wavefront::new(0, 0, 4, 1);
        w.write_scalar(Operand::VccLo, 2, 0xdead_beef_0000_0001)
            .unwrap();
        assert_eq!(w.vcc, 0xdead_beef_0000_0001);
        w.write_scalar(Operand::VccHi, 1, 0x1234).unwrap();
        assert_eq!(w.vcc >> 32, 0x1234);
        w.write_scalar(Operand::ExecLo, 2, 0xff).unwrap();
        assert_eq!(w.exec, 0xff);
        assert_eq!(w.active_lanes(), 8);
    }

    #[test]
    fn lane_reads_broadcast_scalars() {
        let mut w = Wavefront::new(0, 0, 4, 2);
        w.set_sgpr(1, 77).unwrap();
        w.set_vgpr(0, 5, 123).unwrap();
        assert_eq!(w.read_lane(Operand::Sgpr(1), 9).unwrap(), 77);
        assert_eq!(w.read_lane(Operand::Vgpr(0), 5).unwrap(), 123);
        assert_eq!(w.read_lane(Operand::Vgpr(0), 6).unwrap(), 0);
    }

    #[test]
    fn waitcnt_accounting() {
        let mut w = Wavefront::new(0, 0, 4, 1);
        w.vm_events = vec![100, 200, 300];
        assert_eq!(w.vmcnt(50), 3);
        assert_eq!(w.vmcnt(150), 2);
        assert_eq!(w.vmcnt(300), 0);
        // Waiting for vmcnt<=0 needs all three done; <=2 needs only first.
        assert_eq!(w.waitcnt_ready_at(0, 0), 300);
        assert_eq!(w.waitcnt_ready_at(2, 0), 100);
        assert_eq!(w.waitcnt_ready_at(3, 0), 0);
        w.retire_mem_events(250);
        assert_eq!(w.vm_events, vec![300]);
    }
}
