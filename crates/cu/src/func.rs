//! Functional execution of every supported instruction, independent of the
//! timing model.
//!
//! Semantics follow the Southern Islands ISA manual; §2.3 of the paper
//! validated the same behaviours instruction-by-instruction on the FPGA.
//! The one documented deviation: `v_exp_f32`/`v_log_f32` are base-2 (as in
//! SI) and `v_sin_f32`/`v_cos_f32` take the SI-normalised argument (input
//! pre-multiplied by 1/2π), both implemented with `f32` host arithmetic
//! rather than the FPGA's table-driven approximations.
//!
//! This module is the *functional* half of the functional/timing split: the
//! cycle pipeline ([`crate::ComputeUnit`]) calls [`execute`] when an
//! instruction issues and charges its cost separately, while the
//! `scratch-fastpath` block-compiled executor calls the same entry points
//! (plus the [`lanewise`]/[`compare`] primitives for its specialised
//! closures) without any timing machinery. Both tiers therefore share one
//! source of truth for architectural state transitions.

use scratch_isa::{Fields, Instruction, Opcode, Operand, SmrdOffset, WAVEFRONT_SIZE};

use crate::memory::{AccessKind, Memory};
use crate::wavefront::Wavefront;
use crate::CuError;

/// Memory activity produced by one instruction (used for timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// SMRD access (counted by `lgkmcnt`).
    Scalar {
        /// Address of the access.
        addr: u64,
    },
    /// MUBUF/MTBUF access (counted by `vmcnt`).
    Vector {
        /// Load or store.
        kind: AccessKind,
        /// Address of the first active lane.
        addr: u64,
        /// Number of active lanes.
        lanes: u32,
    },
    /// LDS access (counted by `lgkmcnt`, serviced locally).
    Lds,
}

/// Side effects of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Outcome {
    /// Taken branch target (word offset).
    pub new_pc: Option<usize>,
    /// `s_endpgm` executed.
    pub end: bool,
    /// `s_barrier` executed.
    pub barrier: bool,
    /// Memory activity.
    pub mem: Option<MemEvent>,
}

#[inline]
fn fb(x: u32) -> f32 {
    f32::from_bits(x)
}

#[inline]
fn tb(x: f32) -> u32 {
    x.to_bits()
}

#[inline]
fn sext24(x: u32) -> i64 {
    i64::from((x << 8) as i32 >> 8)
}

/// Execute `inst` for `wave`. `next_pc` is the word offset of the following
/// instruction (branch offsets are relative to it).
pub fn execute(
    inst: &Instruction,
    next_pc: usize,
    wave: &mut Wavefront,
    lds: &mut [u32],
    mem: &mut dyn Memory,
) -> Result<Outcome, CuError> {
    match inst.fields {
        Fields::Sop2 { sdst, ssrc0, ssrc1 } => {
            exec_sop2(inst.opcode, wave, sdst, ssrc0, ssrc1)?;
            Ok(Outcome::default())
        }
        Fields::Sopk { sdst, simm16 } => {
            exec_sopk(inst.opcode, wave, sdst, simm16)?;
            Ok(Outcome::default())
        }
        Fields::Sop1 { sdst, ssrc0 } => {
            exec_sop1(inst.opcode, wave, sdst, ssrc0)?;
            Ok(Outcome::default())
        }
        Fields::Sopc { ssrc0, ssrc1 } => {
            exec_sopc(inst.opcode, wave, ssrc0, ssrc1)?;
            Ok(Outcome::default())
        }
        Fields::Sopp { simm16 } => exec_sopp(inst.opcode, wave, simm16, next_pc),
        Fields::Smrd {
            sdst,
            sbase,
            offset,
        } => exec_smrd(inst.opcode, wave, sdst, sbase, offset, mem),
        Fields::Vop2 { .. }
        | Fields::Vop1 { .. }
        | Fields::Vopc { .. }
        | Fields::Vop3a { .. }
        | Fields::Vop3b { .. } => {
            exec_vector(inst, wave)?;
            Ok(Outcome::default())
        }
        Fields::Ds { .. } => exec_ds(inst, wave, lds),
        Fields::Mubuf { .. } | Fields::Mtbuf { .. } => exec_buffer(inst, wave, mem),
    }
}

// ----------------------------------------------------------------- scalar

fn exec_sop2(
    op: Opcode,
    wave: &mut Wavefront,
    sdst: Operand,
    ssrc0: Operand,
    ssrc1: Operand,
) -> Result<(), CuError> {
    use Opcode::*;
    let w = op.src_width();
    let s0 = wave.read_scalar(ssrc0, w)?;
    let s1 = wave.read_scalar(ssrc1, w)?;
    let (a, b) = (s0 as u32, s1 as u32);
    let (ai, bi) = (a as i32, b as i32);

    // (value, new_scc); None leaves SCC untouched.
    let (value, scc): (u64, Option<bool>) = match op {
        SAddU32 => {
            let (v, c) = a.overflowing_add(b);
            (v.into(), Some(c))
        }
        SSubU32 => {
            let (v, c) = a.overflowing_sub(b);
            (v.into(), Some(c))
        }
        SAddI32 => {
            let (v, o) = ai.overflowing_add(bi);
            (u64::from(v as u32), Some(o))
        }
        SSubI32 => {
            let (v, o) = ai.overflowing_sub(bi);
            (u64::from(v as u32), Some(o))
        }
        SAddcU32 => {
            let cin = u64::from(wave.scc);
            let full = u64::from(a) + u64::from(b) + cin;
            (full & 0xffff_ffff, Some(full > 0xffff_ffff))
        }
        SSubbU32 => {
            let cin = i64::from(wave.scc);
            let full = i64::from(a) - i64::from(b) - cin;
            (u64::from(full as u32), Some(full < 0))
        }
        SMinI32 => ((ai.min(bi) as u32).into(), Some(ai <= bi)),
        SMinU32 => (a.min(b).into(), Some(a <= b)),
        SMaxI32 => ((ai.max(bi) as u32).into(), Some(ai >= bi)),
        SMaxU32 => (a.max(b).into(), Some(a >= b)),
        SCselectB32 => (if wave.scc { s0 } else { s1 }, None),
        SAndB32 | SAndB64 => {
            let v = s0 & s1;
            (v, Some(v != 0))
        }
        SOrB32 | SOrB64 => {
            let v = s0 | s1;
            (v, Some(v != 0))
        }
        SXorB32 | SXorB64 => {
            let v = s0 ^ s1;
            (v, Some(v != 0))
        }
        SAndn2B64 => {
            let v = s0 & !s1;
            (v, Some(v != 0))
        }
        SOrn2B64 => {
            let v = s0 | !s1;
            (v, Some(v != 0))
        }
        SNandB64 => {
            let v = !(s0 & s1);
            (v, Some(v != 0))
        }
        SNorB64 => {
            let v = !(s0 | s1);
            (v, Some(v != 0))
        }
        SXnorB64 => {
            let v = !(s0 ^ s1);
            (v, Some(v != 0))
        }
        SLshlB32 => {
            let v = a << (b & 31);
            (v.into(), Some(v != 0))
        }
        SLshrB32 => {
            let v = a >> (b & 31);
            (v.into(), Some(v != 0))
        }
        SAshrI32 => {
            let v = (ai >> (b & 31)) as u32;
            (v.into(), Some(v != 0))
        }
        SBfmB32 => {
            let v = ((1u64 << (a & 31)) - 1) as u32;
            ((v << (b & 31)).into(), None)
        }
        SMulI32 => ((ai.wrapping_mul(bi) as u32).into(), None),
        SBfeU32 => {
            let offset = b & 31;
            let width = (b >> 16) & 0x7f;
            let v = if width == 0 {
                0
            } else if width >= 32 {
                a >> offset
            } else {
                (a >> offset) & ((1u32 << width) - 1)
            };
            (v.into(), Some(v != 0))
        }
        SBfeI32 => {
            let offset = b & 31;
            let width = (b >> 16) & 0x7f;
            let v = if width == 0 {
                0
            } else if width >= 32 {
                ((ai >> offset) as u32).into()
            } else {
                let raw = (a >> offset) & ((1u32 << width) - 1);
                let shift = 32 - width;
                u64::from((((raw << shift) as i32) >> shift) as u32)
            };
            (v, Some(v != 0))
        }
        other => unreachable!("non-SOP2 opcode {other:?}"),
    };
    wave.write_scalar(sdst, op.dst_width(), value)?;
    if let Some(s) = scc {
        wave.scc = s;
    }
    Ok(())
}

fn exec_sopk(op: Opcode, wave: &mut Wavefront, sdst: Operand, simm16: i16) -> Result<(), CuError> {
    use Opcode::*;
    let imm = i64::from(simm16);
    match op {
        SMovkI32 => wave.write_scalar(sdst, 1, u64::from(imm as u32))?,
        SCmpkEqI32 | SCmpkLgI32 | SCmpkGtI32 | SCmpkGeI32 | SCmpkLtI32 | SCmpkLeI32 => {
            let v = i64::from(wave.read_scalar(sdst, 1)? as u32 as i32);
            wave.scc = match op {
                SCmpkEqI32 => v == imm,
                SCmpkLgI32 => v != imm,
                SCmpkGtI32 => v > imm,
                SCmpkGeI32 => v >= imm,
                SCmpkLtI32 => v < imm,
                SCmpkLeI32 => v <= imm,
                _ => unreachable!(),
            };
        }
        SAddkI32 => {
            let v = wave.read_scalar(sdst, 1)? as u32 as i32;
            let (r, o) = v.overflowing_add(imm as i32);
            wave.write_scalar(sdst, 1, u64::from(r as u32))?;
            wave.scc = o;
        }
        SMulkI32 => {
            let v = wave.read_scalar(sdst, 1)? as u32 as i32;
            wave.write_scalar(sdst, 1, u64::from(v.wrapping_mul(imm as i32) as u32))?;
        }
        other => unreachable!("non-SOPK opcode {other:?}"),
    }
    Ok(())
}

fn exec_sop1(
    op: Opcode,
    wave: &mut Wavefront,
    sdst: Operand,
    ssrc0: Operand,
) -> Result<(), CuError> {
    use Opcode::*;
    let w = op.src_width();
    let s0 = wave.read_scalar(ssrc0, w)?;
    let a = s0 as u32;

    let (value, scc): (u64, Option<bool>) = match op {
        SMovB32 | SMovB64 => (s0, None),
        SCmovB32 => {
            if wave.scc {
                (s0, None)
            } else {
                (wave.read_scalar(sdst, 1)?, None)
            }
        }
        SNotB32 => {
            let v = u64::from(!a);
            (v, Some(v != 0))
        }
        SNotB64 => {
            let v = !s0;
            (v, Some(v != 0))
        }
        SWqmB64 => {
            // Whole-quad mode: each nibble becomes all-ones if any bit set.
            let mut v = 0u64;
            for q in 0..16 {
                if (s0 >> (q * 4)) & 0xf != 0 {
                    v |= 0xf << (q * 4);
                }
            }
            (v, Some(v != 0))
        }
        SBrevB32 => (u64::from(a.reverse_bits()), None),
        SBcnt0I32B32 => {
            let v = u64::from(a.count_zeros());
            (v, Some(v != 0))
        }
        SBcnt1I32B32 => {
            let v = u64::from(a.count_ones());
            (v, Some(v != 0))
        }
        SFf0I32B32 => {
            let v = if a == u32::MAX {
                u32::MAX
            } else {
                (!a).trailing_zeros()
            };
            (u64::from(v), None)
        }
        SFf1I32B32 => {
            let v = if a == 0 { u32::MAX } else { a.trailing_zeros() };
            (u64::from(v), None)
        }
        SFlbitI32B32 => {
            let v = if a == 0 { u32::MAX } else { a.leading_zeros() };
            (u64::from(v), None)
        }
        SSextI32I8 => (u64::from(i32::from(a as u8 as i8) as u32), None),
        SSextI32I16 => (u64::from(i32::from(a as u16 as i16) as u32), None),
        SBitset0B32 => {
            let d = wave.read_scalar(sdst, 1)? as u32;
            (u64::from(d & !(1 << (a & 31))), None)
        }
        SBitset1B32 => {
            let d = wave.read_scalar(sdst, 1)? as u32;
            (u64::from(d | (1 << (a & 31))), None)
        }
        SAndSaveexecB64 | SOrSaveexecB64 | SXorSaveexecB64 | SAndn2SaveexecB64 => {
            let saved = wave.exec;
            let new_exec = match op {
                SAndSaveexecB64 => s0 & saved,
                SOrSaveexecB64 => s0 | saved,
                SXorSaveexecB64 => s0 ^ saved,
                SAndn2SaveexecB64 => s0 & !saved,
                _ => unreachable!(),
            };
            wave.exec = new_exec;
            (saved, Some(new_exec != 0))
        }
        other => unreachable!("non-SOP1 opcode {other:?}"),
    };
    wave.write_scalar(sdst, op.dst_width(), value)?;
    if let Some(s) = scc {
        wave.scc = s;
    }
    Ok(())
}

fn exec_sopc(
    op: Opcode,
    wave: &mut Wavefront,
    ssrc0: Operand,
    ssrc1: Operand,
) -> Result<(), CuError> {
    use Opcode::*;
    let a = wave.read_scalar(ssrc0, 1)? as u32;
    let b = wave.read_scalar(ssrc1, 1)? as u32;
    let (ai, bi) = (a as i32, b as i32);
    wave.scc = match op {
        SCmpEqI32 => ai == bi,
        SCmpLgI32 => ai != bi,
        SCmpGtI32 => ai > bi,
        SCmpGeI32 => ai >= bi,
        SCmpLtI32 => ai < bi,
        SCmpLeI32 => ai <= bi,
        SCmpEqU32 => a == b,
        SCmpLgU32 => a != b,
        SCmpGtU32 => a > b,
        SCmpGeU32 => a >= b,
        SCmpLtU32 => a < b,
        SCmpLeU32 => a <= b,
        other => unreachable!("non-SOPC opcode {other:?}"),
    };
    Ok(())
}

fn exec_sopp(
    op: Opcode,
    wave: &mut Wavefront,
    simm16: u16,
    next_pc: usize,
) -> Result<Outcome, CuError> {
    use Opcode::*;
    let mut out = Outcome::default();
    let target = || {
        let t = next_pc as i64 + i64::from(simm16 as i16);
        usize::try_from(t).map_err(|_| CuError::PcOutOfRange { pc: 0 })
    };
    match op {
        SNop | SWaitcnt => {}
        SEndpgm => out.end = true,
        SBarrier => out.barrier = true,
        SBranch => out.new_pc = Some(target()?),
        SCbranchScc0 => {
            if !wave.scc {
                out.new_pc = Some(target()?);
            }
        }
        SCbranchScc1 => {
            if wave.scc {
                out.new_pc = Some(target()?);
            }
        }
        SCbranchVccz => {
            if wave.vcc == 0 {
                out.new_pc = Some(target()?);
            }
        }
        SCbranchVccnz => {
            if wave.vcc != 0 {
                out.new_pc = Some(target()?);
            }
        }
        SCbranchExecz => {
            if wave.exec == 0 {
                out.new_pc = Some(target()?);
            }
        }
        SCbranchExecnz => {
            if wave.exec != 0 {
                out.new_pc = Some(target()?);
            }
        }
        other => unreachable!("non-SOPP opcode {other:?}"),
    }
    Ok(out)
}

fn exec_smrd(
    op: Opcode,
    wave: &mut Wavefront,
    sdst: Operand,
    sbase: u8,
    offset: SmrdOffset,
    mem: &mut dyn Memory,
) -> Result<Outcome, CuError> {
    let base = wave.read_scalar(Operand::Sgpr(sbase), 2)? & 0xffff_ffff_ffff; // 48-bit
    let off = match offset {
        SmrdOffset::Imm(i) => u64::from(i) * 4,
        SmrdOffset::Sgpr(s) => u64::from(wave.sgpr(s.into())?),
    };
    let addr = base.wrapping_add(off);
    let n = op.dst_width();
    let first = match sdst {
        Operand::Sgpr(s) => u32::from(s),
        other => {
            // Loads into VCC/EXEC halves are legal for single-dword loads.
            let v = mem.read_u32(addr);
            wave.write_scalar(other, 1, u64::from(v))?;
            return Ok(Outcome {
                mem: Some(MemEvent::Scalar { addr }),
                ..Outcome::default()
            });
        }
    };
    for i in 0..u32::from(n) {
        let v = mem.read_u32(addr + u64::from(i) * 4);
        wave.set_sgpr(first + i, v)?;
    }
    Ok(Outcome {
        mem: Some(MemEvent::Scalar { addr }),
        ..Outcome::default()
    })
}

// ----------------------------------------------------------------- vector

/// Canonical operand view of the five vector encodings.
/// Canonical operand view of a vector instruction: the five vector
/// encodings (VOP1/VOP2/VOPC/VOP3a/VOP3b) collapsed into one shape so
/// executors need a single code path per semantic class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VecOps {
    /// Destination VGPR (or SGPR number for `v_readfirstlane_b32`).
    pub vdst: u8,
    /// Up to three sources; unused slots hold `IntConst(0)`.
    pub src: [Operand; 3],
    /// Explicit scalar destination (VOP3b) — carry-out / compare mask.
    pub sdst: Option<Operand>,
    /// Explicit mask / carry-in source (VOP3 forms), otherwise VCC.
    pub mask_src: Option<Operand>,
    /// VOP3a per-source absolute-value modifier bits.
    pub abs: u8,
    /// VOP3a per-source negate modifier bits.
    pub neg: u8,
    /// VOP3a output clamp to `[0, 1]`.
    pub clamp: bool,
    /// VOP3a output multiplier (1 → ×2, 2 → ×4, 3 → ÷2).
    pub omod: u8,
}

/// Collapse a vector instruction's fields into the canonical [`VecOps`]
/// shape. Panics if `inst` is not one of the five vector encodings.
pub fn vec_ops(inst: &Instruction) -> VecOps {
    let zero = Operand::IntConst(0);
    match inst.fields {
        Fields::Vop2 { vdst, src0, vsrc1 } => VecOps {
            vdst,
            src: [src0, Operand::Vgpr(vsrc1), zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vop1 { vdst, src0 } => VecOps {
            vdst,
            src: [src0, zero, zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vopc { src0, vsrc1 } => VecOps {
            vdst: 0,
            src: [src0, Operand::Vgpr(vsrc1), zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vop3a {
            vdst,
            src0,
            src1,
            src2,
            abs,
            neg,
            clamp,
            omod,
        } => VecOps {
            vdst,
            src: [src0, src1, src2.unwrap_or(zero)],
            sdst: None,
            mask_src: src2,
            abs,
            neg,
            clamp,
            omod,
        },
        Fields::Vop3b {
            vdst,
            sdst,
            src0,
            src1,
            src2,
        } => VecOps {
            vdst,
            src: [src0, src1, src2.unwrap_or(zero)],
            sdst: Some(sdst),
            mask_src: src2,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        _ => unreachable!("non-vector fields"),
    }
}

/// Apply VOP3 input modifiers to a float source.
pub fn in_mods(bits: u32, idx: u8, abs: u8, neg: u8) -> u32 {
    let mut v = bits;
    if abs & (1 << idx) != 0 {
        v &= 0x7fff_ffff;
    }
    if neg & (1 << idx) != 0 {
        v ^= 0x8000_0000;
    }
    v
}

/// Apply VOP3 output modifiers to a float result.
pub fn out_mods(bits: u32, clamp: bool, omod: u8) -> u32 {
    let mut f = fb(bits);
    match omod {
        1 => f *= 2.0,
        2 => f *= 4.0,
        3 => f /= 2.0,
        _ => {}
    }
    if clamp {
        f = f.clamp(0.0, 1.0);
    }
    tb(f)
}

fn exec_vector(inst: &Instruction, wave: &mut Wavefront) -> Result<(), CuError> {
    use Opcode::*;
    let op = inst.opcode;
    let v = vec_ops(inst);
    let is_float = op.unit() == scratch_isa::FuncUnit::Simf;

    // v_readfirstlane_b32 writes an SGPR from the first active lane.
    if op == VReadfirstlaneB32 {
        let lane = (0..WAVEFRONT_SIZE)
            .find(|&l| wave.lane_active(l))
            .unwrap_or(0);
        let val = wave.read_lane(v.src[0], lane)?;
        wave.set_sgpr(v.vdst.into(), val)?;
        return Ok(());
    }

    // Compares: build a lane mask.
    if op.is_vector_compare() {
        let mut mask_set = 0u64;
        let mut mask_clr = 0u64;
        for lane in 0..WAVEFRONT_SIZE {
            if !wave.lane_active(lane) {
                continue;
            }
            let a = wave.read_lane(v.src[0], lane)?;
            let b = wave.read_lane(v.src[1], lane)?;
            let r = compare(op, a, b);
            if r {
                mask_set |= 1 << lane;
            } else {
                mask_clr |= 1 << lane;
            }
        }
        let dst = v.sdst.unwrap_or(Operand::VccLo);
        let old = wave.read_scalar(dst, 2)?;
        wave.write_scalar(dst, 2, (old | mask_set) & !mask_clr)?;
        return Ok(());
    }

    // Carry-producing / carry-consuming integer adds.
    if op.writes_vcc_implicitly() {
        let cin_mask = if op.reads_vcc_implicitly() {
            match v.mask_src {
                Some(m) => wave.read_scalar(m, 2)?,
                None => wave.vcc,
            }
        } else {
            0
        };
        let mut cout_set = 0u64;
        let mut cout_clr = 0u64;
        for lane in 0..WAVEFRONT_SIZE {
            if !wave.lane_active(lane) {
                continue;
            }
            let a = u64::from(wave.read_lane(v.src[0], lane)?);
            let b = u64::from(wave.read_lane(v.src[1], lane)?);
            let c = cin_mask >> lane & 1;
            let full: i128 = match op {
                VAddI32 => (a + b) as i128,
                VSubI32 => a as i128 - b as i128,
                VSubrevI32 => b as i128 - a as i128,
                VAddcU32 => (a + b + c) as i128,
                VSubbU32 => a as i128 - b as i128 - c as i128,
                other => unreachable!("non-carry opcode {other:?}"),
            };
            let carry = !(0..=0xffff_ffff).contains(&full);
            if carry {
                cout_set |= 1 << lane;
            } else {
                cout_clr |= 1 << lane;
            }
            wave.set_vgpr(v.vdst.into(), lane, full as u32)?;
        }
        let dst = v.sdst.unwrap_or(Operand::VccLo);
        let old = wave.read_scalar(dst, 2)?;
        wave.write_scalar(dst, 2, (old | cout_set) & !cout_clr)?;
        return Ok(());
    }

    // v_cndmask_b32: select by mask.
    if op == VCndmaskB32 {
        let mask = match v.mask_src {
            Some(m) => wave.read_scalar(m, 2)?,
            None => wave.vcc,
        };
        for lane in 0..WAVEFRONT_SIZE {
            if !wave.lane_active(lane) {
                continue;
            }
            let a = wave.read_lane(v.src[0], lane)?;
            let b = wave.read_lane(v.src[1], lane)?;
            let r = if mask >> lane & 1 != 0 { b } else { a };
            wave.set_vgpr(v.vdst.into(), lane, r)?;
        }
        return Ok(());
    }

    // Everything else is a pure lanewise function.
    let nsrc = op.src_count() as usize;
    for lane in 0..WAVEFRONT_SIZE {
        if !wave.lane_active(lane) {
            continue;
        }
        let mut s = [0u32; 3];
        for (i, slot) in s.iter_mut().enumerate().take(nsrc.max(1)) {
            let raw = wave.read_lane(v.src[i], lane)?;
            *slot = if is_float {
                in_mods(raw, i as u8, v.abs, v.neg)
            } else {
                raw
            };
        }
        // v_mac_f32 accumulates into the destination.
        let acc = if op == VMacF32 {
            wave.vgpr(v.vdst.into(), lane)?
        } else {
            0
        };
        let mut r = lanewise(op, s, acc);
        if is_float {
            r = out_mods(r, v.clamp, v.omod);
        }
        wave.set_vgpr(v.vdst.into(), lane, r)?;
    }
    Ok(())
}

/// Evaluate one vector-compare opcode on a pair of lane values.
///
/// Only meaningful for opcodes where `Opcode::is_vector_compare()` holds;
/// any other opcode panics (callers pre-classify at translation/decode).
pub fn compare(op: Opcode, a: u32, b: u32) -> bool {
    use Opcode::*;
    let (fa, fab) = (fb(a), fb(b));
    let (ia, ib) = (a as i32, b as i32);
    match op {
        VCmpLtF32 => fa < fab,
        VCmpEqF32 => fa == fab,
        VCmpLeF32 => fa <= fab,
        VCmpGtF32 => fa > fab,
        VCmpLgF32 => fa != fab && !fa.is_nan() && !fab.is_nan(),
        VCmpGeF32 => fa >= fab,
        VCmpNeqF32 => !(fa == fab),
        VCmpLtI32 => ia < ib,
        VCmpEqI32 => ia == ib,
        VCmpLeI32 => ia <= ib,
        VCmpGtI32 => ia > ib,
        VCmpNeI32 => ia != ib,
        VCmpGeI32 => ia >= ib,
        VCmpLtU32 => a < b,
        VCmpEqU32 => a == b,
        VCmpLeU32 => a <= b,
        VCmpGtU32 => a > b,
        VCmpNeU32 => a != b,
        VCmpGeU32 => a >= b,
        other => unreachable!("non-compare opcode {other:?}"),
    }
}

/// Pure lanewise semantics (no carries, masks or accumulators besides MAC).
///
/// `s` holds up to three source values (already modifier-adjusted for float
/// ops); `acc` is the destination's prior value, consumed only by
/// `v_mac_f32`. Panics on opcodes that are not pure lanewise functions
/// (carry ops, compares, `v_cndmask_b32` — callers pre-classify).
#[allow(clippy::too_many_lines)]
pub fn lanewise(op: Opcode, s: [u32; 3], acc: u32) -> u32 {
    use Opcode::*;
    let [a, b, c] = s;
    let (ai, bi) = (a as i32, b as i32);
    let (fa, fbv, fc) = (fb(a), fb(b), fb(c));
    match op {
        // --- VOP2 / promoted ---
        VAddF32 => tb(fa + fbv),
        VSubF32 => tb(fa - fbv),
        VSubrevF32 => tb(fbv - fa),
        VMulF32 => tb(fa * fbv),
        VMulI32I24 => (sext24(a).wrapping_mul(sext24(b))) as u32,
        VMulU32U24 => ((u64::from(a & 0xff_ffff)) * u64::from(b & 0xff_ffff)) as u32,
        VMinF32 => tb(fa.min(fbv)),
        VMaxF32 => tb(fa.max(fbv)),
        VMinI32 => ai.min(bi) as u32,
        VMaxI32 => ai.max(bi) as u32,
        VMinU32 => a.min(b),
        VMaxU32 => a.max(b),
        VLshrB32 => a >> (b & 31),
        VLshrrevB32 => b >> (a & 31),
        VAshrI32 => (ai >> (b & 31)) as u32,
        VAshrrevI32 => (bi >> (a & 31)) as u32,
        VLshlB32 => a << (b & 31),
        VLshlrevB32 => b << (a & 31),
        VAndB32 => a & b,
        VOrB32 => a | b,
        VXorB32 => a ^ b,
        VMacF32 => tb(fa.mul_add(fbv, fb(acc))),
        // --- VOP1 ---
        VNop => 0,
        VMovB32 => a,
        VCvtF32I32 => tb(ai as f32),
        VCvtF32U32 => tb(a as f32),
        VCvtU32F32 => {
            if fa.is_nan() || fa <= -1.0 {
                0
            } else if fa >= u32::MAX as f32 {
                u32::MAX
            } else {
                fa as u32
            }
        }
        VCvtI32F32 => {
            if fa.is_nan() {
                0
            } else if fa >= i32::MAX as f32 {
                i32::MAX as u32
            } else if fa <= i32::MIN as f32 {
                i32::MIN as u32
            } else {
                (fa as i32) as u32
            }
        }
        VFractF32 => tb(fa - fa.floor()),
        VTruncF32 => tb(fa.trunc()),
        VCeilF32 => tb(fa.ceil()),
        VRndneF32 => {
            let r = fa.round();
            // round-half-to-even
            let v = if (fa - fa.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - fa.signum()
            } else {
                r
            };
            tb(v)
        }
        VFloorF32 => tb(fa.floor()),
        VExpF32 => tb(fa.exp2()),
        VLogF32 => tb(fa.log2()),
        VRcpF32 => tb(1.0 / fa),
        VRsqF32 => tb(1.0 / fa.sqrt()),
        VSqrtF32 => tb(fa.sqrt()),
        VSinF32 => tb((fa * std::f32::consts::TAU).sin()),
        VCosF32 => tb((fa * std::f32::consts::TAU).cos()),
        VNotB32 => !a,
        VBfrevB32 => a.reverse_bits(),
        VFfbhU32 => {
            if a == 0 {
                u32::MAX
            } else {
                a.leading_zeros()
            }
        }
        VFfblB32 => {
            if a == 0 {
                u32::MAX
            } else {
                a.trailing_zeros()
            }
        }
        // --- VOP3 native ---
        VMadF32 => tb(fa * fbv + fc),
        VMadI32I24 => {
            (sext24(a)
                .wrapping_mul(sext24(b))
                .wrapping_add(i64::from(c as i32))) as u32
        }
        VMadU32U24 => {
            ((u64::from(a & 0xff_ffff) * u64::from(b & 0xff_ffff)).wrapping_add(u64::from(c)))
                as u32
        }
        VBfeU32 => {
            let offset = b & 31;
            let width = c & 31;
            if width == 0 {
                0
            } else {
                (a >> offset) & ((1u64 << width) - 1) as u32
            }
        }
        VBfeI32 => {
            let offset = b & 31;
            let width = c & 31;
            if width == 0 {
                0
            } else {
                let raw = (a >> offset) & ((1u64 << width) - 1) as u32;
                let shift = 32 - width;
                (((raw << shift) as i32) >> shift) as u32
            }
        }
        VBfiB32 => (a & b) | (!a & c),
        VFmaF32 => tb(fa.mul_add(fbv, fc)),
        VAlignbitB32 => (((u64::from(b) << 32) | u64::from(a)) >> (c & 31)) as u32,
        VMin3F32 => tb(fa.min(fbv).min(fc)),
        VMin3I32 => ai.min(bi).min(c as i32) as u32,
        VMin3U32 => a.min(b).min(c),
        VMax3F32 => tb(fa.max(fbv).max(fc)),
        VMax3I32 => ai.max(bi).max(c as i32) as u32,
        VMax3U32 => a.max(b).max(c),
        VMed3F32 => {
            // NaN-safe median: f32::clamp panics when a bound is NaN, and
            // lo/hi are NaN whenever src0 or src1 is. min/max propagate the
            // non-NaN operand instead, matching the SI ALU's behaviour.
            let (lo, hi) = (fa.min(fbv), fa.max(fbv));
            tb(lo.max(hi.min(fc)))
        }
        VMed3I32 => {
            let ci = c as i32;
            let (lo, hi) = (ai.min(bi), ai.max(bi));
            ci.clamp(lo, hi) as u32
        }
        VMed3U32 => {
            let (lo, hi) = (a.min(b), a.max(b));
            c.clamp(lo, hi)
        }
        VMulLoU32 => a.wrapping_mul(b),
        VMulHiU32 => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        VMulLoI32 => ai.wrapping_mul(bi) as u32,
        VMulHiI32 => ((i64::from(ai) * i64::from(bi)) >> 32) as u32,
        other => unreachable!("unhandled lanewise opcode {other:?}"),
    }
}

// ------------------------------------------------------------------- LDS

fn exec_ds(inst: &Instruction, wave: &mut Wavefront, lds: &mut [u32]) -> Result<Outcome, CuError> {
    use Opcode::*;
    let op = inst.opcode;
    let Fields::Ds {
        vdst,
        addr,
        data0,
        data1,
        offset0,
        offset1,
        ..
    } = inst.fields
    else {
        unreachable!("non-DS fields");
    };

    let size_bytes = (lds.len() * 4) as u32;
    let index = |byte_addr: u32| -> Result<usize, CuError> {
        if byte_addr + 4 > size_bytes {
            Err(CuError::LdsOutOfRange {
                addr: byte_addr,
                size: size_bytes,
            })
        } else {
            Ok((byte_addr / 4) as usize)
        }
    };

    for lane in 0..WAVEFRONT_SIZE {
        if !wave.lane_active(lane) {
            continue;
        }
        let base = wave.vgpr(addr.into(), lane)?;
        match op {
            DsReadB32 => {
                let v = lds[index(base.wrapping_add(offset0.into()))?];
                wave.set_vgpr(vdst.into(), lane, v)?;
            }
            DsRead2B32 => {
                let v0 = lds[index(base.wrapping_add(u32::from(offset0) * 4))?];
                let v1 = lds[index(base.wrapping_add(u32::from(offset1) * 4))?];
                wave.set_vgpr(vdst.into(), lane, v0)?;
                wave.set_vgpr(u32::from(vdst) + 1, lane, v1)?;
            }
            DsWriteB32 => {
                let v = wave.vgpr(data0.into(), lane)?;
                lds[index(base.wrapping_add(offset0.into()))?] = v;
            }
            DsWrite2B32 => {
                let v0 = wave.vgpr(data0.into(), lane)?;
                let v1 = wave.vgpr(data1.into(), lane)?;
                lds[index(base.wrapping_add(u32::from(offset0) * 4))?] = v0;
                lds[index(base.wrapping_add(u32::from(offset1) * 4))?] = v1;
            }
            DsAddU32 | DsSubU32 | DsMinI32 | DsMaxI32 | DsMinU32 | DsMaxU32 | DsAndB32
            | DsOrB32 | DsXorB32 => {
                let idx = index(base.wrapping_add(offset0.into()))?;
                let d = wave.vgpr(data0.into(), lane)?;
                let old = lds[idx];
                lds[idx] = match op {
                    DsAddU32 => old.wrapping_add(d),
                    DsSubU32 => old.wrapping_sub(d),
                    DsMinI32 => (old as i32).min(d as i32) as u32,
                    DsMaxI32 => (old as i32).max(d as i32) as u32,
                    DsMinU32 => old.min(d),
                    DsMaxU32 => old.max(d),
                    DsAndB32 => old & d,
                    DsOrB32 => old | d,
                    DsXorB32 => old ^ d,
                    _ => unreachable!(),
                };
            }
            other => unreachable!("non-DS opcode {other:?}"),
        }
    }

    Ok(Outcome {
        mem: Some(MemEvent::Lds),
        ..Outcome::default()
    })
}

// ----------------------------------------------------------------- buffer

fn read_u8(mem: &mut dyn Memory, addr: u64) -> u8 {
    let word = mem.read_u32(addr & !3);
    (word >> ((addr & 3) * 8)) as u8
}

fn write_u8(mem: &mut dyn Memory, addr: u64, value: u8) {
    let aligned = addr & !3;
    let shift = (addr & 3) * 8;
    let word = mem.read_u32(aligned);
    let new = (word & !(0xff << shift)) | (u32::from(value) << shift);
    mem.write_u32(aligned, new);
}

fn exec_buffer(
    inst: &Instruction,
    wave: &mut Wavefront,
    mem: &mut dyn Memory,
) -> Result<Outcome, CuError> {
    use Opcode::*;
    let op = inst.opcode;
    let (vdata, vaddr, srsrc, soffset, imm_offset, offen) = match inst.fields {
        Fields::Mubuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            ..
        }
        | Fields::Mtbuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            ..
        } => (vdata, vaddr, srsrc, soffset, offset, offen),
        _ => unreachable!("non-buffer fields"),
    };

    // Buffer resource descriptor (V#): [0:1] 48-bit base, [2] num_records
    // in bytes (0 disables bounds checking, used by the raw templates).
    let base = wave.read_scalar(Operand::Sgpr(srsrc), 2)? & 0xffff_ffff_ffff;
    let num_records = wave.sgpr(u32::from(srsrc) + 2)?;
    let soff = wave.read_scalar(soffset, 1)? as u32;

    let width = u32::from(op.dst_width());
    let mut first_addr = None;
    let mut lanes = 0u32;

    for lane in 0..WAVEFRONT_SIZE {
        if !wave.lane_active(lane) {
            continue;
        }
        lanes += 1;
        let lane_off = if offen {
            wave.vgpr(vaddr.into(), lane)?
        } else {
            0
        };
        let offset = u64::from(soff) + u64::from(imm_offset) + u64::from(lane_off);
        let bytes = match op {
            BufferLoadUbyte | BufferLoadSbyte | BufferStoreByte => 1,
            _ => 4 * width,
        };
        let in_bounds = num_records == 0 || offset + u64::from(bytes) <= u64::from(num_records);
        let addr = base.wrapping_add(offset);
        if first_addr.is_none() {
            first_addr = Some(addr);
        }
        match op {
            BufferLoadUbyte => {
                let v = if in_bounds {
                    u32::from(read_u8(mem, addr))
                } else {
                    0
                };
                wave.set_vgpr(vdata.into(), lane, v)?;
            }
            BufferLoadSbyte => {
                let v = if in_bounds {
                    i32::from(read_u8(mem, addr) as i8) as u32
                } else {
                    0
                };
                wave.set_vgpr(vdata.into(), lane, v)?;
            }
            BufferLoadDword
            | BufferLoadDwordx2
            | BufferLoadDwordx4
            | TbufferLoadFormatX
            | TbufferLoadFormatXy
            | TbufferLoadFormatXyz
            | TbufferLoadFormatXyzw => {
                for i in 0..width {
                    let v = if in_bounds {
                        mem.read_u32(addr + u64::from(i) * 4)
                    } else {
                        0
                    };
                    wave.set_vgpr(u32::from(vdata) + i, lane, v)?;
                }
            }
            BufferStoreByte => {
                if in_bounds {
                    let v = wave.vgpr(vdata.into(), lane)?;
                    write_u8(mem, addr, v as u8);
                }
            }
            BufferStoreDword
            | BufferStoreDwordx2
            | BufferStoreDwordx4
            | TbufferStoreFormatX
            | TbufferStoreFormatXy
            | TbufferStoreFormatXyz
            | TbufferStoreFormatXyzw => {
                if in_bounds {
                    for i in 0..width {
                        let v = wave.vgpr(u32::from(vdata) + i, lane)?;
                        mem.write_u32(addr + u64::from(i) * 4, v);
                    }
                }
            }
            other => unreachable!("non-buffer opcode {other:?}"),
        }
    }

    let kind = if op.is_store() {
        AccessKind::VectorStore
    } else {
        AccessKind::VectorLoad
    };
    Ok(Outcome {
        mem: Some(MemEvent::Vector {
            kind,
            addr: first_addr.unwrap_or(base),
            lanes,
        }),
        ..Outcome::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::FixedLatencyMemory;

    fn wave() -> Wavefront {
        Wavefront::new(0, 0, 32, 16)
    }

    fn run(inst: &Instruction, wave: &mut Wavefront, mem: &mut FixedLatencyMemory) -> Outcome {
        let mut lds = vec![0u32; 64];
        execute(inst, wave.pc + inst.size_words(), wave, &mut lds, mem).unwrap()
    }

    fn sop2(op: Opcode, d: u8, a: Operand, b: Operand) -> Instruction {
        Instruction::new(
            op,
            Fields::Sop2 {
                sdst: Operand::Sgpr(d),
                ssrc0: a,
                ssrc1: b,
            },
        )
        .unwrap()
    }

    #[test]
    fn s_add_u32_carry() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_sgpr(1, u32::MAX).unwrap();
        run(
            &sop2(Opcode::SAddU32, 0, Operand::Sgpr(1), Operand::IntConst(1)),
            &mut w,
            &mut m,
        );
        assert_eq!(w.sgpr(0).unwrap(), 0);
        assert!(w.scc);
        run(
            &sop2(
                Opcode::SAddU32,
                0,
                Operand::IntConst(2),
                Operand::IntConst(3),
            ),
            &mut w,
            &mut m,
        );
        assert_eq!(w.sgpr(0).unwrap(), 5);
        assert!(!w.scc);
    }

    #[test]
    fn s_and_b64_wide() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_sgpr(2, 0xff00_ff00).unwrap();
        w.set_sgpr(3, 0x0000_ffff).unwrap();
        w.vcc = 0xffff_ffff_ffff_ffff;
        let inst = Instruction::new(
            Opcode::SAndB64,
            Fields::Sop2 {
                sdst: Operand::Sgpr(4),
                ssrc0: Operand::Sgpr(2),
                ssrc1: Operand::VccLo,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        assert_eq!(w.sgpr(4).unwrap(), 0xff00_ff00);
        assert_eq!(w.sgpr(5).unwrap(), 0x0000_ffff);
        assert!(w.scc);
    }

    #[test]
    fn s_bfe_u32() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_sgpr(1, 0b1111_0110_0000).unwrap();
        // offset 5, width 4 -> 0b1011
        let control = 5 | (4 << 16);
        run(
            &sop2(
                Opcode::SBfeU32,
                0,
                Operand::Sgpr(1),
                Operand::Literal(control),
            ),
            &mut w,
            &mut m,
        );
        assert_eq!(w.sgpr(0).unwrap(), 0b1011);
    }

    #[test]
    fn saveexec_divergence_pattern() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.vcc = 0x0000_0000_ffff_0000;
        let inst = Instruction::new(
            Opcode::SAndSaveexecB64,
            Fields::Sop1 {
                sdst: Operand::Sgpr(8),
                ssrc0: Operand::VccLo,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        // Old exec (all ones) saved to s[8:9]; exec now vcc & old.
        assert_eq!(w.sgpr(8).unwrap(), u32::MAX);
        assert_eq!(w.sgpr(9).unwrap(), u32::MAX);
        assert_eq!(w.exec, 0x0000_0000_ffff_0000);
        assert!(w.scc);
    }

    #[test]
    fn sopk_compare_and_add() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_sgpr(0, 10).unwrap();
        let cmp = Instruction::new(
            Opcode::SCmpkGtI32,
            Fields::Sopk {
                sdst: Operand::Sgpr(0),
                simm16: 5,
            },
        )
        .unwrap();
        run(&cmp, &mut w, &mut m);
        assert!(w.scc);
        let addk = Instruction::new(
            Opcode::SAddkI32,
            Fields::Sopk {
                sdst: Operand::Sgpr(0),
                simm16: -3,
            },
        )
        .unwrap();
        run(&addk, &mut w, &mut m);
        assert_eq!(w.sgpr(0).unwrap(), 7);
    }

    #[test]
    fn branches_follow_conditions() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.scc = true;
        let br = Instruction::new(Opcode::SCbranchScc1, Fields::Sopp { simm16: 5u16 }).unwrap();
        let out = run(&br, &mut w, &mut m);
        assert_eq!(out.new_pc, Some(6)); // next_pc (1) + 5
        w.scc = false;
        let out = run(&br, &mut w, &mut m);
        assert_eq!(out.new_pc, None);

        let back = Instruction::new(
            Opcode::SBranch,
            Fields::Sopp {
                simm16: (-1i16) as u16,
            },
        )
        .unwrap();
        let out = run(&back, &mut w, &mut m);
        assert_eq!(out.new_pc, Some(0));
    }

    #[test]
    fn endpgm_and_barrier_flags() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        let end = Instruction::new(Opcode::SEndpgm, Fields::Sopp { simm16: 0 }).unwrap();
        assert!(run(&end, &mut w, &mut m).end);
        let bar = Instruction::new(Opcode::SBarrier, Fields::Sopp { simm16: 0 }).unwrap();
        assert!(run(&bar, &mut w, &mut m).barrier);
    }

    #[test]
    fn smrd_loads_groups() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(256, 7);
        m.load_words(0x40, &[11, 22, 33, 44]);
        w.set_sgpr(2, 0x40).unwrap();
        w.set_sgpr(3, 0).unwrap();
        let inst = Instruction::new(
            Opcode::SLoadDwordx4,
            Fields::Smrd {
                sdst: Operand::Sgpr(8),
                sbase: 2,
                offset: SmrdOffset::Imm(0),
            },
        )
        .unwrap();
        let out = run(&inst, &mut w, &mut m);
        assert_eq!(w.sgpr(8).unwrap(), 11);
        assert_eq!(w.sgpr(11).unwrap(), 44);
        assert!(matches!(out.mem, Some(MemEvent::Scalar { addr: 0x40 })));
        // Imm offset is in dwords.
        let inst2 = Instruction::new(
            Opcode::SLoadDword,
            Fields::Smrd {
                sdst: Operand::Sgpr(0),
                sbase: 2,
                offset: SmrdOffset::Imm(2),
            },
        )
        .unwrap();
        run(&inst2, &mut w, &mut m);
        assert_eq!(w.sgpr(0).unwrap(), 33);
    }

    #[test]
    fn vector_add_respects_exec_mask() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        for lane in 0..WAVEFRONT_SIZE {
            w.set_vgpr(0, lane, lane as u32).unwrap();
        }
        w.exec = 0b1010;
        let inst = Instruction::new(
            Opcode::VAddI32,
            Fields::Vop2 {
                vdst: 1,
                src0: Operand::IntConst(10),
                vsrc1: 0,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        assert_eq!(w.vgpr(1, 0).unwrap(), 0); // masked off
        assert_eq!(w.vgpr(1, 1).unwrap(), 11);
        assert_eq!(w.vgpr(1, 2).unwrap(), 0);
        assert_eq!(w.vgpr(1, 3).unwrap(), 13);
    }

    #[test]
    fn vector_compare_writes_vcc_lanes() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        for lane in 0..WAVEFRONT_SIZE {
            w.set_vgpr(0, lane, lane as u32).unwrap();
        }
        let inst = Instruction::new(
            Opcode::VCmpGtU32,
            Fields::Vopc {
                src0: Operand::IntConst(32),
                vsrc1: 0,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        // 32 > lane for lanes 0..31.
        assert_eq!(w.vcc, 0x0000_0000_ffff_ffff);
    }

    #[test]
    fn vop3b_compare_writes_sgpr_pair() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        for lane in 0..WAVEFRONT_SIZE {
            w.set_vgpr(0, lane, lane as u32).unwrap();
        }
        let inst = Instruction::new(
            Opcode::VCmpLeU32,
            Fields::Vop3b {
                vdst: 0,
                sdst: Operand::Sgpr(14),
                src0: Operand::IntConst(62),
                src1: Operand::Vgpr(0),
                src2: None,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        // 62 <= lane for lanes 62, 63.
        assert_eq!(w.sgpr(14).unwrap(), 0);
        assert_eq!(w.sgpr(15).unwrap(), 0xc000_0000);
        assert_eq!(w.vcc, 0);
    }

    #[test]
    fn carry_chain_64bit_add() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        // lane0: lo=0xffffffff, hi=1; add (1, 0) => lo 0 carry, hi 2.
        w.set_vgpr(0, 0, u32::MAX).unwrap();
        w.set_vgpr(1, 0, 1).unwrap();
        let lo = Instruction::new(
            Opcode::VAddI32,
            Fields::Vop2 {
                vdst: 2,
                src0: Operand::IntConst(1),
                vsrc1: 0,
            },
        )
        .unwrap();
        run(&lo, &mut w, &mut m);
        assert_eq!(w.vgpr(2, 0).unwrap(), 0);
        assert_eq!(w.vcc & 1, 1);
        let hi = Instruction::new(
            Opcode::VAddcU32,
            Fields::Vop2 {
                vdst: 3,
                src0: Operand::IntConst(0),
                vsrc1: 1,
            },
        )
        .unwrap();
        run(&hi, &mut w, &mut m);
        assert_eq!(w.vgpr(3, 0).unwrap(), 2);
        assert_eq!(w.vcc & 1, 0);
    }

    #[test]
    fn cndmask_selects_by_mask() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        for lane in 0..WAVEFRONT_SIZE {
            w.set_vgpr(0, lane, 100).unwrap();
            w.set_vgpr(1, lane, 200).unwrap();
        }
        w.vcc = 0b1;
        let inst = Instruction::new(
            Opcode::VCndmaskB32,
            Fields::Vop2 {
                vdst: 2,
                src0: Operand::Vgpr(0),
                vsrc1: 1,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        assert_eq!(w.vgpr(2, 0).unwrap(), 200); // vcc bit set -> src1
        assert_eq!(w.vgpr(2, 1).unwrap(), 100);
    }

    #[test]
    fn float_ops_match_host_arithmetic() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_vgpr(0, 0, 3.5f32.to_bits()).unwrap();
        let mul = Instruction::new(
            Opcode::VMulF32,
            Fields::Vop2 {
                vdst: 1,
                src0: Operand::FloatConst(2.0),
                vsrc1: 0,
            },
        )
        .unwrap();
        run(&mul, &mut w, &mut m);
        assert_eq!(fb(w.vgpr(1, 0).unwrap()), 7.0);

        let mad = Instruction::new(
            Opcode::VMadF32,
            Fields::Vop3a {
                vdst: 2,
                src0: Operand::Vgpr(0),
                src1: Operand::Vgpr(1),
                src2: Some(Operand::Vgpr(0)),
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        )
        .unwrap();
        run(&mad, &mut w, &mut m);
        assert_eq!(fb(w.vgpr(2, 0).unwrap()), 3.5 * 7.0 + 3.5);
    }

    #[test]
    fn vop3_modifiers_apply() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_vgpr(0, 0, (-3.0f32).to_bits()).unwrap();
        w.set_vgpr(1, 0, 1.0f32.to_bits()).unwrap();
        // |src0| * -src1, omod x2, clamp -> clamp(-3 * -1 ... wait:
        // abs(-3)=3, neg on src1: -1; 3 * -1 = -3; omod 1 => -6; clamp => 0.
        let inst = Instruction::new(
            Opcode::VMulF32,
            Fields::Vop3a {
                vdst: 2,
                src0: Operand::Vgpr(0),
                src1: Operand::Vgpr(1),
                src2: None,
                abs: 0b01,
                neg: 0b10,
                clamp: true,
                omod: 1,
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        assert_eq!(fb(w.vgpr(2, 0).unwrap()), 0.0);
    }

    #[test]
    fn transcendental_semantics_are_base2_and_normalised() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.set_vgpr(0, 0, 3.0f32.to_bits()).unwrap();
        let exp = Instruction::new(
            Opcode::VExpF32,
            Fields::Vop1 {
                vdst: 1,
                src0: Operand::Vgpr(0),
            },
        )
        .unwrap();
        run(&exp, &mut w, &mut m);
        assert_eq!(fb(w.vgpr(1, 0).unwrap()), 8.0);

        w.set_vgpr(0, 0, 0.25f32.to_bits()).unwrap(); // sin(2pi/4) = 1
        let sin = Instruction::new(
            Opcode::VSinF32,
            Fields::Vop1 {
                vdst: 1,
                src0: Operand::Vgpr(0),
            },
        )
        .unwrap();
        run(&sin, &mut w, &mut m);
        assert!((fb(w.vgpr(1, 0).unwrap()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn readfirstlane_respects_mask() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        for lane in 0..WAVEFRONT_SIZE {
            w.set_vgpr(0, lane, lane as u32 * 10).unwrap();
        }
        w.exec = 0b1000; // first active lane = 3
        let inst = Instruction::new(
            Opcode::VReadfirstlaneB32,
            Fields::Vop1 {
                vdst: 7,
                src0: Operand::Vgpr(0),
            },
        )
        .unwrap();
        run(&inst, &mut w, &mut m);
        assert_eq!(w.sgpr(7).unwrap(), 30);
    }

    #[test]
    fn lds_read_write_atomics() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        let mut lds = vec![0u32; 64];
        w.exec = 0b11;
        w.set_vgpr(0, 0, 0).unwrap(); // lane0 addr 0
        w.set_vgpr(0, 1, 4).unwrap(); // lane1 addr 4
        w.set_vgpr(1, 0, 7).unwrap();
        w.set_vgpr(1, 1, 9).unwrap();
        let write = Instruction::new(
            Opcode::DsWriteB32,
            Fields::Ds {
                vdst: 0,
                addr: 0,
                data0: 1,
                data1: 0,
                offset0: 0,
                offset1: 0,
                gds: false,
            },
        )
        .unwrap();
        execute(&write, 2, &mut w, &mut lds, &mut m).unwrap();
        assert_eq!(lds[0], 7);
        assert_eq!(lds[1], 9);

        let add = Instruction::new(
            Opcode::DsAddU32,
            Fields::Ds {
                vdst: 0,
                addr: 0,
                data0: 1,
                data1: 0,
                offset0: 0,
                offset1: 0,
                gds: false,
            },
        )
        .unwrap();
        execute(&add, 2, &mut w, &mut lds, &mut m).unwrap();
        assert_eq!(lds[0], 14);

        let read = Instruction::new(
            Opcode::DsReadB32,
            Fields::Ds {
                vdst: 2,
                addr: 0,
                data0: 0,
                data1: 0,
                offset0: 0,
                offset1: 0,
                gds: false,
            },
        )
        .unwrap();
        execute(&read, 2, &mut w, &mut lds, &mut m).unwrap();
        assert_eq!(w.vgpr(2, 0).unwrap(), 14);
        assert_eq!(w.vgpr(2, 1).unwrap(), 18);
    }

    #[test]
    fn lds_out_of_range_detected() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        let mut lds = vec![0u32; 4]; // 16 bytes
        w.exec = 1;
        w.set_vgpr(0, 0, 16).unwrap();
        let read = Instruction::new(
            Opcode::DsReadB32,
            Fields::Ds {
                vdst: 1,
                addr: 0,
                data0: 0,
                data1: 0,
                offset0: 0,
                offset1: 0,
                gds: false,
            },
        )
        .unwrap();
        let err = execute(&read, 2, &mut w, &mut lds, &mut m).unwrap_err();
        assert!(matches!(err, CuError::LdsOutOfRange { .. }));
    }

    #[test]
    fn buffer_load_store_roundtrip() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(4096, 10);
        // Descriptor in s[4:7]: base 0x100, 1 KiB records.
        w.set_sgpr(4, 0x100).unwrap();
        w.set_sgpr(5, 0).unwrap();
        w.set_sgpr(6, 1024).unwrap();
        w.exec = 0xf;
        for lane in 0..4 {
            w.set_vgpr(0, lane, lane as u32 * 4).unwrap(); // byte offsets
            w.set_vgpr(1, lane, 1000 + lane as u32).unwrap();
        }
        let store = Instruction::new(
            Opcode::BufferStoreDword,
            Fields::Mubuf {
                vdata: 1,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        let out = run(&store, &mut w, &mut m);
        match out.mem {
            Some(MemEvent::Vector { kind, lanes, addr }) => {
                assert_eq!(kind, AccessKind::VectorStore);
                assert_eq!(lanes, 4);
                assert_eq!(addr, 0x100);
            }
            other => panic!("unexpected mem event {other:?}"),
        }
        assert_eq!(m.read_u32(0x100), 1000);
        assert_eq!(m.read_u32(0x10c), 1003);

        let load = Instruction::new(
            Opcode::BufferLoadDword,
            Fields::Mubuf {
                vdata: 2,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 4,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        run(&load, &mut w, &mut m);
        assert_eq!(w.vgpr(2, 0).unwrap(), 1001); // offset 4 = next element
    }

    #[test]
    fn buffer_bounds_checking() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(4096, 10);
        w.set_sgpr(4, 0).unwrap();
        w.set_sgpr(5, 0).unwrap();
        w.set_sgpr(6, 8).unwrap(); // only 8 bytes of records
        m.write_u32(8, 777);
        w.exec = 1;
        w.set_vgpr(0, 0, 8).unwrap(); // out of bounds
        let load = Instruction::new(
            Opcode::BufferLoadDword,
            Fields::Mubuf {
                vdata: 1,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        run(&load, &mut w, &mut m);
        assert_eq!(w.vgpr(1, 0).unwrap(), 0, "OOB load returns zero");

        w.set_vgpr(1, 0, 42).unwrap();
        let store = Instruction::new(
            Opcode::BufferStoreDword,
            Fields::Mubuf {
                vdata: 1,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        run(&store, &mut w, &mut m);
        assert_eq!(m.read_u32(8), 777, "OOB store dropped");
    }

    #[test]
    fn byte_loads_extend_correctly() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(64, 1);
        m.write_u32(0, 0x0000_80ff);
        w.set_sgpr(4, 0).unwrap();
        w.set_sgpr(5, 0).unwrap();
        w.set_sgpr(6, 0).unwrap(); // no bounds check
        w.exec = 0b11;
        w.set_vgpr(0, 0, 0).unwrap();
        w.set_vgpr(0, 1, 1).unwrap();
        let ub = Instruction::new(
            Opcode::BufferLoadUbyte,
            Fields::Mubuf {
                vdata: 1,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        run(&ub, &mut w, &mut m);
        assert_eq!(w.vgpr(1, 0).unwrap(), 0xff);
        assert_eq!(w.vgpr(1, 1).unwrap(), 0x80);
        let sb = Instruction::new(
            Opcode::BufferLoadSbyte,
            Fields::Mubuf {
                vdata: 2,
                vaddr: 0,
                srsrc: 4,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: true,
                idxen: false,
                glc: false,
            },
        )
        .unwrap();
        run(&sb, &mut w, &mut m);
        assert_eq!(w.vgpr(2, 0).unwrap() as i32, -1);
        assert_eq!(w.vgpr(2, 1).unwrap() as i32, -128);
    }

    #[test]
    fn mul_hi_and_bfi() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.exec = 1;
        w.set_vgpr(0, 0, 0x8000_0000).unwrap();
        w.set_vgpr(1, 0, 4).unwrap();
        let mulhi = Instruction::new(
            Opcode::VMulHiU32,
            Fields::Vop3a {
                vdst: 2,
                src0: Operand::Vgpr(0),
                src1: Operand::Vgpr(1),
                src2: None,
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        )
        .unwrap();
        run(&mulhi, &mut w, &mut m);
        assert_eq!(w.vgpr(2, 0).unwrap(), 2);

        w.set_vgpr(3, 0, 0x0000_ffff).unwrap(); // mask
        w.set_vgpr(4, 0, 0x1234_5678).unwrap();
        w.set_vgpr(5, 0, 0xabcd_ef01).unwrap();
        let bfi = Instruction::new(
            Opcode::VBfiB32,
            Fields::Vop3a {
                vdst: 6,
                src0: Operand::Vgpr(3),
                src1: Operand::Vgpr(4),
                src2: Some(Operand::Vgpr(5)),
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        )
        .unwrap();
        run(&bfi, &mut w, &mut m);
        assert_eq!(w.vgpr(6, 0).unwrap(), 0xabcd_5678);
    }

    #[test]
    fn conversions_clamp() {
        let mut w = wave();
        let mut m = FixedLatencyMemory::new(0, 0);
        w.exec = 1;
        w.set_vgpr(0, 0, (-5.7f32).to_bits()).unwrap();
        let cvt = Instruction::new(
            Opcode::VCvtU32F32,
            Fields::Vop1 {
                vdst: 1,
                src0: Operand::Vgpr(0),
            },
        )
        .unwrap();
        run(&cvt, &mut w, &mut m);
        assert_eq!(w.vgpr(1, 0).unwrap(), 0);

        let cvt_i = Instruction::new(
            Opcode::VCvtI32F32,
            Fields::Vop1 {
                vdst: 1,
                src0: Operand::Vgpr(0),
            },
        )
        .unwrap();
        run(&cvt_i, &mut w, &mut m);
        assert_eq!(w.vgpr(1, 0).unwrap() as i32, -5);
    }
}
