//! # scratch-cu
//!
//! Cycle-level simulator of the MIAOW2.0 compute unit from the SCRATCH paper
//! (MICRO-50, 2017).
//!
//! The simulated CU mirrors the architecture of the paper's Fig. 2:
//!
//! * up to 40 resident wavefronts with round-robin fetch ([`CuConfig`]);
//! * a decode stage that needs two cycles for 64-bit encodings;
//! * an issue stage with per-wavefront in-order scoreboarding, immediate
//!   handling of barriers and halts, and `s_waitcnt` blocking;
//! * four execution-unit classes — SALU, integer SIMD VALUs, floating-point
//!   SIMF VALUs and the LSU — with configurable *counts* of SIMD/SIMF units
//!   (the paper's multi-thread parallelism axis) and per-class latencies;
//! * 16-wide vector units executing a 64-lane wavefront in 4 beats;
//! * an LDS scratchpad per workgroup and workgroup-scoped `s_barrier`.
//!
//! Functional execution is exact for every supported instruction: the same
//! register/memory state a Southern Islands CU would produce (§2.3 of the
//! paper validated this instruction-by-instruction on the FPGA; our unit
//! tests play the same role).
//!
//! Timing follows a *functional-now, timing-later* discipline: an
//! instruction's architectural effects apply when it issues, while its cost
//! occupies the functional unit and delays dependent instructions, and
//! memory costs are charged through the `vmcnt`/`lgkmcnt` counters exactly
//! where SI software must already synchronise with `s_waitcnt`.
//!
//! Trimmed architectures ([`TrimSet`]) are enforced at issue: executing an
//! instruction the trimming tool removed is a hard [`CuError::Trimmed`] —
//! the safety property the SCRATCH tool guarantees never to violate for the
//! kernel it trimmed against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fault;
/// Timing-free functional execution (shared by the cycle pipeline and the
/// `scratch-fastpath` block-compiled executor).
pub mod func;
mod memory;
mod pipeline;
mod stats;
mod trimset;
mod wavefront;

pub use config::{CuConfig, Latencies};
pub use error::CuError;
pub use fault::{CuFault, FaultHook, FaultRecord, FaultTarget, ScheduledFaults};
pub use memory::{AccessKind, FixedLatencyMemory, Memory};
pub use pipeline::{ComputeUnit, RunStatus, WaveInit};
pub use stats::{CuStats, OpcodeHistogram};
pub use trimset::TrimSet;
pub use wavefront::Wavefront;

// Convenience re-exports so CU users reach the tracing subsystem without a
// separate dependency on `scratch-trace`.
pub use scratch_trace::{EventBuffer, NullTracer, StallReason, TraceEvent, TraceSummary, Tracer};

// Snapshot types a checkpointing caller needs alongside
// [`ComputeUnit::snapshot`] / [`ComputeUnit::restore`].
pub use scratch_snap::{CuSnapshot, WaveSnapshot, WorkgroupSnapshot};

#[cfg(test)]
mod send_tests {
    /// The execution engine moves compute units onto worker threads; every
    /// tracer sink is `Send`, so the whole CU must be too.
    #[test]
    fn compute_unit_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<super::ComputeUnit>();
    }
}
