//! Property tests for the stall-attribution engine: over random kernels
//! and CU configurations, every wavefront's attributed cycles (issue +
//! stalls) must sum exactly to its residency, and attaching a tracer must
//! not change simulation results.

use proptest::prelude::*;

use scratch_asm::{Kernel, KernelBuilder};
use scratch_cu::{
    ComputeUnit, CuConfig, EventBuffer, FixedLatencyMemory, NullTracer, StallReason, WaveInit,
};
use scratch_isa::{Opcode, Operand};

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Integer VALU op `v[dst] = v[src] + 1`.
    VInt(u8, u8),
    /// FP VALU op `v[dst] = v[src] + 1.0` (occupies a SIMF unit).
    VFp(u8, u8),
    /// Scalar op `s[dst] = s[src] + 1`.
    SInt(u8, u8),
    /// `buffer_load_dword v[dst], v0` through the descriptor in s[4:7].
    Load(u8),
    /// `s_waitcnt vmcnt(0) lgkmcnt(0)`.
    WaitAll,
    /// `s_barrier` (every wave executes the same program, so all arrive).
    Barrier,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (1u8..8, 0u8..8).prop_map(|(d, s)| Step::VInt(d, s)),
        (1u8..8, 0u8..8).prop_map(|(d, s)| Step::VFp(d, s)),
        (0u8..8, 0u8..8).prop_map(|(d, s)| Step::SInt(d, s)),
        (1u8..8).prop_map(Step::Load),
        Just(Step::WaitAll),
        Just(Step::Barrier),
    ];
    prop::collection::vec(step, 1..24)
}

fn build_kernel(steps: &[Step]) -> Kernel {
    let mut b = KernelBuilder::new("trace_prop");
    b.sgprs(16).vgprs(8);
    for step in steps {
        match *step {
            Step::VInt(d, s) => {
                b.vop2(Opcode::VAddI32, d, Operand::IntConst(1), s).unwrap();
            }
            Step::VFp(d, s) => {
                b.vop2(Opcode::VAddF32, d, Operand::FloatConst(1.0), s)
                    .unwrap();
            }
            Step::SInt(d, s) => {
                b.sop2(
                    Opcode::SAddI32,
                    Operand::Sgpr(d),
                    Operand::Sgpr(s),
                    Operand::IntConst(1),
                )
                .unwrap();
            }
            Step::Load(d) => {
                b.mubuf(Opcode::BufferLoadDword, d, 0, 4, Operand::IntConst(0), 0)
                    .unwrap();
            }
            Step::WaitAll => {
                b.waitcnt(Some(0), Some(0)).unwrap();
            }
            Step::Barrier => {
                b.sopp(Opcode::SBarrier, 0).unwrap();
            }
        }
    }
    b.waitcnt(Some(0), Some(0)).unwrap();
    b.endpgm().unwrap();
    b.finish().unwrap()
}

/// How a run observes (or ignores) the trace subsystem.
enum Sink {
    /// No tracing at all.
    Off,
    /// Stall attribution + summary, no event sink.
    Summary,
    /// A disabled sink — must behave exactly like [`Sink::Off`].
    Null,
    /// Full instrumentation retaining every event.
    Buffer(EventBuffer),
}

fn run(kernel: &Kernel, config: &CuConfig, waves: usize, latency: u64, sink: Sink) -> ComputeUnit {
    let mut cu = ComputeUnit::new(config.clone(), kernel).unwrap();
    match sink {
        Sink::Off => {}
        Sink::Summary => cu.enable_tracing(0),
        Sink::Null => cu.set_tracer(0, Box::new(NullTracer)),
        Sink::Buffer(buf) => cu.set_tracer(0, Box::new(buf)),
    }
    let wg = cu.add_workgroup();
    for _ in 0..waves {
        cu.start_wave(WaveInit {
            workgroup: wg,
            exec: u64::MAX,
            sgprs: (4..8).map(|r| (r, 0)).collect(),
            vgprs: vec![(0, (0..64).map(|l| l * 4).collect())],
        })
        .unwrap();
    }
    let mut mem = FixedLatencyMemory::new(4096, latency);
    cu.run_to_completion(&mut mem).unwrap();
    cu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn attribution_tiles_every_wavefronts_residency(
        steps in arb_steps(),
        waves in 1usize..6,
        int_valus in 1u8..4,
        fp_valus in 1u8..4,
        latency in prop::sample::select(vec![0u64, 3, 50, 300]),
    ) {
        let kernel = build_kernel(&steps);
        let config = CuConfig { int_valus, fp_valus, ..CuConfig::default() };
        let cu = run(&kernel, &config, waves, latency, Sink::Summary);

        let summary = cu.trace_summary().expect("tracing was enabled");
        prop_assert_eq!(summary.waves.len(), waves);
        summary.check_invariant().map_err(TestCaseError::fail)?;
        prop_assert_eq!(summary.cycles, cu.now());
        // Residency tiling means total attributed wavefront-cycles equal
        // waves × batch length exactly, once the idle tail is added back.
        let resident: u64 = summary.resident_cycles();
        let tail = summary.stall_cycles(StallReason::WavepoolEmpty);
        prop_assert_eq!(resident + tail, waves as u64 * cu.now());
    }

    /// The always-on metrics aggregates (`CuStats::stall_cycles`) are a
    /// cheap re-derivation of what the attribution engine computes
    /// exactly: per CU-resident reason the two must agree to the cycle.
    #[test]
    fn metrics_aggregates_match_trace_attribution(
        steps in arb_steps(),
        waves in 1usize..6,
        int_valus in 1u8..4,
        latency in prop::sample::select(vec![0u64, 3, 50, 300]),
    ) {
        let kernel = build_kernel(&steps);
        let config = CuConfig { int_valus, ..CuConfig::default() };
        let cu = run(&kernel, &config, waves, latency, Sink::Summary);
        let summary = cu.trace_summary().expect("tracing was enabled");
        for r in StallReason::ALL {
            if r == StallReason::MemoryQueue {
                continue; // accounted at the system's memory server, not per CU
            }
            prop_assert_eq!(
                cu.stats().stall_cycles.get(&r).copied().unwrap_or(0),
                summary.stall_cycles(r),
                "stall reason {}",
                r
            );
        }
    }

    #[test]
    fn tracer_does_not_change_simulation(
        steps in arb_steps(),
        waves in 1usize..4,
        latency in prop::sample::select(vec![0u64, 50]),
    ) {
        let kernel = build_kernel(&steps);
        let config = CuConfig::default();
        let plain = run(&kernel, &config, waves, latency, Sink::Off);
        // A disabled sink must be recognised as "tracing off".
        let nulled = run(&kernel, &config, waves, latency, Sink::Null);
        // Full instrumentation (attribution + every event retained) must
        // still leave the simulation bit-identical.
        let buf = EventBuffer::new();
        let traced = run(&kernel, &config, waves, latency, Sink::Buffer(buf.clone()));

        prop_assert!(!nulled.tracing_enabled());
        prop_assert!(!buf.is_empty());
        for other in [&nulled, &traced] {
            prop_assert_eq!(plain.now(), other.now());
            prop_assert_eq!(plain.stats(), other.stats());
            for w in 0..waves {
                for r in 0..8u32 {
                    for lane in (0..64).step_by(13) {
                        prop_assert_eq!(
                            plain.wave(w).vgpr(r, lane).unwrap(),
                            other.wave(w).vgpr(r, lane).unwrap()
                        );
                    }
                }
            }
        }
    }
}

/// A memory-bound kernel must attribute its waiting to the vector-memory
/// counter, and the stall must scale with the memory latency.
#[test]
fn memory_bound_kernel_blames_waitcnt_vm() {
    let kernel = build_kernel(&[Step::Load(1), Step::WaitAll]);
    let config = CuConfig::default();
    let cu = run(&kernel, &config, 1, 400, Sink::Summary);
    let summary = cu.trace_summary().unwrap();
    summary.check_invariant().unwrap();
    assert!(
        summary.stall_cycles(StallReason::WaitcntVm) >= 300,
        "vm stall too small: {:?}",
        summary.stalls
    );
}

/// Waves parked at a barrier are attributed to the barrier, not to memory
/// or the scoreboard.
#[test]
fn barrier_wait_is_attributed_to_barrier() {
    // One load+wait before the barrier gives the first-arriving waves a
    // long park while the loads of later waves drain.
    let kernel = build_kernel(&[Step::Load(1), Step::WaitAll, Step::Barrier]);
    let config = CuConfig::default();
    let cu = run(&kernel, &config, 4, 200, Sink::Summary);
    let summary = cu.trace_summary().unwrap();
    summary.check_invariant().unwrap();
    assert!(
        summary.stall_cycles(StallReason::Barrier) > 0,
        "no barrier stall recorded: {:?}",
        summary.stalls
    );
}
