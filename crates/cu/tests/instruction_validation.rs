//! Exhaustive per-instruction validation — the software analogue of the
//! paper's §2.3 test scripts, which ran one microbenchmark per opcode on
//! the FPGA and compared the recovered register values against a reference
//! implementation.
//!
//! Three "programs" mirror the paper's split: scalar, vector, and memory
//! instruction domains. Every supported opcode is exercised by at least
//! one golden-value case.

use scratch_asm::KernelBuilder;
use scratch_cu::{ComputeUnit, CuConfig, FixedLatencyMemory, WaveInit};
use scratch_isa::{Fields, Instruction, Opcode, Operand, SmrdOffset};

/// Run one instruction with the given scalar/vector presets; returns the CU.
struct Harness {
    cu: ComputeUnit,
    wave: usize,
}

fn run_program(insts: &[Instruction], init: WaveInit, mem_words: &[u32]) -> Harness {
    let mut b = KernelBuilder::new("validate");
    b.sgprs(64).vgprs(16).lds_bytes(256);
    for &inst in insts {
        b.push(inst);
    }
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let _wg = cu.add_workgroup();
    let wave = cu.start_wave(init).unwrap();
    let mut mem = FixedLatencyMemory::new(4096, 1);
    mem.load_words(0, mem_words);
    cu.run_to_completion(&mut mem).unwrap();
    Harness { cu, wave }
}

// ----------------------------------------------------------------- scalar

/// One scalar case: sources in s10/s11 (s11 pairs with s12 for B64),
/// result read from s0 (and s1 for wide results) plus the SCC flag.
fn scalar_case(op: Opcode, s10: u64, s11: u64, scc_in: bool) -> (u64, bool) {
    let set64 = |b: &mut KernelBuilder, reg: u8, v: u64| {
        b.sop1(
            Opcode::SMovB32,
            Operand::Sgpr(reg),
            Operand::Literal(v as u32),
        )
        .unwrap();
        b.sop1(
            Opcode::SMovB32,
            Operand::Sgpr(reg + 1),
            Operand::Literal((v >> 32) as u32),
        )
        .unwrap();
    };
    let mut b = KernelBuilder::new("scalar");
    b.sgprs(64).vgprs(4);
    set64(&mut b, 10, s10);
    set64(&mut b, 12, s11);
    // Set SCC via a compare.
    b.sopc(
        Opcode::SCmpEqU32,
        Operand::IntConst(if scc_in { 1 } else { 0 }),
        Operand::IntConst(1),
    )
    .unwrap();
    let inst = match op.format() {
        scratch_isa::Format::Sop2 => Instruction::new(
            op,
            Fields::Sop2 {
                sdst: Operand::Sgpr(0),
                ssrc0: Operand::Sgpr(10),
                ssrc1: Operand::Sgpr(12),
            },
        )
        .unwrap(),
        scratch_isa::Format::Sop1 => Instruction::new(
            op,
            Fields::Sop1 {
                sdst: Operand::Sgpr(0),
                ssrc0: Operand::Sgpr(10),
            },
        )
        .unwrap(),
        scratch_isa::Format::Sopc => Instruction::new(
            op,
            Fields::Sopc {
                ssrc0: Operand::Sgpr(10),
                ssrc1: Operand::Sgpr(12),
            },
        )
        .unwrap(),
        other => panic!("scalar_case does not handle {other:?}"),
    };
    b.push(inst);
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    let w = cu
        .start_wave(WaveInit {
            workgroup: wg,
            exec: u64::MAX,
            ..WaveInit::default()
        })
        .unwrap();
    let mut mem = FixedLatencyMemory::new(64, 1);
    cu.run_to_completion(&mut mem).unwrap();
    let lo = u64::from(cu.wave(w).sgpr(0).unwrap());
    let hi = u64::from(cu.wave(w).sgpr(1).unwrap());
    (lo | (hi << 32), cu.wave(w).scc)
}

#[test]
fn scalar_arithmetic_golden_values() {
    // (opcode, s10, s11, scc_in, expected value (s0 or s[0:1]), expected scc)
    let cases: &[(Opcode, u64, u64, bool, u64, bool)] = &[
        (Opcode::SAddU32, 7, 5, false, 12, false),
        (Opcode::SAddU32, 0xffff_ffff, 1, false, 0, true),
        (Opcode::SSubU32, 5, 7, false, 0xffff_fffe, true),
        (Opcode::SAddI32, 0x7fff_ffff, 1, false, 0x8000_0000, true),
        (Opcode::SSubI32, 10, 3, false, 7, false),
        (Opcode::SAddcU32, 1, 2, true, 4, false),
        (Opcode::SSubbU32, 5, 2, true, 2, false),
        (Opcode::SMinI32, 0xffff_ffff, 1, false, 0xffff_ffff, true), // -1 < 1
        (Opcode::SMinU32, 0xffff_ffff, 1, false, 1, false),
        (Opcode::SMaxI32, 0xffff_ffff, 1, false, 1, false),
        (Opcode::SMaxU32, 0xffff_ffff, 1, false, 0xffff_ffff, true),
        (Opcode::SCselectB32, 11, 22, true, 11, true),
        (Opcode::SCselectB32, 11, 22, false, 22, false),
        (Opcode::SMulI32, 7, 6, false, 42, false),
        (Opcode::SLshlB32, 1, 4, false, 16, true),
        (Opcode::SLshrB32, 16, 4, false, 1, true),
        (Opcode::SAshrI32, 0x8000_0000, 31, false, 0xffff_ffff, true),
        (Opcode::SBfmB32, 4, 8, false, 0xf00, false),
    ];
    for &(op, a, bb, scc_in, want, want_scc) in cases {
        let (got, got_scc) = scalar_case(op, a, bb, scc_in);
        assert_eq!(got & 0xffff_ffff, want, "{op:?} value");
        assert_eq!(got_scc, want_scc, "{op:?} scc");
    }
}

#[test]
fn scalar_logic_b64_golden_values() {
    let a: u64 = 0xff00_ff00_0f0f_0f0f;
    let m: u64 = 0x0ff0_0ff0_00ff_00ff;
    let cases: &[(Opcode, u64)] = &[
        (Opcode::SAndB64, a & m),
        (Opcode::SOrB64, a | m),
        (Opcode::SXorB64, a ^ m),
        (Opcode::SAndn2B64, a & !m),
        (Opcode::SOrn2B64, a | !m),
        (Opcode::SNandB64, !(a & m)),
        (Opcode::SNorB64, !(a | m)),
        (Opcode::SXnorB64, !(a ^ m)),
        (Opcode::SMovB64, a),
    ];
    for &(op, want) in cases {
        let (got, scc) = scalar_case(op, a, m, false);
        assert_eq!(got, want, "{op:?}");
        if op != Opcode::SMovB64 {
            assert_eq!(scc, want != 0, "{op:?} scc");
        }
    }
}

#[test]
fn scalar_bit_ops_golden_values() {
    let cases: &[(Opcode, u64, u64)] = &[
        (Opcode::SNotB32, 0xffff_0000, 0x0000_ffff),
        (Opcode::SBrevB32, 0x8000_0000, 1),
        (Opcode::SBcnt1I32B32, 0xf0f0, 8),
        (Opcode::SBcnt0I32B32, u64::from(u32::MAX), 0),
        (Opcode::SFf1I32B32, 0b1000, 3),
        (Opcode::SFf0I32B32, 0b0111, 3),
        (Opcode::SFlbitI32B32, 0x00ff_0000, 8),
        (Opcode::SSextI32I8, 0x80, 0xffff_ff80),
        (Opcode::SSextI32I16, 0x8000, 0xffff_8000),
    ];
    for &(op, a, want) in cases {
        let (got, _) = scalar_case(op, a, 0, false);
        assert_eq!(got & 0xffff_ffff, want, "{op:?}");
    }
}

#[test]
fn scalar_compares_golden_values() {
    let cases: &[(Opcode, u64, u64, bool)] = &[
        (Opcode::SCmpEqI32, 5, 5, true),
        (Opcode::SCmpLgI32, 5, 5, false),
        (Opcode::SCmpGtI32, 0xffff_ffff, 0, false), // -1 > 0 is false
        (Opcode::SCmpGtU32, 0xffff_ffff, 0, true),
        (Opcode::SCmpGeI32, 3, 3, true),
        (Opcode::SCmpLtI32, 0xffff_ffff, 0, true),
        (Opcode::SCmpLtU32, 0xffff_ffff, 0, false),
        (Opcode::SCmpLeU32, 2, 2, true),
        (Opcode::SCmpEqU32, 1, 2, false),
        (Opcode::SCmpLgU32, 1, 2, true),
        (Opcode::SCmpGeU32, 1, 2, false),
        (Opcode::SCmpLeI32, 1, 2, true),
    ];
    for &(op, a, bb, want) in cases {
        let (_, scc) = scalar_case(op, a, bb, false);
        assert_eq!(scc, want, "{op:?}");
    }
}

// ----------------------------------------------------------------- vector

/// One vector case: v1 = a (all lanes), v2 = b, run op into v3, check lane 0.
fn vector_case(inst: Instruction, a: u32, b: u32) -> u32 {
    let init = WaveInit {
        workgroup: 0,
        exec: u64::MAX,
        sgprs: vec![(10, 0x1234_5678)],
        vgprs: vec![(1, vec![a; 64]), (2, vec![b; 64])],
    };
    let h = run_program(&[inst], init, &[]);
    h.cu.wave(h.wave).vgpr(3, 0).unwrap()
}

fn vop2(op: Opcode, src0: Operand) -> Instruction {
    Instruction::new(
        op,
        Fields::Vop2 {
            vdst: 3,
            src0,
            vsrc1: 2,
        },
    )
    .unwrap()
}

fn vop1(op: Opcode) -> Instruction {
    Instruction::new(
        op,
        Fields::Vop1 {
            vdst: 3,
            src0: Operand::Vgpr(1),
        },
    )
    .unwrap()
}

fn vop3(op: Opcode, three: bool) -> Instruction {
    Instruction::new(
        op,
        Fields::Vop3a {
            vdst: 3,
            src0: Operand::Vgpr(1),
            src1: Operand::Vgpr(2),
            src2: three.then_some(Operand::Vgpr(4)),
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
    )
    .unwrap()
}

#[test]
fn vector_integer_golden_values() {
    let f = |x: f32| x.to_bits();
    let cases: &[(Instruction, u32, u32, u32)] = &[
        (vop2(Opcode::VAddI32, Operand::Vgpr(1)), 7, 8, 15),
        (vop2(Opcode::VSubI32, Operand::Vgpr(1)), 7, 8, 0xffff_ffff),
        (vop2(Opcode::VSubrevI32, Operand::Vgpr(1)), 7, 8, 1),
        (vop2(Opcode::VAndB32, Operand::Vgpr(1)), 0xff0, 0x0ff, 0x0f0),
        (vop2(Opcode::VOrB32, Operand::Vgpr(1)), 0xf00, 0x00f, 0xf0f),
        (vop2(Opcode::VXorB32, Operand::Vgpr(1)), 0xff, 0x0f, 0xf0),
        (vop2(Opcode::VLshlB32, Operand::Vgpr(1)), 3, 4, 48),
        (vop2(Opcode::VLshlrevB32, Operand::Vgpr(1)), 4, 3, 48),
        (vop2(Opcode::VLshrB32, Operand::Vgpr(1)), 48, 4, 3),
        (vop2(Opcode::VLshrrevB32, Operand::Vgpr(1)), 4, 48, 3),
        (
            vop2(Opcode::VAshrI32, Operand::Vgpr(1)),
            0x8000_0000,
            4,
            0xf800_0000,
        ),
        (
            vop2(Opcode::VAshrrevI32, Operand::Vgpr(1)),
            4,
            0x8000_0000,
            0xf800_0000,
        ),
        (
            vop2(Opcode::VMinI32, Operand::Vgpr(1)),
            0xffff_ffff,
            3,
            0xffff_ffff,
        ),
        (vop2(Opcode::VMaxI32, Operand::Vgpr(1)), 0xffff_ffff, 3, 3),
        (vop2(Opcode::VMinU32, Operand::Vgpr(1)), 0xffff_ffff, 3, 3),
        (
            vop2(Opcode::VMaxU32, Operand::Vgpr(1)),
            0xffff_ffff,
            3,
            0xffff_ffff,
        ),
        // 24-bit multiplies sign/zero extend from bit 23.
        (
            vop2(Opcode::VMulI32I24, Operand::Vgpr(1)),
            0x00ff_ffff, // -1 in 24-bit
            5,
            (-5i32) as u32,
        ),
        (
            vop2(Opcode::VMulU32U24, Operand::Vgpr(1)),
            0x00ff_ffff,
            2,
            0x01ff_fffe,
        ),
        (vop1(Opcode::VNotB32), 0x0000_ffff, 0, 0xffff_0000),
        (vop1(Opcode::VBfrevB32), 1, 0, 0x8000_0000),
        (vop1(Opcode::VFfbhU32), 0x00f0_0000, 0, 8),
        (vop1(Opcode::VFfblB32), 0x00f0_0000, 0, 20),
        (vop1(Opcode::VMovB32), 42, 0, 42),
        (
            vop3(Opcode::VMulLoU32, false),
            0x1_0001,
            0x1_0001,
            0x2_0001u32.wrapping_mul(1),
        ),
        (vop3(Opcode::VMulHiU32, false), 0x8000_0000, 4, 2),
        (
            vop3(Opcode::VMulLoI32, false),
            (-3i32) as u32,
            7,
            (-21i32) as u32,
        ),
        (
            vop3(Opcode::VMulHiI32, false),
            (-1i32) as u32,
            2,
            (-1i32) as u32,
        ),
        // alignbit with shift 0 (v4 is zeroed) returns src0 verbatim.
        (
            vop3(Opcode::VAlignbitB32, true),
            0xdead_beef,
            0x1234_5678,
            0xdead_beef,
        ),
        // Float basics at lane level.
        (
            vop2(Opcode::VAddF32, Operand::Vgpr(1)),
            f(1.5),
            f(2.25),
            f(3.75),
        ),
        (
            vop2(Opcode::VSubF32, Operand::Vgpr(1)),
            f(5.0),
            f(2.0),
            f(3.0),
        ),
        (
            vop2(Opcode::VSubrevF32, Operand::Vgpr(1)),
            f(2.0),
            f(5.0),
            f(3.0),
        ),
        (
            vop2(Opcode::VMulF32, Operand::Vgpr(1)),
            f(3.0),
            f(-2.0),
            f(-6.0),
        ),
        (
            vop2(Opcode::VMinF32, Operand::Vgpr(1)),
            f(3.0),
            f(-2.0),
            f(-2.0),
        ),
        (
            vop2(Opcode::VMaxF32, Operand::Vgpr(1)),
            f(3.0),
            f(-2.0),
            f(3.0),
        ),
        (vop1(Opcode::VFractF32), f(2.75), 0, f(0.75)),
        (vop1(Opcode::VTruncF32), f(-2.75), 0, f(-2.0)),
        (vop1(Opcode::VCeilF32), f(2.25), 0, f(3.0)),
        (vop1(Opcode::VFloorF32), f(-2.25), 0, f(-3.0)),
        (vop1(Opcode::VRndneF32), f(2.5), 0, f(2.0)),
        (vop1(Opcode::VRndneF32), f(3.5), 0, f(4.0)),
        (vop1(Opcode::VExpF32), f(4.0), 0, f(16.0)),
        (vop1(Opcode::VLogF32), f(16.0), 0, f(4.0)),
        (vop1(Opcode::VRcpF32), f(4.0), 0, f(0.25)),
        (vop1(Opcode::VRsqF32), f(16.0), 0, f(0.25)),
        (vop1(Opcode::VSqrtF32), f(9.0), 0, f(3.0)),
        (vop1(Opcode::VCvtF32I32), (-7i32) as u32, 0, f(-7.0)),
        (vop1(Opcode::VCvtF32U32), 7, 0, f(7.0)),
        (vop1(Opcode::VCvtU32F32), f(7.9), 0, 7),
        (vop1(Opcode::VCvtI32F32), f(-7.9), 0, (-7i32) as u32),
    ];
    for (inst, a, b, want) in cases {
        let got = vector_case(*inst, *a, *b);
        assert_eq!(
            got, *want,
            "{:?}: got {got:#x}, want {want:#x}",
            inst.opcode
        );
    }
}

#[test]
fn vector_three_source_golden_values() {
    // v1=a, v2=b, v4=c.
    let case = |op: Opcode, a: u32, b: u32, c: u32| -> u32 {
        let init = WaveInit {
            workgroup: 0,
            exec: u64::MAX,
            sgprs: vec![],
            vgprs: vec![(1, vec![a; 64]), (2, vec![b; 64]), (4, vec![c; 64])],
        };
        let h = run_program(&[vop3(op, true)], init, &[]);
        h.cu.wave(h.wave).vgpr(3, 0).unwrap()
    };
    let f = |x: f32| x.to_bits();
    assert_eq!(case(Opcode::VMadF32, f(2.0), f(3.0), f(4.0)), f(10.0));
    assert_eq!(case(Opcode::VFmaF32, f(2.0), f(3.0), f(4.0)), f(10.0));
    assert_eq!(case(Opcode::VMadI32I24, 5, 6, 7), 37);
    assert_eq!(case(Opcode::VMadU32U24, 5, 6, 7), 37);
    assert_eq!(case(Opcode::VBfeU32, 0xff00, 8, 4), 0xf);
    assert_eq!(case(Opcode::VBfeI32, 0xf00, 8, 4), 0xffff_ffff);
    assert_eq!(case(Opcode::VBfiB32, 0xff, 0xab, 0xcd00), 0xcdab);
    assert_eq!(case(Opcode::VMin3I32, 5, (-2i32) as u32, 3), (-2i32) as u32);
    assert_eq!(case(Opcode::VMax3I32, 5, (-2i32) as u32, 3), 5);
    assert_eq!(case(Opcode::VMed3I32, 5, (-2i32) as u32, 3), 3);
    assert_eq!(case(Opcode::VMin3U32, 5, 2, 3), 2);
    assert_eq!(case(Opcode::VMax3U32, 5, 2, 3), 5);
    assert_eq!(case(Opcode::VMed3U32, 5, 2, 3), 3);
    assert_eq!(case(Opcode::VMin3F32, f(5.0), f(-2.0), f(3.0)), f(-2.0));
    assert_eq!(case(Opcode::VMax3F32, f(5.0), f(-2.0), f(3.0)), f(5.0));
    assert_eq!(case(Opcode::VMed3F32, f(5.0), f(-2.0), f(3.0)), f(3.0));
}

#[test]
fn vector_compares_set_expected_lanes() {
    // v1 = lane id, compare against 32 broadcast in v2.
    let case = |op: Opcode| -> u64 {
        let init = WaveInit {
            workgroup: 0,
            exec: u64::MAX,
            sgprs: vec![],
            vgprs: vec![(1, (0..64).collect()), (2, vec![32; 64])],
        };
        let inst = Instruction::new(
            op,
            Fields::Vopc {
                src0: Operand::Vgpr(1),
                vsrc1: 2,
            },
        )
        .unwrap();
        let h = run_program(&[inst], init, &[]);
        h.cu.wave(h.wave).vcc
    };
    let below: u64 = (1u64 << 32) - 1; // lanes 0..31
    assert_eq!(case(Opcode::VCmpLtU32), below);
    assert_eq!(case(Opcode::VCmpLeU32), below | (1 << 32));
    assert_eq!(case(Opcode::VCmpGtU32), !(below | (1 << 32)));
    assert_eq!(case(Opcode::VCmpGeU32), !below);
    assert_eq!(case(Opcode::VCmpEqU32), 1 << 32);
    assert_eq!(case(Opcode::VCmpNeU32), !(1u64 << 32));
    assert_eq!(case(Opcode::VCmpLtI32), below);
    assert_eq!(case(Opcode::VCmpEqI32), 1 << 32);
    assert_eq!(case(Opcode::VCmpNeI32), !(1u64 << 32));
    assert_eq!(case(Opcode::VCmpGtI32), !(below | (1 << 32)));
    assert_eq!(case(Opcode::VCmpGeI32), !below);
    assert_eq!(case(Opcode::VCmpLeI32), below | (1 << 32));
}

#[test]
fn float_compares_handle_nan() {
    let f = |x: f32| x.to_bits();
    let case = |op: Opcode, a: u32, b: u32| -> bool {
        let init = WaveInit {
            workgroup: 0,
            exec: 1,
            sgprs: vec![],
            vgprs: vec![(1, vec![a; 64]), (2, vec![b; 64])],
        };
        let inst = Instruction::new(
            op,
            Fields::Vopc {
                src0: Operand::Vgpr(1),
                vsrc1: 2,
            },
        )
        .unwrap();
        let h = run_program(&[inst], init, &[]);
        h.cu.wave(h.wave).vcc & 1 == 1
    };
    let nan = f32::NAN.to_bits();
    assert!(case(Opcode::VCmpLtF32, f(1.0), f(2.0)));
    assert!(!case(Opcode::VCmpLtF32, nan, f(2.0)));
    assert!(case(Opcode::VCmpEqF32, f(2.0), f(2.0)));
    assert!(!case(Opcode::VCmpEqF32, nan, nan));
    // NEQ is the unordered complement of EQ: true on NaN.
    assert!(case(Opcode::VCmpNeqF32, nan, nan));
    // LG is ordered: false on NaN.
    assert!(!case(Opcode::VCmpLgF32, nan, nan));
    assert!(case(Opcode::VCmpLgF32, f(1.0), f(2.0)));
    assert!(case(Opcode::VCmpGeF32, f(2.0), f(2.0)));
    assert!(case(Opcode::VCmpGtF32, f(3.0), f(2.0)));
    assert!(case(Opcode::VCmpLeF32, f(2.0), f(2.0)));
}

// ----------------------------------------------------------------- memory

#[test]
fn memory_program_exercises_every_access_width() {
    // Memory image: 16 dwords of known data.
    let data: Vec<u32> = (0..16).map(|i| 0x1111_0000 + i).collect();

    let mut b = KernelBuilder::new("memory");
    b.sgprs(64).vgprs(16);
    // s[2:3] base = 0.
    b.sop1(Opcode::SMovB32, Operand::Sgpr(2), Operand::IntConst(0))
        .unwrap();
    b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))
        .unwrap();
    // Scalar loads of every width.
    b.smrd(Opcode::SLoadDword, Operand::Sgpr(20), 2, SmrdOffset::Imm(0))
        .unwrap();
    b.smrd(
        Opcode::SLoadDwordx2,
        Operand::Sgpr(22),
        2,
        SmrdOffset::Imm(1),
    )
    .unwrap();
    b.smrd(
        Opcode::SLoadDwordx4,
        Operand::Sgpr(24),
        2,
        SmrdOffset::Imm(4),
    )
    .unwrap();
    b.smrd(
        Opcode::SBufferLoadDword,
        Operand::Sgpr(28),
        2,
        SmrdOffset::Imm(8),
    )
    .unwrap();
    b.smrd(
        Opcode::SBufferLoadDwordx2,
        Operand::Sgpr(30),
        2,
        SmrdOffset::Imm(9),
    )
    .unwrap();
    b.smrd(
        Opcode::SBufferLoadDwordx4,
        Operand::Sgpr(32),
        2,
        SmrdOffset::Imm(12),
    )
    .unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    // UAV descriptor 0-based, unbounded.
    let w = cu
        .start_wave(WaveInit {
            workgroup: wg,
            exec: u64::MAX,
            sgprs: vec![(4, 0), (5, 0), (6, 0), (7, 0)],
            ..WaveInit::default()
        })
        .unwrap();
    let mut mem = FixedLatencyMemory::new(4096, 3);
    mem.load_words(0, &data);
    cu.run_to_completion(&mut mem).unwrap();

    assert_eq!(cu.wave(w).sgpr(20).unwrap(), data[0]);
    assert_eq!(cu.wave(w).sgpr(22).unwrap(), data[1]);
    assert_eq!(cu.wave(w).sgpr(23).unwrap(), data[2]);
    for i in 0..4 {
        assert_eq!(cu.wave(w).sgpr(24 + i).unwrap(), data[4 + i as usize]);
    }
    assert_eq!(cu.wave(w).sgpr(28).unwrap(), data[8]);
    assert_eq!(cu.wave(w).sgpr(30).unwrap(), data[9]);
    assert_eq!(cu.wave(w).sgpr(31).unwrap(), data[10]);
    for i in 0..4 {
        assert_eq!(cu.wave(w).sgpr(32 + i).unwrap(), data[12 + i as usize]);
    }
}

#[test]
fn buffer_wide_loads_and_stores() {
    let mut b = KernelBuilder::new("wide");
    b.sgprs(64).vgprs(16);
    b.vop1(Opcode::VMovB32, 1, Operand::IntConst(0)).unwrap(); // vaddr
    b.mubuf(Opcode::BufferLoadDwordx4, 4, 1, 4, Operand::IntConst(0), 0)
        .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.mubuf(
        Opcode::BufferStoreDwordx4,
        4,
        1,
        4,
        Operand::IntConst(0),
        64,
    )
    .unwrap();
    b.mubuf(Opcode::BufferLoadDwordx2, 8, 1, 4, Operand::IntConst(0), 8)
        .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.mubuf(
        Opcode::BufferStoreDwordx2,
        8,
        1,
        4,
        Operand::IntConst(0),
        96,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(WaveInit {
        workgroup: wg,
        exec: 1, // single lane: plain copy
        sgprs: vec![(4, 0), (5, 0), (6, 0), (7, 0)],
        ..WaveInit::default()
    })
    .unwrap();
    let mut mem = FixedLatencyMemory::new(4096, 2);
    mem.load_words(0, &[10, 11, 12, 13]);
    cu.run_to_completion(&mut mem).unwrap();
    assert_eq!(mem.read_words(64, 4), vec![10, 11, 12, 13]);
    assert_eq!(mem.read_words(96, 2), vec![12, 13]);
}

#[test]
fn tbuffer_formats_roundtrip() {
    let mut b = KernelBuilder::new("tbuf");
    b.sgprs(64).vgprs(16);
    b.vop1(Opcode::VMovB32, 1, Operand::IntConst(0)).unwrap();
    b.mtbuf(
        Opcode::TbufferLoadFormatXyzw,
        4,
        1,
        4,
        Operand::IntConst(0),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.mtbuf(
        Opcode::TbufferStoreFormatXy,
        4,
        1,
        4,
        Operand::IntConst(0),
        128,
    )
    .unwrap();
    b.mtbuf(
        Opcode::TbufferStoreFormatX,
        7,
        1,
        4,
        Operand::IntConst(0),
        160,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(WaveInit {
        workgroup: wg,
        exec: 1,
        sgprs: vec![(4, 0), (5, 0), (6, 0), (7, 0)],
        ..WaveInit::default()
    })
    .unwrap();
    let mut mem = FixedLatencyMemory::new(4096, 2);
    mem.load_words(0, &[21, 22, 23, 24]);
    cu.run_to_completion(&mut mem).unwrap();
    assert_eq!(mem.read_words(128, 2), vec![21, 22]);
    assert_eq!(mem.read_words(160, 1), vec![24]);
}

#[test]
fn lds_atomic_ops_golden_values() {
    // lane0 runs each atomic against LDS[0] initialised by a write.
    let case = |op: Opcode, initial: u32, operand: u32| -> u32 {
        let mut b = KernelBuilder::new("lds_atomic");
        b.sgprs(32).vgprs(8).lds_bytes(64);
        b.vop1(Opcode::VMovB32, 1, Operand::IntConst(0)).unwrap(); // addr
        b.vop1(Opcode::VMovB32, 2, Operand::Literal(initial))
            .unwrap();
        b.ds_write(Opcode::DsWriteB32, 1, 2, 0).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.vop1(Opcode::VMovB32, 3, Operand::Literal(operand))
            .unwrap();
        b.ds_write(op, 1, 3, 0).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.ds_read(Opcode::DsReadB32, 4, 1, 0).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();
        let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
        let wg = cu.add_workgroup();
        let w = cu
            .start_wave(WaveInit {
                workgroup: wg,
                exec: 1,
                ..WaveInit::default()
            })
            .unwrap();
        let mut mem = FixedLatencyMemory::new(64, 1);
        cu.run_to_completion(&mut mem).unwrap();
        cu.wave(w).vgpr(4, 0).unwrap()
    };
    assert_eq!(case(Opcode::DsAddU32, 10, 5), 15);
    assert_eq!(case(Opcode::DsSubU32, 10, 4), 6);
    assert_eq!(case(Opcode::DsMinU32, 10, 5), 5);
    assert_eq!(case(Opcode::DsMaxU32, 10, 5), 10);
    assert_eq!(case(Opcode::DsMinI32, 10, (-5i32) as u32), (-5i32) as u32);
    assert_eq!(case(Opcode::DsMaxI32, 10, (-5i32) as u32), 10);
    assert_eq!(case(Opcode::DsAndB32, 0xff, 0x0f), 0x0f);
    assert_eq!(case(Opcode::DsOrB32, 0xf0, 0x0f), 0xff);
    assert_eq!(case(Opcode::DsXorB32, 0xff, 0x0f), 0xf0);
}

#[test]
fn every_supported_opcode_has_coverage_potential() {
    // Not a semantics check — a completeness tripwire: the supported set
    // must stay ≥ the paper's 156 instructions, and every opcode must
    // expose consistent metadata (exercised here so additions can't forget
    // the tables).
    assert!(Opcode::ALL.len() >= 156);
    for &op in Opcode::ALL {
        let _ = (
            op.mnemonic(),
            op.unit(),
            op.category(),
            op.data_type(),
            op.src_count(),
            op.dst_width(),
            op.src_width(),
        );
    }
}
