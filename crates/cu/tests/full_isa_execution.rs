//! Every supported opcode must *execute* on the compute unit — a single
//! program touching all 208 instructions, mirroring the paper's claim of
//! "156 fully usable instructions" validated on hardware.

use scratch_asm::KernelBuilder;
use scratch_cu::{ComputeUnit, CuConfig, FixedLatencyMemory, WaveInit};
use scratch_isa::{Fields, Format, Instruction, Opcode, Operand, SmrdOffset};

/// Build one safely-executable instruction for `op`.
fn instance(op: Opcode) -> Option<Instruction> {
    let f = match op.format() {
        Format::Sop2 => Fields::Sop2 {
            sdst: Operand::Sgpr(40),
            ssrc0: Operand::Sgpr(42),
            ssrc1: Operand::Sgpr(44),
        },
        Format::Sopk => Fields::Sopk {
            sdst: Operand::Sgpr(40),
            simm16: 3,
        },
        Format::Sop1 => Fields::Sop1 {
            sdst: Operand::Sgpr(40),
            ssrc0: Operand::Sgpr(42),
        },
        Format::Sopc => Fields::Sopc {
            ssrc0: Operand::Sgpr(42),
            ssrc1: Operand::Sgpr(44),
        },
        Format::Sopp => match op {
            // s_endpgm terminates; the harness appends it once at the end.
            Opcode::SEndpgm => return None,
            // Branches with offset 0 fall through harmlessly.
            _ => Fields::Sopp { simm16: 0 },
        },
        Format::Smrd => Fields::Smrd {
            sdst: Operand::Sgpr(46),
            sbase: 2,
            offset: SmrdOffset::Imm(0),
        },
        Format::Vop2 => Fields::Vop2 {
            vdst: 8,
            src0: Operand::Vgpr(1),
            vsrc1: 2,
        },
        Format::Vop1 => Fields::Vop1 {
            vdst: 8,
            src0: Operand::Vgpr(1),
        },
        Format::Vopc => Fields::Vopc {
            src0: Operand::Vgpr(1),
            vsrc1: 2,
        },
        Format::Vop3a | Format::Vop3b => Fields::Vop3a {
            vdst: 8,
            src0: Operand::Vgpr(1),
            src1: Operand::Vgpr(2),
            src2: (op.src_count() == 3).then_some(Operand::Vgpr(3)),
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Format::Ds => Fields::Ds {
            vdst: 8,
            addr: 4, // v4 holds 0: a valid LDS byte address
            data0: 1,
            data1: 2,
            offset0: 0,
            offset1: 1,
            gds: false,
        },
        Format::Mubuf => Fields::Mubuf {
            vdata: 8,
            vaddr: 5, // v5 holds small offsets
            srsrc: 4,
            soffset: Operand::IntConst(0),
            offset: 0,
            offen: true,
            idxen: false,
            glc: false,
        },
        Format::Mtbuf => Fields::Mtbuf {
            vdata: 8,
            vaddr: 5,
            srsrc: 4,
            soffset: Operand::IntConst(0),
            offset: 0,
            offen: true,
            idxen: false,
            dfmt: 4,
            nfmt: 4,
        },
    };
    Some(Instruction::new(op, f).expect("constructible instance"))
}

#[test]
fn all_supported_opcodes_execute() {
    let mut b = KernelBuilder::new("full_isa");
    b.sgprs(64).vgprs(16).lds_bytes(256);
    let mut emitted = 0usize;
    for &op in Opcode::ALL {
        if let Some(inst) = instance(op) {
            b.push(inst);
            // Quiesce outstanding memory ops so counters never overflow.
            if op.is_memory() {
                b.waitcnt(Some(0), Some(0)).unwrap();
            }
            emitted += 1;
        }
    }
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    assert_eq!(emitted, Opcode::ALL.len() - 1, "everything but s_endpgm");

    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(WaveInit {
        workgroup: wg,
        exec: u64::MAX,
        // s[2:3]: scalar-load base; s[4:7]: unbounded buffer descriptor;
        // source scalars hold benign small values.
        sgprs: vec![
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 0),
            (7, 0),
            (42, 7),
            (43, 0),
            (44, 3),
            (45, 0),
        ],
        vgprs: vec![
            (1, (0..64).map(|l| l + 1).collect()),
            (2, vec![2; 64]),
            (3, vec![1; 64]),
            (4, vec![0; 64]),
            (5, (0..64u32).map(|l| (l % 8) * 4).collect()),
        ],
    })
    .unwrap();
    let mut mem = FixedLatencyMemory::new(4096, 2);
    cu.run_to_completion(&mut mem)
        .expect("the full ISA program must run to completion");

    // Every opcode must appear in the dynamic histogram.
    let executed = cu.stats().executed_opcodes();
    for &op in Opcode::ALL {
        assert!(executed.contains(&op), "{} never executed", op.mnemonic());
    }
    assert_eq!(
        cu.stats().instructions as usize,
        Opcode::ALL.len() + {
            // one extra s_waitcnt per memory opcode
            Opcode::ALL.iter().filter(|o| o.is_memory()).count()
        }
    );
}

#[test]
fn full_isa_program_is_trim_neutral() {
    // Trimming the full-ISA program keeps everything: the trimmed
    // architecture equals the full architecture.
    let mut b = KernelBuilder::new("full_isa");
    b.sgprs(64).vgprs(16).lds_bytes(256);
    for &op in Opcode::ALL {
        if let Some(inst) = instance(op) {
            b.push(inst);
        }
    }
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let static_ops: std::collections::BTreeSet<Opcode> = kernel
        .instructions()
        .unwrap()
        .into_iter()
        .map(|(_, i)| i.opcode)
        .collect();
    assert_eq!(static_ops.len(), Opcode::ALL.len());
}
