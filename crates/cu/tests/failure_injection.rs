//! Failure injection: the compute unit must fail *cleanly* on broken
//! programs — runaway loops, barrier deadlocks, control flow escaping the
//! binary, and register over-reach — rather than hanging or corrupting
//! state.

use scratch_asm::{Kernel, KernelBuilder, KernelMeta};
use scratch_cu::{ComputeUnit, CuConfig, CuError, FixedLatencyMemory, WaveInit};
use scratch_isa::{Fields, Instruction, Opcode, Operand};

fn simple_init(workgroup: usize) -> WaveInit {
    WaveInit {
        workgroup,
        exec: u64::MAX,
        sgprs: vec![],
        vgprs: vec![],
    }
}

#[test]
fn infinite_loop_hits_cycle_limit() {
    let mut b = KernelBuilder::new("spin");
    b.sgprs(8).vgprs(1);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(0),
        Operand::Sgpr(0),
        Operand::IntConst(1),
    )
    .unwrap();
    b.branch(Opcode::SBranch, top);
    b.endpgm().unwrap(); // unreachable
    let kernel = b.finish().unwrap();

    let mut cu = ComputeUnit::new(
        CuConfig {
            cycle_limit: 10_000,
            ..CuConfig::default()
        },
        &kernel,
    )
    .unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(simple_init(wg)).unwrap();
    let mut mem = FixedLatencyMemory::new(0, 0);
    assert_eq!(
        cu.run_to_completion(&mut mem),
        Err(CuError::CycleLimit { limit: 10_000 })
    );
}

#[test]
fn barrier_deadlock_detected() {
    // Two waves in one workgroup; lane masking makes one exit before the
    // barrier, so the other can never be released.
    let mut b = KernelBuilder::new("deadlock");
    b.sgprs(16).vgprs(4);
    // if s16 (here: wg-relative role flag in s0) != 0 { endpgm }
    let barrier_path = b.new_label();
    b.sopc(Opcode::SCmpEqI32, Operand::Sgpr(0), Operand::IntConst(0))
        .unwrap();
    b.branch(Opcode::SCbranchScc1, barrier_path);
    b.endpgm().unwrap();
    b.bind(barrier_path).unwrap();
    b.sopp(Opcode::SBarrier, 0).unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(WaveInit {
        workgroup: wg,
        exec: u64::MAX,
        sgprs: vec![(0, 0)], // waits at the barrier
        vgprs: vec![],
    })
    .unwrap();
    cu.start_wave(WaveInit {
        workgroup: wg,
        exec: u64::MAX,
        sgprs: vec![(0, 1)], // exits immediately
        vgprs: vec![],
    })
    .unwrap();
    let mut mem = FixedLatencyMemory::new(0, 0);
    assert!(matches!(
        cu.run_to_completion(&mut mem),
        Err(CuError::Deadlock { .. })
    ));
}

#[test]
fn branch_escaping_binary_detected() {
    let mut b = KernelBuilder::new("escape");
    b.sgprs(8).vgprs(1);
    // Branch far beyond the end of the program.
    b.sopp(Opcode::SBranch, 500).unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(simple_init(wg)).unwrap();
    let mut mem = FixedLatencyMemory::new(0, 0);
    assert!(matches!(
        cu.run_to_completion(&mut mem),
        Err(CuError::PcOutOfRange { .. })
    ));
}

#[test]
fn falling_off_the_end_detected() {
    // A hand-built binary without s_endpgm (the builder refuses to make
    // one, so construct the kernel from raw words).
    let inst = Instruction::new(
        Opcode::SMovB32,
        Fields::Sop1 {
            sdst: Operand::Sgpr(0),
            ssrc0: Operand::IntConst(1),
        },
    )
    .unwrap();
    let kernel = Kernel::from_words("no_end", inst.encode().unwrap(), KernelMeta::default());
    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(simple_init(wg)).unwrap();
    let mut mem = FixedLatencyMemory::new(0, 0);
    assert!(matches!(
        cu.run_to_completion(&mut mem),
        Err(CuError::PcOutOfRange { .. })
    ));
}

#[test]
fn register_budget_violation_detected() {
    // Kernel metadata declares 4 SGPRs but the program touches s10.
    let mut b = KernelBuilder::new("overreach");
    b.sgprs(4).vgprs(1);
    b.sop1(Opcode::SMovB32, Operand::Sgpr(10), Operand::IntConst(1))
        .unwrap();
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
    let wg = cu.add_workgroup();
    cu.start_wave(simple_init(wg)).unwrap();
    let mut mem = FixedLatencyMemory::new(0, 0);
    assert!(matches!(
        cu.run_to_completion(&mut mem),
        Err(CuError::RegisterOutOfRange { .. })
    ));
}

#[test]
fn malformed_binary_rejected_at_load() {
    let kernel = Kernel::from_words("garbage", vec![0xffff_ffff, 0], KernelMeta::default());
    assert!(matches!(
        ComputeUnit::new(CuConfig::default(), &kernel),
        Err(CuError::Isa(_))
    ));
}

#[test]
fn errors_display_reasonably() {
    // Error messages are part of the public API surface.
    let cases: Vec<(CuError, &str)> = vec![
        (
            CuError::Trimmed {
                opcode: Opcode::VAddF32,
            },
            "v_add_f32",
        ),
        (
            CuError::MissingUnit {
                unit: scratch_isa::FuncUnit::Simf,
                opcode: Opcode::VMulF32,
            },
            "fpVALU",
        ),
        (CuError::Deadlock { cycle: 7 }, "7"),
        (CuError::CycleLimit { limit: 9 }, "9"),
        (CuError::TooManyWavefronts, "40"),
        (CuError::LdsOutOfRange { addr: 4, size: 2 }, "LDS"),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
    }
}
