//! Cycle-loop overhead of the always-on metrics plane.
//!
//! The whole point of `scratch-metrics` is that it never gets turned
//! off, so the cost of the per-decision stall accounting in the CU
//! scheduler (plus the per-dispatch registry flush) must be in the
//! noise: the tentpole acceptance bar is <2% versus the same run with
//! `SystemConfig::with_metrics(false)`. CI runs this in quick mode and
//! enforces a 5% ceiling via the `overhead_gate` test.
//!
//! Two workloads bracket the space: a dependency-light pure-ALU kernel
//! (worst case — almost every cycle is an issue decision, so the
//! accounting loop runs at peak frequency relative to useful work) and
//! the Matrix Add benchmark (realistic memory-bound mix). A third group
//! measures the raw instruments.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use scratch_asm::KernelBuilder;
use scratch_isa::{Opcode, Operand};
use scratch_kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch_metrics::{Histogram, Registry};
use scratch_system::{System, SystemConfig, SystemKind};

/// Straight-line integer ALU kernel: long enough that the issue loop
/// dominates, dependency-free so it issues every cycle.
fn alu_kernel() -> scratch_asm::Kernel {
    let mut b = KernelBuilder::new("alu_spin");
    b.vgprs(8).sgprs(24);
    for i in 0..200u16 {
        let dst = 1 + (i % 6) as u8;
        b.vop3a(
            Opcode::VMulLoI32,
            dst,
            Operand::Vgpr(0),
            Operand::IntConst(3),
            None,
        )
        .unwrap();
    }
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn run_alu(metrics: bool) -> u64 {
    let kernel = alu_kernel();
    let config = SystemConfig::preset(SystemKind::DcdPm)
        .with_workers(1)
        .with_metrics(metrics);
    let mut sys = System::new(config, &kernel).unwrap();
    let out = sys.alloc(1 << 16);
    sys.set_args(&[out as u32]);
    sys.dispatch([4, 1, 1]).unwrap();
    sys.report().cu_cycles
}

fn run_matrix_add(metrics: bool) -> u64 {
    let config = SystemConfig::preset(SystemKind::DcdPm)
        .with_workers(1)
        .with_metrics(metrics);
    MatrixAdd::new(32, false).run(config).unwrap().cu_cycles
}

fn cycle_loop_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_loop");
    group.sample_size(20);
    group.bench_function("alu_metrics_on", |b| b.iter(|| black_box(run_alu(true))));
    group.bench_function("alu_metrics_off", |b| b.iter(|| black_box(run_alu(false))));
    group.bench_function("matrix_add_metrics_on", |b| {
        b.iter(|| black_box(run_matrix_add(true)))
    });
    group.bench_function("matrix_add_metrics_off", |b| {
        b.iter(|| black_box(run_matrix_add(false)))
    });
    group.finish();
}

fn instruments(c: &mut Criterion) {
    let mut group = c.benchmark_group("instruments");
    group.sample_size(50).throughput(Throughput::Elements(1000));
    let registry = Registry::new();
    let counter = registry.counter("bench_counter_total", "bench");
    group.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
        });
    });
    let histogram = Histogram::new();
    group.bench_function("histogram_observe_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                histogram.observe(black_box(i * 37));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, cycle_loop_overhead, instruments);
criterion_main!(benches);
