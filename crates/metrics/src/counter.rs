//! Sharded monotonic counters and settable gauges.
//!
//! Counters are the hot-path instrument: engine workers bump them from
//! many threads at once, so the count is striped over [`SHARDS`]
//! cache-line-aligned atomics and each thread writes its own stripe.
//! Reads sum the stripes — reading is rare (scrapes), writing is not.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of stripes a [`Counter`] is sharded over.
pub const SHARDS: usize = 16;

/// One cache line worth of counter stripe; the alignment keeps two
/// threads' stripes from false-sharing a line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

/// Round-robin shard assignment: each thread gets a home stripe the first
/// time it touches any counter.
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    HOME.with(|h| *h)
}

/// A monotonically increasing counter.
///
/// Cloning is cheap and shares the underlying stripes, so the registry
/// can hand the same counter to many owners.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    shards: Arc<[Shard; SHARDS]>,
}

impl Counter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.shards[home_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (sum over stripes).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }
}

/// An instantaneous value (queue depth, IPC, occupancy percentage).
///
/// Stored as `f64` bits in one atomic: metrics like IPC are fractional,
/// and integral gauges lose nothing below 2^53.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// New gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_over_threads() {
        let c = Counter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn counter_clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(0.25);
        assert_eq!(g.get(), 2.75);
        g.dec();
        assert_eq!(g.get(), 1.75);
    }

    #[test]
    fn gauge_concurrent_incs_balance_decs() {
        let g = Gauge::new();
        thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(g.get(), 0.0);
    }
}
