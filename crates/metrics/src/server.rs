//! A minimal scrape endpoint over `std::net::TcpListener`.
//!
//! Serves `GET /metrics` (Prometheus text exposition v0.0.4) and
//! `GET /metrics.json` (the [`MetricsSnapshot`](crate::MetricsSnapshot)
//! serde model). One accept loop on a background thread, one request per
//! connection — scrapers poll at second granularity, so there is nothing
//! to be gained from a real HTTP stack here.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::{prometheus, Registry};

/// A running scrape endpoint. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// serve `registry` until shut down.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve(addr: impl ToSocketAddrs, registry: Registry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("scratch-metrics-server".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A misbehaving client must not wedge the loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = handle(stream, &registry);
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Read the request head and answer it.
fn handle(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    let mut buf = [0u8; 1024];
    let mut len = 0;
    // Read until the end of the header block (or the buffer fills — any
    // real scrape request head fits comfortably).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" | "/" => (
                "200 OK",
                prometheus::CONTENT_TYPE,
                prometheus::render(&registry.snapshot()),
            ),
            "/metrics.json" => (
                "200 OK",
                "application/json",
                serde_json::to_string(&registry.snapshot())
                    .map(|mut s| {
                        s.push('\n');
                        s
                    })
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}\n")),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
        }
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_text_json_and_404() {
        let registry = Registry::new();
        registry.counter("pings_total", "Pings").add(2);
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("text/plain; version=0.0.4"));
        assert!(text.contains("pings_total 2\n"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("pings_total"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }
}
