//! A minimal scrape endpoint over `std::net::TcpListener`.
//!
//! Serves `GET /metrics` (Prometheus text exposition v0.0.4) and
//! `GET /metrics.json` (the [`MetricsSnapshot`](crate::MetricsSnapshot)
//! serde model). One accept loop on a background thread, one request per
//! connection — scrapers poll at second granularity, so there is nothing
//! to be gained from a real HTTP stack here.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::{prometheus, Registry};

/// A running scrape endpoint. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// serve `registry` until shut down.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve(addr: impl ToSocketAddrs, registry: Registry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("scratch-metrics-server".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A misbehaving client must not wedge the loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = handle(stream, &registry);
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Read the request head and answer it. Every path through here answers
/// with a well-formed HTTP response and returns — a malformed, truncated,
/// oversized or slow-trickling request can close the connection early or
/// earn a 4xx, but never panics the accept loop.
fn handle(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(HeadError::TooLarge) => {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain",
                "request head too large\n",
            )
        }
        // The peer vanished mid-request (or trickled past the read
        // timeout) — nothing left to answer.
        Err(HeadError::Io(e)) => return Err(e),
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method.is_empty() || path.is_empty() {
        (
            "400 Bad Request",
            "text/plain",
            "malformed request line\n".to_owned(),
        )
    } else if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" | "/" => (
                "200 OK",
                prometheus::CONTENT_TYPE,
                prometheus::render(&registry.snapshot()),
            ),
            "/metrics.json" => (
                "200 OK",
                "application/json",
                serde_json::to_string(&registry.snapshot())
                    .map(|mut s| {
                        s.push('\n');
                        s
                    })
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}\n")),
            ),
            // Liveness probe: the accept loop answering at all is the
            // health signal, so a constant body is the honest answer.
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
        }
    };
    respond(&mut stream, status, content_type, &body)
}

/// Why the request head could not be read.
enum HeadError {
    /// The head outgrew the buffer without a `\r\n\r\n` terminator.
    TooLarge,
    /// The socket failed (peer closed mid-request, read timeout, …).
    Io(io::Error),
}

/// Read until the end of the header block. Short reads are the norm here
/// — a client may deliver the head one byte at a time across many TCP
/// segments — so keep reading until the terminator, EOF, or the cap.
fn read_head(stream: &mut TcpStream) -> Result<String, HeadError> {
    let mut buf = [0u8; 1024];
    let mut len = 0;
    loop {
        if len == buf.len() {
            return Err(HeadError::TooLarge);
        }
        let n = match stream.read(&mut buf[len..]) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HeadError::Io(e)),
        };
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf[..len]).into_owned())
}

/// Write a complete response, looping over short writes (`write_all`
/// retries partial writes and `Interrupted` internally).
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_text_json_and_404() {
        let registry = Registry::new();
        registry.counter("pings_total", "Pings").add(2);
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("text/plain; version=0.0.4"));
        assert!(text.contains("pings_total 2\n"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("pings_total"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    /// A request head trickling in one byte per write still parses: the
    /// read loop must tolerate arbitrarily short reads.
    #[test]
    fn partial_reads_still_answered() {
        let registry = Registry::new();
        registry.counter("pings_total", "Pings").inc();
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();

        let mut s = TcpStream::connect(server.addr()).unwrap();
        for b in b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n" {
            s.write_all(&[*b]).unwrap();
            s.flush().unwrap();
        }
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("pings_total 1\n"));

        server.shutdown();
    }

    /// A malformed request line earns a 400 (and the server survives to
    /// answer the next request); a non-GET method earns a 405.
    #[test]
    fn malformed_request_line_is_a_400() {
        let registry = Registry::new();
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET\r\n\r\n").unwrap(); // method, no path
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x00\xff\x00garbage\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        // One junk token parses as a method with no path.
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        // Still alive afterwards.
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }

    /// A head that never terminates within the buffer earns a 431 instead
    /// of being parsed as garbage (or wedging the loop).
    #[test]
    fn oversized_head_is_a_431() {
        let registry = Registry::new();
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();

        let mut s = TcpStream::connect(addr).unwrap();
        // Exactly the buffer size, no terminator: the server consumes it
        // all, then refuses (nothing left unread, so we get a clean FIN).
        let mut long = b"GET /".to_vec();
        long.resize(1024, b'x');
        s.write_all(&long).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");

        // A peer that connects and immediately hangs up is also survivable.
        drop(TcpStream::connect(addr).unwrap());
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }
}
