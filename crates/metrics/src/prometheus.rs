//! Prometheus text exposition format v0.0.4.
//!
//! One `# HELP` / `# TYPE` pair per family, one sample line per series;
//! histograms expand to cumulative `_bucket{le=...}` lines plus `_sum`
//! and `_count`, exactly as the format specifies. Escaping follows the
//! spec: `\\`, `\n` (and `\"` inside label values).

use crate::registry::Labels;
use crate::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot, SampleValue};

/// MIME type scrapers expect for this payload.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a `# HELP` text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double-quote and newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a gauge value. Prometheus values are floats; integral values
/// print without a fractional part, non-finite ones by their spec names.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Render `{a="x",b="y"}`, with `extra` appended last (used for `le`).
/// Empty label sets render as nothing.
fn fmt_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    let top = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    for (i, &c) in h.buckets.iter().enumerate().take(top) {
        cumulative += c;
        let le = fmt_labels(labels, Some(("le", &bucket_upper_bound(i).to_string())));
        out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
    }
    let inf = fmt_labels(labels, Some(("le", "+Inf")));
    out.push_str(&format!("{name}_bucket{inf} {}\n", h.count()));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        fmt_labels(labels, None),
        h.sum
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        fmt_labels(labels, None),
        h.count()
    ));
}

/// Render a whole snapshot as Prometheus text exposition v0.0.4.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        out.push_str(&format!(
            "# HELP {} {}\n",
            family.name,
            escape_help(&family.help)
        ));
        out.push_str(&format!(
            "# TYPE {} {}\n",
            family.name,
            family.kind.as_str()
        ));
        for series in &family.series {
            match &series.value {
                SampleValue::Counter(n) => {
                    out.push_str(&format!(
                        "{}{} {n}\n",
                        family.name,
                        fmt_labels(&series.labels, None)
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        family.name,
                        fmt_labels(&series.labels, None),
                        fmt_f64(*v)
                    ));
                }
                SampleValue::Histogram(h) => {
                    render_histogram(&mut out, &family.name, &series.labels, h);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn counters_and_gauges_render_flat() {
        let r = Registry::new();
        r.counter_with("jobs_total", "Jobs run", &[("pool", "a")])
            .add(3);
        r.gauge("depth", "Queue depth").set(2.0);
        let text = render(&r.snapshot());
        assert!(text.contains("# HELP jobs_total Jobs run\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total{pool=\"a\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", "Latency");
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(3); // bucket 2
        let text = render(&r.snapshot());
        assert!(text.contains("lat_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 4\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", "c", &[("k", "a\"b\\c\nd")]).inc();
        let text = render(&r.snapshot());
        assert!(text.contains("c_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn special_floats_use_spec_names() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(7.0), "7");
    }
}
