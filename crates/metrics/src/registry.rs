//! The metric registry: labeled families of counters, gauges and
//! histograms, and the plain-data [`MetricsSnapshot`] they export to.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Label set of one series: `(name, value)` pairs, kept sorted by name.
pub type Labels = Vec<(String, String)>;

/// Which instrument a metric family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Labels, Instrument>,
}

/// A collection of metric families. Cloning shares the underlying store;
/// registration is idempotent — asking for an existing `(name, labels)`
/// series returns a handle to the same instrument.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Family>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("families", &families.keys().collect::<Vec<_>>())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    out.sort();
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl Registry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut families = self.inner.lock().expect("registry poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind: make.kind(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == make.kind(),
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            make.kind().as_str()
        );
        family
            .series
            .entry(owned_labels(labels))
            .or_insert(make)
            .clone()
    }

    /// Counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Histogram with labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Consistent point-in-time copy of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            families: families
                .iter()
                .map(|(name, fam)| FamilySnapshot {
                    name: name.clone(),
                    help: fam.help.clone(),
                    kind: fam.kind,
                    series: fam
                        .series
                        .iter()
                        .map(|(labels, inst)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match inst {
                                Instrument::Counter(c) => SampleValue::Counter(c.get()),
                                Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                                Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One exported series: its labels and current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Sorted `(name, value)` label pairs.
    pub labels: Labels,
    /// The sampled value.
    pub value: SampleValue,
}

/// A sampled metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Distribution snapshot.
    Histogram(HistogramSnapshot),
}

/// One exported family: name, help, kind, and every series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Human help line.
    pub help: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// All series of this family, sorted by labels.
    pub series: Vec<SeriesSnapshot>,
}

/// Point-in-time image of a whole [`Registry`] — the serde model behind
/// both exporters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// The value of series `(name, labels)`, if present. Label order is
    /// irrelevant.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let want = owned_labels(labels);
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| s.labels == want)
            .map(|s| &s.value)
    }

    /// Counter value of `(name, labels)`.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)? {
            SampleValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// Gauge value of `(name, labels)`.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot of `(name, labels)`.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.get(name, labels)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter_with("requests_total", "Requests", &[("kind", "x")]);
        let b = r.counter_with("requests_total", "Requests", &[("kind", "x")]);
        a.inc();
        b.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("requests_total", &[("kind", "x")]), Some(2));
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter_with("m_total", "m", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("m_total", "m", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(
            r.snapshot().counter("m_total", &[("b", "2"), ("a", "1")]),
            Some(2)
        );
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m_total", "m");
        let _ = r.gauge("m_total", "m");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let _ = Registry::new().counter("0bad name", "m");
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c_total", "c").add(7);
        r.gauge("g", "g").set(1.5);
        r.histogram("h", "h").observe(42);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c_total", &[]), Some(7));
        assert_eq!(snap.gauge("g", &[]), Some(1.5));
        assert_eq!(snap.histogram("h", &[]).unwrap().count(), 1);
        assert_eq!(snap.families.len(), 3);
    }
}
