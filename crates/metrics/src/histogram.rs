//! Log-bucketed latency histograms.
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly `0`,
//! bucket `i ≥ 1` holds `[2^(i-1), 2^i − 1]`. Sixty-five buckets cover
//! the whole `u64` range, every sample lands in exactly one bucket
//! (the counts *tile* the sample set — the same exactness discipline the
//! trace crate's attribution engine property-tests), and merging two
//! histograms is plain element-wise addition, so counts are preserved
//! exactly no matter how shards are combined.
//!
//! Quantiles are answered from the bucket containing the nearest-rank
//! order statistic; the estimate is the bucket's upper bound, which by
//! construction lies in the same bucket as the true quantile — "within
//! one bucket boundary" is the accuracy contract.

use serde::{Deserialize, Serialize};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Largest value bucket `i` holds.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// A concurrent log-bucketed histogram.
///
/// Clones share the underlying buckets. Observation is two relaxed
/// `fetch_add`s; reading produces an immutable [`HistogramSnapshot`].
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data image of a [`Histogram`]: per-bucket counts plus the exact
/// sample sum. The serde form is what lands in JSONL snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Sample counts, one per bucket ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples (sum of bucket counts — exact by the tiling
    /// invariant).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the observed values, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Fold `other` into `self`: element-wise bucket addition. Counts are
    /// preserved exactly, which makes the merge associative and
    /// commutative (property-tested in `tests/histogram_prop.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.buckets.resize(BUCKETS, 0);
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`; `None` when
    /// empty. The estimate is the upper bound of the bucket holding the
    /// rank-`⌈q·n⌉` order statistic, so it shares a bucket with the true
    /// quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        None
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn observe_count_sum() {
        let h = Histogram::new();
        for v in [0, 1, 1, 7, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1009);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1023]
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        // True p50 is 50 (bucket [32,63]); the estimate is that bucket's
        // upper bound.
        assert_eq!(s.p50(), Some(63));
        assert_eq!(s.p99(), Some(127)); // 99 ∈ [64,127]
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(127));
        assert_eq!(HistogramSnapshot::default().p50(), None);
    }

    #[test]
    fn merge_preserves_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(5);
        a.observe(9);
        b.observe(0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 14);
    }
}
