//! # scratch-metrics
//!
//! Always-on aggregate counters for the SCRATCH simulators, with a
//! Prometheus/JSON exposition layer.
//!
//! The paper's whole evaluation (§4, Figs. 4/7) is driven by aggregate
//! hardware counters — instruction mixes, cycles, functional-unit
//! occupancy — and MIAOW-class soft GPUs are characterised in exactly
//! those terms. `scratch-trace` (the event-granular attribution engine)
//! answers *why* a particular run behaved as it did, but is far too heavy
//! to leave enabled under sustained load. This crate is the complementary
//! plane: cheap enough that it never gets turned off.
//!
//! * [`Counter`] — monotonic, sharded across cache lines so concurrent
//!   engine workers never contend on one atomic;
//! * [`Gauge`] — a settable instantaneous value (queue depths, IPC);
//! * [`Histogram`] — power-of-two log-bucketed latency distribution with
//!   an exact-count-preserving merge and p50/p95/p99 queries;
//! * [`Registry`] — labeled families of the above, snapshotting into the
//!   serde-modelled [`MetricsSnapshot`];
//! * [`render`](prometheus::render) — Prometheus text exposition v0.0.4;
//! * [`MetricsServer`] — a `std::net::TcpListener` scrape endpoint;
//! * [`append_snapshot`](jsonl::append_snapshot) — JSONL snapshots for
//!   offline diffing.
//!
//! # Examples
//!
//! ```
//! use scratch_metrics::Registry;
//!
//! let registry = Registry::new();
//! let dispatches = registry.counter("demo_dispatches_total", "Kernels dispatched");
//! let latency = registry.histogram("demo_latency_cycles", "Dispatch latency");
//! dispatches.inc();
//! latency.observe(420);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo_dispatches_total", &[]), Some(1));
//! let text = scratch_metrics::prometheus::render(&snap);
//! assert!(text.contains("# TYPE demo_dispatches_total counter"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod jsonl;
pub mod prometheus;
pub mod registry;
pub mod server;

pub use counter::{Counter, Gauge};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    FamilySnapshot, Labels, MetricKind, MetricsSnapshot, Registry, SampleValue, SeriesSnapshot,
};
pub use server::MetricsServer;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Runtime layers (engine, system, CU
/// aggregates) register here by default so one scrape endpoint sees the
/// whole process; tests that need isolation construct their own
/// [`Registry`].
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}
