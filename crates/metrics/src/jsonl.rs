//! JSONL snapshot export: one [`MetricsSnapshot`] per line, appended to a
//! file, for offline diffing of runs (`jq`-friendly, like the trace
//! crate's event sink).

use std::fs::OpenOptions;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::MetricsSnapshot;

/// Append one snapshot as a single JSON line, creating the file if
/// needed.
///
/// # Errors
///
/// File-system errors; serialization failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn append_snapshot(path: &Path, snapshot: &MetricsSnapshot) -> io::Result<()> {
    let line = serde_json::to_string(snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{line}")
}

/// Read every snapshot from a JSONL file written by [`append_snapshot`].
///
/// # Errors
///
/// File-system errors; malformed lines surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_snapshots(path: &Path) -> io::Result<Vec<MetricsSnapshot>> {
    let file = std::fs::File::open(path)?;
    BufReader::new(file)
        .lines()
        .map(|line| {
            serde_json::from_str(&line?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn snapshots_round_trip_through_jsonl() {
        let registry = Registry::new();
        registry.counter("runs_total", "Runs").inc();
        registry.histogram("lat", "Latency").observe(17);
        let first = registry.snapshot();
        registry.counter("runs_total", "Runs").inc();
        let second = registry.snapshot();

        let dir = std::env::temp_dir().join("scratch-metrics-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snap-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_snapshot(&path, &first).unwrap();
        append_snapshot(&path, &second).unwrap();

        let back = read_snapshots(&path).unwrap();
        assert_eq!(back, vec![first, second]);
        std::fs::remove_file(&path).unwrap();
    }
}
