//! Golden-fixture test for the Prometheus text exposition and serde
//! round-trips of the snapshot model.
//!
//! The registry snapshots deterministically (families sorted by name,
//! series by label set), so the rendered exposition of a fixed workload
//! is byte-stable and can be pinned as a golden document.

use scratch_metrics::{prometheus, MetricsSnapshot, Registry};

/// A small registry exercising every metric kind, label escaping and the
/// cumulative-bucket expansion.
fn fixture() -> Registry {
    let r = Registry::new();
    r.counter_with("demo_jobs_total", "Jobs run", &[("pool", "dispatch")])
        .add(7);
    r.counter_with("demo_jobs_total", "Jobs run", &[("pool", "fuzz")])
        .add(2);
    r.gauge("demo_queue_depth", "Jobs waiting right now")
        .set(1.5);
    r.gauge_with(
        "demo_occupancy_ratio",
        "Busy fraction",
        &[("unit", "iVALU")],
    )
    .set(0.25);
    let h = r.histogram("demo_latency_cycles", "Dispatch latency");
    h.observe(0);
    h.observe(1);
    h.observe(3);
    h.observe(900);
    r.counter_with(
        "demo_escape_total",
        "Help with \\ and\nnewline",
        &[("k", "a\"b")],
    )
    .inc();
    r
}

const GOLDEN: &str = "\
# HELP demo_escape_total Help with \\\\ and\\nnewline
# TYPE demo_escape_total counter
demo_escape_total{k=\"a\\\"b\"} 1
# HELP demo_jobs_total Jobs run
# TYPE demo_jobs_total counter
demo_jobs_total{pool=\"dispatch\"} 7
demo_jobs_total{pool=\"fuzz\"} 2
# HELP demo_latency_cycles Dispatch latency
# TYPE demo_latency_cycles histogram
demo_latency_cycles_bucket{le=\"0\"} 1
demo_latency_cycles_bucket{le=\"1\"} 2
demo_latency_cycles_bucket{le=\"3\"} 3
demo_latency_cycles_bucket{le=\"7\"} 3
demo_latency_cycles_bucket{le=\"15\"} 3
demo_latency_cycles_bucket{le=\"31\"} 3
demo_latency_cycles_bucket{le=\"63\"} 3
demo_latency_cycles_bucket{le=\"127\"} 3
demo_latency_cycles_bucket{le=\"255\"} 3
demo_latency_cycles_bucket{le=\"511\"} 3
demo_latency_cycles_bucket{le=\"1023\"} 4
demo_latency_cycles_bucket{le=\"+Inf\"} 4
demo_latency_cycles_sum 904
demo_latency_cycles_count 4
# HELP demo_occupancy_ratio Busy fraction
# TYPE demo_occupancy_ratio gauge
demo_occupancy_ratio{unit=\"iVALU\"} 0.25
# HELP demo_queue_depth Jobs waiting right now
# TYPE demo_queue_depth gauge
demo_queue_depth 1.5
";

#[test]
fn exposition_matches_the_golden_document() {
    let rendered = prometheus::render(&fixture().snapshot());
    // Compare line-by-line first for a readable failure, then the whole
    // document so no extra lines slip through.
    for (i, (got, want)) in rendered.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(got, want, "line {}", i + 1);
    }
    assert_eq!(rendered, GOLDEN);
}

#[test]
fn exposition_is_deterministic() {
    let a = prometheus::render(&fixture().snapshot());
    let b = prometheus::render(&fixture().snapshot());
    assert_eq!(a, b);
}

#[test]
fn snapshot_round_trips_through_json() {
    let snap = fixture().snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    // The round-tripped snapshot renders the identical exposition.
    assert_eq!(prometheus::render(&back), GOLDEN);
    // Lookup helpers still work on the deserialized form.
    assert_eq!(
        back.counter("demo_jobs_total", &[("pool", "fuzz")]),
        Some(2)
    );
    assert_eq!(back.gauge("demo_queue_depth", &[]), Some(1.5));
    assert_eq!(
        back.histogram("demo_latency_cycles", &[])
            .map(|h| h.count()),
        Some(4)
    );
}
