//! The CI overhead gate: the always-on metrics plane must cost < 5% of
//! the simulator's cycle loop (the design target is < 2%; the gate
//! leaves headroom for shared-runner noise).
//!
//! `#[ignore]`d by default — wall-clock assertions do not belong in the
//! default test run. The `metrics-overhead` CI job executes it with
//! `cargo test -p scratch-metrics --release -- --ignored overhead`.

use std::time::Instant;

use scratch_asm::KernelBuilder;
use scratch_isa::{Opcode, Operand};
use scratch_system::{System, SystemConfig, SystemKind};

/// Dependency-free integer ALU kernel — the worst case for metrics
/// overhead because nearly every cycle is an issue decision.
fn alu_kernel() -> scratch_asm::Kernel {
    let mut b = KernelBuilder::new("alu_spin");
    b.vgprs(8).sgprs(24);
    for i in 0..200u16 {
        let dst = 1 + (i % 6) as u8;
        b.vop3a(
            Opcode::VMulLoI32,
            dst,
            Operand::Vgpr(0),
            Operand::IntConst(3),
            None,
        )
        .unwrap();
    }
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn run_once(kernel: &scratch_asm::Kernel, metrics: bool) -> u64 {
    let config = SystemConfig::preset(SystemKind::DcdPm)
        .with_workers(1)
        .with_metrics(metrics);
    let mut sys = System::new(config, kernel).unwrap();
    let out = sys.alloc(1 << 16);
    sys.set_args(&[out as u32]);
    sys.dispatch([8, 1, 1]).unwrap();
    sys.report().cu_cycles
}

/// Median wall time of `reps` runs, in nanoseconds.
fn median_nanos(kernel: &scratch_asm::Kernel, metrics: bool, reps: usize) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(run_once(kernel, metrics));
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
#[ignore = "wall-clock gate; run by the metrics-overhead CI job"]
fn overhead_stays_under_the_gate() {
    let kernel = alu_kernel();
    // Warm up allocators and caches on both paths.
    run_once(&kernel, true);
    run_once(&kernel, false);

    let reps = 15;
    let on = median_nanos(&kernel, true, reps);
    let off = median_nanos(&kernel, false, reps);
    let overhead = on as f64 / off as f64 - 1.0;
    println!(
        "metrics on {on} ns, off {off} ns, overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "metrics overhead {:.2}% exceeds the 5% gate (on {on} ns vs off {off} ns)",
        overhead * 100.0
    );
}

#[test]
fn metrics_do_not_change_simulated_cycles() {
    let kernel = alu_kernel();
    assert_eq!(run_once(&kernel, true), run_once(&kernel, false));
}

fn run_once_profiled(kernel: &scratch_asm::Kernel, profile: bool) -> u64 {
    let config = SystemConfig::preset(SystemKind::DcdPm)
        .with_workers(1)
        .with_profile(profile);
    let mut sys = System::new(config, kernel).unwrap();
    let out = sys.alloc(1 << 16);
    sys.set_args(&[out as u32]);
    sys.dispatch([8, 1, 1]).unwrap();
    sys.report().cu_cycles
}

/// Median wall time of `reps` profiled/unprofiled runs, in nanoseconds.
fn median_nanos_profiled(kernel: &scratch_asm::Kernel, profile: bool, reps: usize) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(run_once_profiled(kernel, profile));
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The same gate for the execution profiler (per-PC retire counters):
/// within 5% wall-clock of an unprofiled run, and — checked always, not
/// just in the gate job — bit-identical simulated cycles either way.
#[test]
#[ignore = "wall-clock gate; run by the metrics-overhead CI job"]
fn profiling_overhead_stays_under_the_gate() {
    let kernel = alu_kernel();
    run_once_profiled(&kernel, true);
    run_once_profiled(&kernel, false);

    let reps = 15;
    let on = median_nanos_profiled(&kernel, true, reps);
    let off = median_nanos_profiled(&kernel, false, reps);
    let overhead = on as f64 / off as f64 - 1.0;
    println!(
        "profiler on {on} ns, off {off} ns, overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "profiler overhead {:.2}% exceeds the 5% gate (on {on} ns vs off {off} ns)",
        overhead * 100.0
    );
}

/// Profiling is purely observational: identical cycle counts with the
/// per-PC counters on and off (cheap, so part of the default run).
#[test]
fn profiling_never_changes_cycles() {
    let kernel = alu_kernel();
    assert_eq!(
        run_once_profiled(&kernel, false),
        run_once_profiled(&kernel, true),
        "enabling the profiler changed the simulated cycle count"
    );
}
