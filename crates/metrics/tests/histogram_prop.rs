//! Property tests for the log-bucketed histogram: the buckets tile the
//! `u64` sample space exactly, merging is associative and commutative,
//! and quantile estimates always share a bucket with the true
//! order-statistic they approximate.

use proptest::prelude::*;

use scratch_metrics::histogram::{bucket_index, bucket_upper_bound, Histogram, BUCKETS};
use scratch_metrics::HistogramSnapshot;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix small latencies (the common case) with arbitrary u64s so both
    // ends of the bucket range are exercised.
    let sample = prop_oneof![0u64..64, 0u64..100_000, any::<u64>()];
    prop::collection::vec(sample, 0..64)
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Every value lands in exactly one bucket, and that bucket's range
    /// contains it: the bucket counts *tile* the sample set, so the
    /// total count is exact (no sample dropped, none double-counted).
    #[test]
    fn buckets_tile_the_sample_space(samples in arb_samples()) {
        for &v in &samples {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS, "{v} -> bucket {i}");
            prop_assert!(v <= bucket_upper_bound(i), "{v} above bucket {i}");
            if i > 0 {
                prop_assert!(
                    v > bucket_upper_bound(i - 1),
                    "{v} also fits bucket {}", i - 1
                );
            }
        }
        let snap = snapshot_of(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(
            snap.sum,
            samples.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        );
    }

    /// Merging snapshots is element-wise addition, hence commutative and
    /// associative — shard-merge order can never change the result.
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ab;
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // The merged snapshot equals observing the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// The quantile estimate is the upper bound of the bucket holding the
    /// nearest-rank order statistic — i.e. it is within one bucket
    /// boundary of the true quantile.
    #[test]
    fn quantile_shares_a_bucket_with_the_true_order_statistic(
        samples in prop::collection::vec(prop_oneof![0u64..64, any::<u64>()], 1..64),
        q in (0u32..=1000).prop_map(|permille| f64::from(permille) / 1000.0),
    ) {
        let snap = snapshot_of(&samples);
        let est = snap.quantile(q).expect("non-empty");

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];

        prop_assert_eq!(
            bucket_index(est),
            bucket_index(truth),
            "estimate {} and true quantile {} in different buckets", est, truth
        );
        prop_assert_eq!(est, bucket_upper_bound(bucket_index(truth)));
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.p50(), None);
    assert_eq!(snap.mean(), None);
}
