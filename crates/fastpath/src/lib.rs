//! # scratch-fastpath
//!
//! A block-compiled *functional* execution tier for SCRATCH kernels — the
//! fast half of the functional/timing split.
//!
//! The cycle simulator (`scratch-cu`) interprets every instruction inside a
//! full pipeline model: fetch arbitration, scoreboards, functional-unit
//! occupancy, `s_waitcnt` counters. That fidelity is the point of the
//! paper's timing experiments, but it caps throughput for callers that only
//! need architectural results (differential fuzzing, serving jobs without
//! cycle budgets, output-only batch runs).
//!
//! This crate pre-translates a kernel **once** into basic blocks of
//! straight-line Rust closures:
//!
//! * [`translate`] decodes the binary, finds block leaders (branch targets,
//!   fall-throughs, post-barrier/post-endpgm successors) and compiles every
//!   instruction into a boxed closure over `(Wavefront, LDS, Memory)`.
//!   Pure lanewise vector ALU ops and vector compares get specialised
//!   closures with their operand shape ([`scratch_cu::func::VecOps`])
//!   resolved at translation time; everything else falls back to the shared
//!   interpreter entry point [`scratch_cu::func::execute`], so both tiers
//!   execute identical semantics by construction.
//! * [`run_workgroup`] drives the compiled [`Program`] per wavefront over
//!   the wave's architectural state (exec-mask aware — inactive lanes are
//!   skipped exactly as the interpreter skips them), round-robining the
//!   workgroup's waves between barriers like the reference interpreter.
//!
//! Trimmed-architecture enforcement is preserved: opcodes outside the
//! configured [`scratch_cu::TrimSet`] (or needing a functional unit the
//! configuration does not instantiate) compile into *error closures* that
//! raise [`CuError::Trimmed`] / [`CuError::MissingUnit`] only when actually
//! executed — the same issue-time semantics as the pipeline.
//!
//! The tier is *functional only*: it reports dynamic instruction counts
//! (identical to the pipeline's, since both issue the same dynamic stream)
//! but no cycles. `scratch-system` wires it up behind
//! `ExecMode::{Fast, FastWithTiming}` and falls back to the cycle pipeline
//! for traced or fault-injected runs, which need the pipeline's machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod run;
mod translate;

pub use run::{run_workgroup, FastStats, Fuel, WaveSlot};
pub use translate::{translate, BlockProfile, Program};

pub use scratch_cu::CuError;
