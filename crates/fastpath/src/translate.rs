//! Kernel → basic-block translation.
//!
//! Decodes the binary once, splits it at block leaders and compiles each
//! instruction into a closure. Control flow is resolved at translation
//! time into block-id targets; a target that does not land on an
//! instruction start becomes an [`Target::Invalid`] edge that raises
//! [`CuError::PcOutOfRange`] only if control actually reaches it — the
//! same lazy failure the pipeline's fetch stage produces.

use scratch_asm::{Kernel, KernelMeta};
use scratch_cu::func::{self, VecOps};
use scratch_cu::{CuConfig, CuError, Memory, Wavefront};
use scratch_isa::{Fields, FuncUnit, Instruction, Opcode, Operand, WAVEFRONT_SIZE};

/// A compiled instruction body: closure over the wave's architectural
/// state, the workgroup's LDS and global memory.
pub(crate) type OpFn =
    Box<dyn Fn(&mut Wavefront, &mut [u32], &mut dyn Memory) -> Result<(), CuError> + Send + Sync>;

/// One compiled non-control-flow instruction.
pub(crate) struct Op {
    pub(crate) run: OpFn,
    /// Specialised closure (`true`) or interpreter fallback (`false`).
    pub(crate) compiled: bool,
}

/// A control-flow edge, resolved at translation time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Target {
    /// Edge to another basic block.
    Block(usize),
    /// Edge to a word offset that is not an instruction start (or lies
    /// outside the binary): taking it raises `PcOutOfRange` with this pc.
    Invalid(usize),
}

/// Branch condition of the six SOPP conditional branches.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cond {
    Scc0,
    Scc1,
    Vccz,
    Vccnz,
    Execz,
    Execnz,
}

impl Cond {
    pub(crate) fn eval(self, wave: &Wavefront) -> bool {
        match self {
            Cond::Scc0 => !wave.scc,
            Cond::Scc1 => wave.scc,
            Cond::Vccz => wave.vcc == 0,
            Cond::Vccnz => wave.vcc != 0,
            Cond::Execz => wave.exec == 0,
            Cond::Execnz => wave.exec != 0,
        }
    }
}

/// How a basic block ends.
pub(crate) enum Terminator {
    /// Fall through to the next block (no instruction — the block was
    /// split because its successor is a branch target).
    Fall(Target),
    /// `s_branch`.
    Jump(Target),
    /// One of the six conditional branches.
    Branch {
        cond: Cond,
        taken: Target,
        fall: Target,
    },
    /// `s_barrier`: park the wave, continue at the target once the whole
    /// workgroup has arrived.
    Barrier(Target),
    /// `s_endpgm`.
    End,
}

/// One basic block: straight-line compiled ops plus a terminator.
pub(crate) struct Block {
    /// Word offset of the first instruction.
    pub(crate) start: usize,
    pub(crate) ops: Vec<Op>,
    /// (word offset, opcode) of each body op, in `ops` order — the static
    /// view the continuous profiler multiplies by dispatch counts.
    pub(crate) op_meta: Vec<(u32, Opcode)>,
    pub(crate) term: Terminator,
    /// (word offset, opcode) of the terminator *instruction* (absent for
    /// [`Terminator::Fall`], which has none).
    pub(crate) term_meta: Option<(u32, Opcode)>,
    /// Issue-time trim/unit error of the terminator *instruction* (absent
    /// for [`Terminator::Fall`], which has no instruction). Raised when
    /// the terminator executes, like every other issue-time check.
    pub(crate) term_err: Option<CuError>,
}

/// Static profile of one translated basic block: its leader offset plus
/// the (pc, opcode) pairs of every instruction one dispatch issues.
///
/// Multiplying by [`FastStats::block_dispatches`](crate::FastStats) turns
/// the fast tier's block counters into the same per-PC retire histogram
/// the cycle pipeline collects directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// Word offset of the block's first instruction.
    pub start: u32,
    /// (word offset, opcode) of each straight-line body instruction.
    pub ops: Vec<(u32, Opcode)>,
    /// (word offset, opcode) of the terminator instruction; `None` for
    /// instruction-free fall-through blocks.
    pub term: Option<(u32, Opcode)>,
}

impl BlockProfile {
    /// Instructions one dispatch of this block issues.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.ops.len() as u64 + u64::from(self.term.is_some())
    }
}

/// A kernel translated into dispatchable basic blocks.
///
/// Holds the dispatch table (`blocks`, keyed by block id), the entry edge
/// and a copy of the kernel's launch metadata. Translation is deterministic:
/// translating the same kernel against the same configuration twice yields
/// the same block structure, so per-block dispatch counts are reproducible
/// run to run.
pub struct Program {
    pub(crate) blocks: Vec<Block>,
    pub(crate) entry: Target,
    meta: KernelMeta,
}

impl Program {
    /// Number of basic blocks in the dispatch table.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Launch metadata of the translated kernel.
    #[must_use]
    pub fn meta(&self) -> &KernelMeta {
        &self.meta
    }

    /// LDS words a workgroup of this kernel needs.
    #[must_use]
    pub fn lds_words(&self) -> usize {
        (self.meta.lds_bytes as usize).div_ceil(4)
    }

    /// Static per-block instruction profiles, indexed like
    /// [`FastStats::block_dispatches`](crate::FastStats).
    #[must_use]
    pub fn block_profiles(&self) -> Vec<BlockProfile> {
        self.blocks
            .iter()
            .map(|b| BlockProfile {
                start: b.start as u32,
                ops: b.op_meta.clone(),
                term: b.term_meta,
            })
            .collect()
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("blocks", &self.blocks.len())
            .field("meta", &self.meta)
            .finish()
    }
}

/// Issue-time enforcement the pipeline performs before executing any
/// instruction, in the same order: trimmed-architecture check first, then
/// functional-unit availability.
fn issue_error(op: Opcode, config: &CuConfig) -> Option<CuError> {
    if let Some(trim) = &config.trim {
        if !trim.contains(op) {
            return Some(CuError::Trimmed { opcode: op });
        }
    }
    let unit = op.unit();
    match unit {
        FuncUnit::Simd if config.int_valus == 0 => Some(CuError::MissingUnit { unit, opcode: op }),
        FuncUnit::Simf if config.fp_valus == 0 => Some(CuError::MissingUnit { unit, opcode: op }),
        _ => None,
    }
}

fn is_terminator(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        SBranch
            | SCbranchScc0
            | SCbranchScc1
            | SCbranchVccz
            | SCbranchVccnz
            | SCbranchExecz
            | SCbranchExecnz
            | SBarrier
            | SEndpgm
    )
}

/// Specialised closure for a pure lanewise vector ALU op (including
/// `v_mac_f32`'s accumulator), delegating the per-lane math to
/// [`func::lanewise`] with the operand shape pre-resolved.
fn lanewise_closure(op: Opcode, v: VecOps) -> OpFn {
    let is_float = op.unit() == FuncUnit::Simf;
    let nsrc = (op.src_count() as usize).max(1);
    Box::new(move |wave, _lds, _mem| {
        for lane in 0..WAVEFRONT_SIZE {
            if !wave.lane_active(lane) {
                continue;
            }
            let mut s = [0u32; 3];
            for (i, slot) in s.iter_mut().enumerate().take(nsrc) {
                let raw = wave.read_lane(v.src[i], lane)?;
                *slot = if is_float {
                    func::in_mods(raw, i as u8, v.abs, v.neg)
                } else {
                    raw
                };
            }
            let acc = if op == Opcode::VMacF32 {
                wave.vgpr(v.vdst.into(), lane)?
            } else {
                0
            };
            let mut r = func::lanewise(op, s, acc);
            if is_float {
                r = func::out_mods(r, v.clamp, v.omod);
            }
            wave.set_vgpr(v.vdst.into(), lane, r)?;
        }
        Ok(())
    })
}

/// Specialised closure for a vector compare: per-lane [`func::compare`]
/// into a set/clear mask pair merged into VCC (or the VOP3b destination).
fn compare_closure(op: Opcode, v: VecOps) -> OpFn {
    let dst = v.sdst.unwrap_or(Operand::VccLo);
    Box::new(move |wave, _lds, _mem| {
        let mut mask_set = 0u64;
        let mut mask_clr = 0u64;
        for lane in 0..WAVEFRONT_SIZE {
            if !wave.lane_active(lane) {
                continue;
            }
            let a = wave.read_lane(v.src[0], lane)?;
            let b = wave.read_lane(v.src[1], lane)?;
            if func::compare(op, a, b) {
                mask_set |= 1 << lane;
            } else {
                mask_clr |= 1 << lane;
            }
        }
        let old = wave.read_scalar(dst, 2)?;
        wave.write_scalar(dst, 2, (old | mask_set) & !mask_clr)?;
        Ok(())
    })
}

/// Compile one non-terminator instruction.
fn body_op(inst: Instruction, next_pc: usize, config: &CuConfig) -> Op {
    let op = inst.opcode;
    if let Some(e) = issue_error(op, config) {
        return Op {
            run: Box::new(move |_, _, _| Err(e.clone())),
            compiled: true,
        };
    }
    // `s_nop` / `s_waitcnt` have no architectural effect in a functional
    // tier (memory is eager, so the counters they gate are always drained).
    if matches!(op, Opcode::SNop | Opcode::SWaitcnt) {
        return Op {
            run: Box::new(|_, _, _| Ok(())),
            compiled: true,
        };
    }
    let is_vector = matches!(
        inst.fields,
        Fields::Vop1 { .. }
            | Fields::Vop2 { .. }
            | Fields::Vopc { .. }
            | Fields::Vop3a { .. }
            | Fields::Vop3b { .. }
    );
    if is_vector {
        let v = func::vec_ops(&inst);
        if op.is_vector_compare() {
            return Op {
                run: compare_closure(op, v),
                compiled: true,
            };
        }
        let plain = !op.writes_vcc_implicitly()
            && op != Opcode::VCndmaskB32
            && op != Opcode::VReadfirstlaneB32;
        if plain {
            return Op {
                run: lanewise_closure(op, v),
                compiled: true,
            };
        }
    }
    // Everything else — scalar ALU, SMRD, buffer, LDS, carry arithmetic,
    // `v_cndmask_b32`, `v_readfirstlane_b32` — goes through the shared
    // interpreter entry point (the fallback tier).
    Op {
        run: Box::new(move |wave, lds, mem| {
            func::execute(&inst, next_pc, wave, lds, mem).map(|_| ())
        }),
        compiled: false,
    }
}

/// Translate `kernel` into a block-compiled [`Program`] under `config`'s
/// issue-time rules (trim set, instantiated functional units).
///
/// Translation itself never fails on reachable-but-wild control flow —
/// branch targets that miss an instruction boundary become lazy
/// [`CuError::PcOutOfRange`] edges — so the only error is an undecodable
/// binary.
///
/// # Errors
///
/// [`CuError::Isa`] when the kernel words do not decode.
pub fn translate(kernel: &Kernel, config: &CuConfig) -> Result<Program, CuError> {
    let words = kernel.words();
    let decoded = Instruction::decode_all(words)?;
    let n_words = words.len();

    // Block leaders: entry, branch targets, and successors of every
    // control-transfer instruction (including barriers, which must end a
    // block so waves can park between blocks).
    let mut leader = vec![false; n_words];
    if let Some(&(first, _)) = decoded.first() {
        leader[first] = true;
    }
    for &(pos, inst) in &decoded {
        let next = pos + inst.size_words();
        if !is_terminator(inst.opcode) {
            continue;
        }
        if next < n_words {
            leader[next] = true;
        }
        if let Fields::Sopp { simm16 } = inst.fields {
            if inst.opcode != Opcode::SBarrier && inst.opcode != Opcode::SEndpgm {
                let t = next as i64 + i64::from(simm16 as i16);
                if (0..n_words as i64).contains(&t) {
                    leader[t as usize] = true;
                }
            }
        }
    }

    // Block ids, in program order, for every leader that is an
    // instruction start.
    let mut block_at: Vec<Option<usize>> = vec![None; n_words + 1];
    let mut starts: Vec<usize> = Vec::new();
    for &(pos, _) in &decoded {
        if leader[pos] {
            block_at[pos] = Some(starts.len());
            starts.push(pos);
        }
    }
    let resolve = |pc: usize| match block_at.get(pc).copied().flatten() {
        Some(b) => Target::Block(b),
        None => Target::Invalid(pc),
    };

    // Word-indexed map to decoded instructions (the same shape as the
    // pipeline's instruction memory).
    let mut at: Vec<Option<usize>> = vec![None; n_words];
    for (i, &(pos, _)) in decoded.iter().enumerate() {
        at[pos] = Some(i);
    }

    let mut blocks = Vec::with_capacity(starts.len());
    for &start in &starts {
        let mut ops = Vec::new();
        let mut op_meta = Vec::new();
        let mut pc = start;
        let (term, term_meta, term_err) = loop {
            let i = at[pc].expect("blocks begin and continue on instruction starts");
            let (_, inst) = decoded[i];
            let next = pc + inst.size_words();
            if is_terminator(inst.opcode) {
                let err = issue_error(inst.opcode, config);
                let Fields::Sopp { simm16 } = inst.fields else {
                    unreachable!("terminators are SOPP-encoded")
                };
                let t = next as i64 + i64::from(simm16 as i16);
                let taken = if t >= 0 {
                    resolve(t as usize)
                } else {
                    // Negative targets overflow the pc; the interpreter
                    // reports the failure as word 0.
                    Target::Invalid(0)
                };
                let term = match inst.opcode {
                    Opcode::SBranch => Terminator::Jump(taken),
                    Opcode::SBarrier => Terminator::Barrier(resolve(next)),
                    Opcode::SEndpgm => Terminator::End,
                    branch => Terminator::Branch {
                        cond: match branch {
                            Opcode::SCbranchScc0 => Cond::Scc0,
                            Opcode::SCbranchScc1 => Cond::Scc1,
                            Opcode::SCbranchVccz => Cond::Vccz,
                            Opcode::SCbranchVccnz => Cond::Vccnz,
                            Opcode::SCbranchExecz => Cond::Execz,
                            Opcode::SCbranchExecnz => Cond::Execnz,
                            other => unreachable!("non-branch terminator {other:?}"),
                        },
                        taken,
                        fall: resolve(next),
                    },
                };
                break (term, Some((pc as u32, inst.opcode)), err);
            }
            ops.push(body_op(inst, next, config));
            op_meta.push((pc as u32, inst.opcode));
            if next >= n_words || leader[next] {
                // Successor is a branch target (or the binary's end):
                // close the block with an instruction-free fall-through.
                break (Terminator::Fall(resolve(next)), None, None);
            }
            pc = next;
        };
        blocks.push(Block {
            start,
            ops,
            op_meta,
            term,
            term_meta,
            term_err,
        });
    }

    Ok(Program {
        blocks,
        // Waves start at pc 0; an empty binary fails like the pipeline's
        // first fetch would.
        entry: resolve(0),
        meta: *kernel.meta(),
    })
}
