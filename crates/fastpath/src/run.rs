//! The block-dispatch executor.
//!
//! Runs a translated [`Program`] per wavefront: each wave executes whole
//! basic blocks (straight-line closure runs) and only re-enters the
//! dispatch loop at block boundaries. Workgroups round-robin their waves
//! between barriers exactly like the reference interpreter: each pass runs
//! every live wave up to its next barrier (or retirement), and when all
//! live waves are parked the barrier releases them together.

use scratch_cu::{CuError, Memory, Wavefront};

use crate::translate::{Target, Terminator};
use crate::Program;

/// Execution counters of the fast tier.
///
/// `instructions` counts the dynamic instruction stream (identical to the
/// cycle pipeline's issue count for the same dispatch); `compiled_ops` /
/// `fallback_ops` split it by closure tier; `block_dispatches[b]` counts
/// entries into block `b` — a deterministic fingerprint of control flow
/// used by the re-translation property tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FastStats {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Instructions run by specialised closures.
    pub compiled_ops: u64,
    /// Instructions run through the interpreter fallback.
    pub fallback_ops: u64,
    /// Dispatch count per basic block.
    pub block_dispatches: Vec<u64>,
}

impl FastStats {
    /// Zeroed counters shaped for `program`'s dispatch table.
    #[must_use]
    pub fn for_program(program: &Program) -> FastStats {
        FastStats {
            block_dispatches: vec![0; program.block_count()],
            ..FastStats::default()
        }
    }

    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &FastStats) {
        self.instructions += other.instructions;
        self.compiled_ops += other.compiled_ops;
        self.fallback_ops += other.fallback_ops;
        if self.block_dispatches.len() < other.block_dispatches.len() {
            self.block_dispatches
                .resize(other.block_dispatches.len(), 0);
        }
        for (a, b) in self
            .block_dispatches
            .iter_mut()
            .zip(&other.block_dispatches)
        {
            *a += b;
        }
    }
}

/// Instruction budget of a fast run — the functional tier's watchdog,
/// mirroring the pipeline's cycle limit (every instruction costs at least
/// one cycle, so a `limit`-instruction budget can only trip at or before
/// the cycle model's own limit would).
#[derive(Debug, Clone, Copy)]
pub struct Fuel {
    left: u64,
    limit: u64,
}

impl Fuel {
    /// A budget of `limit` instructions.
    #[must_use]
    pub fn new(limit: u64) -> Fuel {
        Fuel { left: limit, limit }
    }

    fn spend(&mut self) -> Result<(), CuError> {
        if self.left == 0 {
            return Err(CuError::CycleLimit { limit: self.limit });
        }
        self.left -= 1;
        Ok(())
    }
}

/// One wavefront's scheduling state in the fast tier.
#[derive(Debug)]
pub struct WaveSlot {
    /// The wave's architectural state.
    pub wave: Wavefront,
    /// Next control-flow edge to dispatch.
    at: Target,
    done: bool,
    at_barrier: bool,
}

impl WaveSlot {
    /// Park `wave` at `program`'s entry.
    #[must_use]
    pub fn new(program: &Program, wave: Wavefront) -> WaveSlot {
        WaveSlot {
            wave,
            at: program.entry,
            done: false,
            at_barrier: false,
        }
    }

    /// The wave executed `s_endpgm`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// Charge and count a terminator instruction, raising its issue-time
/// trim/unit error if the translator recorded one.
fn issue_term(
    err: &Option<CuError>,
    stats: &mut FastStats,
    fuel: &mut Fuel,
) -> Result<(), CuError> {
    fuel.spend()?;
    if let Some(e) = err {
        return Err(e.clone());
    }
    stats.instructions += 1;
    stats.compiled_ops += 1;
    Ok(())
}

/// Run one wave until it retires or parks at a barrier.
fn run_wave(
    program: &Program,
    slot: &mut WaveSlot,
    lds: &mut [u32],
    mem: &mut dyn Memory,
    stats: &mut FastStats,
    fuel: &mut Fuel,
) -> Result<(), CuError> {
    loop {
        let b = match slot.at {
            Target::Block(b) => b,
            Target::Invalid(pc) => return Err(CuError::PcOutOfRange { pc }),
        };
        stats.block_dispatches[b] += 1;
        let block = &program.blocks[b];
        for op in &block.ops {
            fuel.spend()?;
            stats.instructions += 1;
            if op.compiled {
                stats.compiled_ops += 1;
            } else {
                stats.fallback_ops += 1;
            }
            (op.run)(&mut slot.wave, lds, mem)?;
        }
        match &block.term {
            Terminator::Fall(t) => slot.at = *t,
            Terminator::Jump(t) => {
                issue_term(&block.term_err, stats, fuel)?;
                slot.at = *t;
            }
            Terminator::Branch { cond, taken, fall } => {
                issue_term(&block.term_err, stats, fuel)?;
                slot.at = if cond.eval(&slot.wave) { *taken } else { *fall };
            }
            Terminator::Barrier(t) => {
                issue_term(&block.term_err, stats, fuel)?;
                slot.at = *t;
                slot.at_barrier = true;
                return Ok(());
            }
            Terminator::End => {
                issue_term(&block.term_err, stats, fuel)?;
                slot.done = true;
                return Ok(());
            }
        }
    }
}

/// Run one workgroup's waves to retirement over a shared LDS image.
///
/// Waves round-robin between barriers: each pass runs every live wave to
/// its next barrier or retirement, then a fully-parked workgroup releases
/// the barrier together — the reference interpreter's schedule, which the
/// `reference` oracle already holds the cycle pipeline to.
///
/// # Errors
///
/// Propagates the first failing instruction (trim/unit violations, wild
/// control flow, register/LDS range errors) and raises
/// [`CuError::CycleLimit`] when `fuel` runs dry.
pub fn run_workgroup(
    program: &Program,
    slots: &mut [WaveSlot],
    lds: &mut [u32],
    mem: &mut dyn Memory,
    stats: &mut FastStats,
    fuel: &mut Fuel,
) -> Result<(), CuError> {
    loop {
        let mut progressed = false;
        for slot in slots.iter_mut() {
            if slot.done || slot.at_barrier {
                continue;
            }
            progressed = true;
            run_wave(program, slot, lds, mem, stats, fuel)?;
        }
        if slots.iter().all(|s| s.done) {
            return Ok(());
        }
        if !progressed {
            // Every live wave is parked at the barrier: release together.
            for slot in slots.iter_mut() {
                slot.at_barrier = false;
            }
        }
    }
}
