//! Hermetic end-to-end tests: a real daemon on an ephemeral port, real
//! TCP clients, and the three properties the serving layer promises —
//! bit-identical results, typed shedding with zero accepted-then-dropped
//! jobs, and a graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use scratch_check::GenKernel;
use scratch_metrics::Registry;
use scratch_serve::{fnv1a, RejectReason, ServeClient, ServeConfig, Server, SubmitRequest};
use scratch_system::{System, SystemConfig, SystemKind};

/// A buildable generated kernel (skipping seeds that fail to assemble,
/// as the fuzzer does), with `wgs` scaled to stretch its runtime.
fn workload(seed: u64, wgs: u32) -> GenKernel {
    let mut s = seed;
    loop {
        let mut gk = GenKernel::generate(s);
        gk.wgs = wgs;
        if gk.build().is_ok() {
            return gk;
        }
        s = s.wrapping_add(1);
    }
}

fn submit_of(gk: &GenKernel, tenant: &str, label: &str, return_output: bool) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_owned(),
        label: label.to_owned(),
        kernel: gk.build().expect("workload() returns buildable kernels"),
        input: gk.image.clone(),
        grid: [gk.wgs, 1, 1],
        out_bytes: gk.out_bytes(),
        system: None,
        return_output,
        exec: None,
    }
}

/// Fast-tier and self-checking jobs ride the same wire: identical output
/// words, zero cycles for `fast`, the cycle pipeline's count for
/// `fast-timing`, and an unknown tier is a typed Invalid rejection.
#[test]
fn fast_exec_jobs_serve_identical_words() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let gk = workload(7, 2);
    let (cycles, words) = direct_run(&gk);

    let mut client = ServeClient::connect(addr).expect("connect");
    for (exec, want_cycles) in [("fast", 0), ("fast-timing", cycles)] {
        let mut req = submit_of(&gk, "tenant", exec, true);
        req.exec = Some(exec.to_owned());
        let job = client.submit(req).expect("protocol").expect("admitted");
        let d = client.recv_done().expect("job completes");
        assert_eq!(d.job, job);
        assert!(d.ok, "{exec} job failed: {:?}", d.error);
        assert_eq!(
            d.output.as_ref().expect("return_output"),
            &words,
            "{exec} served words differ from the cycle tier's"
        );
        assert_eq!(d.cycles, want_cycles, "{exec} cycle count");
        assert!(d.instructions > 0, "{exec} instruction count");
    }

    let mut bad = submit_of(&gk, "tenant", "bad-exec", false);
    bad.exec = Some("warp-speed".to_owned());
    let rejection = client
        .submit(bad)
        .expect("protocol")
        .expect_err("unknown exec mode is shed, not queued");
    assert_eq!(rejection.reason, RejectReason::Invalid);

    server.shutdown();
}

/// Mirror of the server's execution path, run directly in-process: the
/// ground truth served results must be bit-identical to.
fn direct_run(gk: &GenKernel) -> (u64, Vec<u32>) {
    let kernel = gk.build().expect("buildable");
    let config = SystemConfig::preset(SystemKind::DcdPm);
    let mut sys = System::new(config, &kernel).expect("system");
    let out = sys.alloc(gk.out_bytes().max(4));
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    sys.dispatch([gk.wgs, 1, 1]).expect("generated kernels run");
    let report = sys.report();
    let words = sys.read_words(out, (gk.out_bytes().max(4) / 4) as usize);
    (report.cu_cycles, words)
}

#[test]
fn served_results_bit_identical_to_direct_runs() {
    let registry = Registry::new();
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            registry: Some(registry.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // N kernels × M tenants, each submitted once with the full output
    // requested, checked word-for-word against a direct run.
    let kernels: Vec<GenKernel> = (0..4).map(|i| workload(100 + i, 2)).collect();
    let tenants = ["alpha", "beta", "gamma"];

    let mut client = ServeClient::connect(addr).expect("connect");
    assert!(client.ping().expect("ping"));

    let mut submitted = Vec::new();
    for (k, gk) in kernels.iter().enumerate() {
        for tenant in &tenants {
            let label = format!("job-{tenant}-{k}");
            let job = client
                .submit(submit_of(gk, tenant, &label, true))
                .expect("protocol")
                .expect("no load, nothing sheds");
            submitted.push((job, k));
        }
    }

    let mut done = std::collections::BTreeMap::new();
    for _ in 0..submitted.len() {
        let d = client.recv_done().expect("every accepted job completes");
        done.insert(d.job, d);
    }

    for (job, k) in submitted {
        let d = done.get(&job).expect("one Done per accepted job");
        assert!(d.ok, "job {job} failed: {:?}", d.error);
        let (cycles, words) = direct_run(&kernels[k]);
        let served = d.output.as_ref().expect("return_output was set");
        assert_eq!(served, &words, "served output differs from direct run");
        assert_eq!(d.digest, fnv1a(&words), "digest mismatch");
        assert_eq!(d.cycles, cycles, "cycle count differs from direct run");
        assert!(d.instructions > 0);
    }

    // The observability wiring actually observed all of it.
    let snap = registry.snapshot();
    let n = submitted_count(&done);
    assert_eq!(
        snap.counter("scratch_serve_accepted_total", &[]),
        Some(n),
        "accepted counter"
    );
    assert_eq!(
        snap.counter("scratch_serve_completed_total", &[]),
        Some(n),
        "completed counter"
    );
    assert_eq!(
        snap.counter(
            "scratch_serve_tenant_accepted_total",
            &[("tenant", "alpha")]
        ),
        Some(4),
        "per-tenant accepted counter"
    );
    assert!(
        snap.histogram("scratch_serve_latency_micros", &[("tenant", "alpha")])
            .is_some_and(|h| h.count() > 0),
        "per-tenant latency histogram populated"
    );

    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.completed);
    assert_eq!(stats.failed, 0);
}

fn submitted_count(done: &std::collections::BTreeMap<u64, scratch_serve::JobDone>) -> u64 {
    done.len() as u64
}

#[test]
fn overload_sheds_typed_and_never_drops_accepted_jobs() {
    // One worker, tiny queues: a burst from 6 open-loop submitters is far
    // beyond 2× capacity, so admission control must shed — and still
    // answer every accepted job.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_cap: 3,
            tenant_cap: 2,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let gk = workload(7, 4); // stretched runtime: the queue actually fills

    let accepted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..6 {
            let (gk, accepted, shed, completed) = (&gk, &accepted, &shed, &completed);
            scope.spawn(move || {
                let tenant = format!("t{}", t % 3);
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut my_accepted = 0u64;
                // Open loop: fire the whole burst without waiting.
                for i in 0..25 {
                    let req = submit_of(gk, &tenant, &format!("burst-{t}-{i}"), false);
                    match client.submit(req).expect("every submission is answered") {
                        Ok(_job) => {
                            my_accepted += 1;
                            accepted.fetch_add(1, Ordering::AcqRel);
                        }
                        Err(rejection) => {
                            shed.fetch_add(1, Ordering::AcqRel);
                            assert!(
                                matches!(
                                    rejection.reason,
                                    RejectReason::TenantQueueFull | RejectReason::Overloaded
                                ),
                                "unexpected shed reason: {:?}",
                                rejection.reason
                            );
                            assert_eq!(rejection.tenant, tenant);
                            assert!(!rejection.message.is_empty());
                        }
                    }
                }
                // Every accepted job must produce exactly one Done on
                // this connection — zero accepted-then-dropped.
                for _ in 0..my_accepted {
                    let done = client.recv_done().expect("accepted job completes");
                    assert_eq!(done.tenant, tenant);
                    completed.fetch_add(1, Ordering::AcqRel);
                }
            });
        }
    });

    let accepted = accepted.load(Ordering::Acquire);
    let shed = shed.load(Ordering::Acquire);
    assert_eq!(accepted + shed, 6 * 25, "every submission got an answer");
    assert!(shed > 0, "a 2×-capacity burst must shed");
    assert!(accepted > 0, "admission must not starve entirely");
    assert_eq!(
        completed.load(Ordering::Acquire),
        accepted,
        "one Done per accepted job"
    );

    let stats = server.shutdown();
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.completed, accepted, "server-side: nothing dropped");
    assert_eq!(stats.shed, shed);
}

#[test]
fn rate_limit_sheds_with_retry_hint() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            rate: 2.0,
            burst: 1.0,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let gk = workload(11, 2);
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // The single-token burst admits once; the immediate retry is shed
    // with a computed backoff hint.
    client
        .submit(submit_of(&gk, "acme", "first", false))
        .expect("protocol")
        .expect("burst token admits");
    let rejection = client
        .submit(submit_of(&gk, "acme", "second", false))
        .expect("protocol")
        .expect_err("empty bucket sheds");
    assert_eq!(rejection.reason, RejectReason::RateLimited);
    let hint = rejection.retry_after_ms.expect("rate limit carries a hint");
    assert!((1..=1000).contains(&hint), "hint {hint}ms vs 2/s refill");

    // A different tenant has its own bucket.
    client
        .submit(submit_of(&gk, "other", "first", false))
        .expect("protocol")
        .expect("per-tenant buckets are independent");

    client.recv_done().expect("accepted job 1 completes");
    client.recv_done().expect("accepted job 2 completes");
    server.shutdown();
}

#[test]
fn oversized_and_invalid_submissions_shed_without_queueing() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            max_input_words: 8,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let gk = workload(13, 2);
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let too_big = client
        .submit(submit_of(&gk, "acme", "big", false)) // image is 4096 words
        .expect("protocol")
        .expect_err("input beyond max_input_words sheds");
    assert_eq!(too_big.reason, RejectReason::TooLarge);

    let mut bad = submit_of(&gk, "acme", "bad", false);
    bad.input = Vec::new();
    bad.system = Some("warp9".to_owned());
    let invalid = client
        .submit(bad)
        .expect("protocol")
        .expect_err("unknown preset sheds");
    assert_eq!(invalid.reason, RejectReason::Invalid);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 0, "nothing was queued");
    assert_eq!(stats.shed, 2);
}

#[test]
fn drain_rejects_new_work_and_completes_accepted() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let gk = workload(17, 4);
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // Queue a couple of jobs, then drain while they may still be running.
    for i in 0..3 {
        client
            .submit(submit_of(&gk, "acme", &format!("pre-{i}"), false))
            .expect("protocol")
            .expect("admits before drain");
    }
    client.drain().expect("drain acknowledged");

    let rejection = client
        .submit(submit_of(&gk, "acme", "late", false))
        .expect("protocol")
        .expect_err("draining server admits nothing");
    assert_eq!(rejection.reason, RejectReason::Draining);

    // The daemon loop would park in wait_drain(); it must return now.
    server.wait_drain();

    // Every pre-drain job still completes and is answered.
    for _ in 0..3 {
        let done = client.recv_done().expect("accepted jobs survive a drain");
        assert!(done.ok);
    }

    let stats = server.shutdown();
    assert!(stats.draining);
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.completed, 3);
}

#[test]
fn load_harness_produces_a_saturation_curve() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let plan = scratch_serve::LoadPlan {
        addr: server.addr().to_string(),
        steps: vec![1, 4],
        duration_ms: 300,
        seed: 21,
        kernels: 3,
        tenants: 2,
    };
    let report = scratch_serve::run_load(&plan).expect("harness runs");
    assert_eq!(report.steps.len(), 2);
    for step in &report.steps {
        assert!(step.attempted > 0, "closed loop always submits");
        assert_eq!(step.attempted, step.accepted + step.shed);
        assert!(step.completed > 0, "some jobs complete within the step");
        assert!(step.p50_us > 0 && step.p50_us <= step.p95_us);
        assert!(step.p95_us <= step.p99_us);
        assert!(step.offered_per_sec > 0.0);
    }
    // The curve serializes (what `scratch-tool load` writes to disk).
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: scratch_serve::LoadReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, report);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.completed, "drain left nothing behind");
}

#[test]
fn preempted_jobs_checkpoint_and_match_direct_runs() {
    // Pick a quantum well below the kernel's runtime so every served job
    // is forced through multiple checkpoint/restore round-trips, then
    // demand bit-identity with an uninterrupted direct run anyway.
    let gk = workload(301, 4);
    let (ref_cycles, ref_words) = direct_run(&gk);
    let quantum = (ref_cycles / 4).max(1);
    assert!(ref_cycles > quantum, "workload outlives one quantum");

    let registry = Registry::new();
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            quantum_cycles: quantum,
            registry: Some(registry.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    for tenant in ["alpha", "beta"] {
        client
            .submit(submit_of(&gk, tenant, "sliced", true))
            .expect("protocol")
            .expect("no load, nothing sheds");
    }
    for _ in 0..2 {
        let d = client.recv_done().expect("sliced jobs complete");
        assert!(d.ok, "sliced job failed: {:?}", d.error);
        assert_eq!(
            d.output.as_ref().expect("return_output"),
            &ref_words,
            "preempted served output differs from direct run"
        );
        assert_eq!(d.cycles, ref_cycles, "preemption changed the cycle count");
    }

    // The checkpoint plane actually ran: captures, bytes, and restores.
    let snap = registry.snapshot();
    let checkpoints = snap
        .counter("scratch_snap_checkpoints_total", &[])
        .unwrap_or(0);
    assert!(checkpoints >= 2, "each job checkpoints at least once");
    assert!(
        snap.counter("scratch_snap_checkpoint_bytes_total", &[])
            .unwrap_or(0)
            > 0,
        "checkpoint bytes accounted"
    );
    assert!(
        snap.histogram("scratch_snap_resume_micros", &[])
            .is_some_and(|h| h.count() > 0),
        "resume latency observed"
    );
    assert!(
        snap.counter("scratch_preempt_quanta_total", &[])
            .unwrap_or(0)
            > 0,
        "scheduler quanta counted"
    );
    assert!(
        snap.counter("scratch_preempt_preemptions_total", &[])
            .unwrap_or(0)
            > 0,
        "preemptions counted"
    );

    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn cancel_stops_midflight_job_without_blocking_drain() {
    // A deliberately long kernel sliced into many short quanta: cancel it
    // mid-flight, watch the Done arrive as `cancelled`, and prove the
    // worker (and a subsequent drain) never wedge on it.
    let gk = workload(401, 16);
    let (ref_cycles, _) = direct_run(&gk);
    let quantum = (ref_cycles / 50).max(1);

    let registry = Registry::new();
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            quantum_cycles: quantum,
            registry: Some(registry.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let victim = client
        .submit(submit_of(&gk, "acme", "victim", false))
        .expect("protocol")
        .expect("admits");
    assert!(
        client.cancel(victim).expect("protocol"),
        "live job is cancellable"
    );
    let done = client.recv_done().expect("cancelled job still answers");
    assert_eq!(done.job, victim);
    assert!(!done.ok, "cancelled job must not report success");
    assert_eq!(done.error.as_deref(), Some("cancelled"));

    // Too late now: its outcome was already produced.
    assert!(!client.cancel(victim).expect("protocol"));
    // Unknown ids are not cancellable either.
    assert!(!client.cancel(victim + 1000).expect("protocol"));

    // The worker is free again: new work completes normally…
    let after = workload(402, 2);
    let (after_cycles, after_words) = direct_run(&after);
    client
        .submit(submit_of(&after, "acme", "after", true))
        .expect("protocol")
        .expect("admits after a cancellation");
    let d = client.recv_done().expect("completes");
    assert!(d.ok, "{:?}", d.error);
    assert_eq!(d.cycles, after_cycles);
    assert_eq!(d.output.as_ref().expect("return_output"), &after_words);

    // …and a drain exits promptly instead of waiting on the victim.
    client.drain().expect("drain acknowledged");
    server.wait_drain();

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("scratch_serve_cancelled_total", &[]),
        Some(1),
        "serve-side cancellation accounted"
    );
    assert_eq!(
        snap.counter("scratch_preempt_cancelled_total", &[]),
        Some(1),
        "engine-side cancellation accounted"
    );

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.completed, 2, "cancelled jobs still complete");
    assert_eq!(stats.failed, 1, "the cancelled job counts as failed");
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn malformed_lines_answer_error_and_keep_the_connection() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let ping = serde_json::to_string(&scratch_serve::Request::Ping).unwrap();
    raw.write_all(format!("this is not json\n{ping}\n").as_bytes())
        .unwrap();
    raw.flush().unwrap();

    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("Error") && line.contains("malformed request"),
        "garbage line answers a protocol error, got: {line}"
    );
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("Pong"),
        "connection survives a malformed line, got: {line}"
    );

    server.shutdown();
}

/// The full observability plane under preemption: spans on, profiling on,
/// a 4-worker pool, and a quantum small enough that every job is sliced
/// at least three times. Every job's span timeline must tile its lifetime
/// exactly; enabling the plane must change no cycles and no output words;
/// and `Top` must surface the per-tenant SLO and signature aggregates.
#[test]
fn spans_tile_exactly_under_preemption_and_top_aggregates() {
    let gk = workload(901, 4);
    let (ref_cycles, ref_words) = direct_run(&gk);
    // Aim well past the 3-slice floor; the engine re-slices on quantum
    // boundaries, so cycles/8 yields ~8 run slices per job.
    let quantum = (ref_cycles / 8).max(1);
    assert!(ref_cycles > 3 * quantum, "workload outlives three quanta");

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            quantum_cycles: quantum,
            spans: true,
            profile: true,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let tenants = ["alpha", "beta"];
    let mut submitted = Vec::new();
    for round in 0..4 {
        for tenant in &tenants {
            let job = client
                .submit(submit_of(&gk, tenant, &format!("sliced-{round}"), true))
                .expect("protocol")
                .expect("no load, nothing sheds");
            submitted.push(job);
        }
    }

    for _ in 0..submitted.len() {
        let d = client.recv_done().expect("sliced jobs complete");
        assert!(d.ok, "job {} failed: {:?}", d.job, d.error);
        assert_eq!(
            d.output.as_ref().expect("return_output"),
            &ref_words,
            "spans+profiling changed the served words"
        );
        assert_eq!(d.cycles, ref_cycles, "spans+profiling changed the cycles");
        assert!(
            d.slices >= 3,
            "job {} ran in {} slices; the quantum should force >= 3",
            d.job,
            d.slices
        );
        assert!(d.exec_us >= d.snap_us, "checkpoint time within exec time");
    }

    // Spans are finished on the router thread just after the reply is
    // written, so give the recorder a moment to catch up with the client.
    let spans = {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut collected = Vec::new();
        loop {
            collected.extend(server.take_spans());
            if collected.len() >= submitted.len() || std::time::Instant::now() > deadline {
                break collected;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    assert_eq!(spans.len(), submitted.len(), "one timeline per job");
    for j in &spans {
        j.check_tiling()
            .unwrap_or_else(|e| panic!("job {} timeline torn: {e}", j.job));
        assert!(submitted.contains(&j.job), "unknown job id {}", j.job);
        assert!(
            j.slices() >= 3,
            "job {} timeline shows {} run slices",
            j.job,
            j.slices()
        );
        assert!(j.total_us() > 0, "job {} has a zero-width timeline", j.job);
        assert_eq!(
            j.total_us(),
            j.spans.iter().map(|s| s.dur_us()).sum::<u64>(),
            "exact tiling: span durations sum to the job's lifetime"
        );
    }

    // `Top` surfaces the rolling SLO and the aggregated signatures.
    let top = client.top().expect("top");
    assert!(!top.draining);
    assert_eq!(top.tenants.len(), tenants.len());
    for t in &top.tenants {
        assert!(tenants.contains(&t.tenant.as_str()), "tenant {}", t.tenant);
        assert_eq!(t.completed, 4, "{} completions", t.tenant);
        assert_eq!(t.shed, 0);
        assert!(t.p99_us >= t.p50_us, "{} quantile ordering", t.tenant);
        assert!(t.instructions > 0, "{} signature aggregated", t.tenant);
        assert_ne!(t.preset, "-", "{} covering preset computed", t.tenant);
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, submitted.len() as u64);
    assert_eq!(stats.failed, 0);
}

// ---------------------------------------------------------------------------
// Durability: WAL recovery and the idle-timeout shed.
// ---------------------------------------------------------------------------

/// A scratch directory unique to one test.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scratch-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Poll the log until `id` has a completion record (the replayed job's
/// `Done` goes to a dead channel, so the log is the only witness).
fn await_completion(dir: &std::path::Path, id: u64) -> scratch_wal::CompletionMeta {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let state = scratch_wal::WalState::read(dir).expect("readable log");
        if let Some(metas) = state.completions.get(&id) {
            return metas[0].clone();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} never completed after replay"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A restarted daemon must re-run logged-but-unfinished jobs, suppress
/// logged-and-completed ones, produce bit-identical digests for the
/// replays, and never re-mint an id the previous lifetime used.
#[test]
fn wal_recovery_replays_pending_dedupes_completed_and_floors_ids() {
    use scratch_wal::{FsyncPolicy, Record, Wal, WalConfig};

    let dir = wal_dir("recovery");
    let gk_done = workload(300, 2);
    let gk_pending = workload(310, 2);
    let (_, done_words) = direct_run(&gk_done);
    let (_, pending_words) = direct_run(&gk_pending);

    // Forge the log a crashed daemon would have left behind: one job
    // fully completed, one admitted but unfinished.
    {
        let (mut wal, _) = Wal::open(WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        })
        .expect("fresh log");
        let payload_of = |gk: &GenKernel, tenant: &str, label: &str| {
            serde_json::to_string(&submit_of(gk, tenant, label, false))
                .expect("serializable")
                .into_bytes()
        };
        wal.append(&Record::Admitted {
            id: 3,
            tenant: "alpha".to_owned(),
            label: "done".to_owned(),
            payload: payload_of(&gk_done, "alpha", "done"),
        })
        .expect("append");
        wal.append(&Record::Completed {
            id: 3,
            ok: true,
            digest: fnv1a(&done_words),
            cycles: 1,
            instructions: 1,
            error: String::new(),
        })
        .expect("append");
        wal.append(&Record::Admitted {
            id: 7,
            tenant: "beta".to_owned(),
            label: "pending".to_owned(),
            payload: payload_of(&gk_pending, "beta", "pending"),
        })
        .expect("append");
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            wal: Some(scratch_wal::WalConfig::new(&dir)),
            ..ServeConfig::default()
        },
    )
    .expect("bind with wal");
    let report = server.recovery_report().expect("wal configured").clone();
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 1);
    assert_eq!(report.replayed, 1, "only the unfinished job re-runs");
    assert_eq!(report.deduped, 1, "the completed job is suppressed");
    assert_eq!(report.torn_bytes, 0, "a clean log has no torn tail");

    // The replay completes with a digest bit-identical to a direct run,
    // exactly once.
    let meta = await_completion(&dir, 7);
    assert!(meta.ok, "replayed job failed: {}", meta.error);
    assert_eq!(
        meta.digest,
        fnv1a(&pending_words),
        "replay is bit-identical"
    );

    // A live admission in the new lifetime never reuses a logged id.
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let job = client
        .submit(submit_of(&gk_done, "alpha", "fresh", false))
        .expect("protocol")
        .expect("admitted");
    assert!(job > 7, "id floor: got {job}, the old lifetime reached 7");
    let d = client.recv_done().expect("fresh job completes");
    assert!(!d.redelivered, "a live admission is not a redelivery");
    server.shutdown();

    // The final ledger is clean: every admission has exactly one
    // completion.
    let vr = scratch_wal::verify(&dir).expect("verify");
    assert!(vr.clean(), "post-shutdown log must be clean: {vr:?}");
    assert_eq!(vr.duplicate_completions, 0);
    assert_eq!(vr.unfinished, 0);
    let state = scratch_wal::WalState::read(&dir).expect("read");
    assert_eq!(state.completions.get(&3).map(Vec::len), Some(1));
    assert_eq!(state.completions.get(&7).map(Vec::len), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unusable checkpoint (garbage bytes, wrong version) must not wedge
/// recovery: the job falls back to a from-scratch replay and still lands
/// the right digest.
#[test]
fn wal_recovery_survives_a_garbage_checkpoint() {
    use scratch_wal::{FsyncPolicy, Record, Wal, WalConfig};

    let dir = wal_dir("bad-checkpoint");
    let gk = workload(320, 2);
    let (_, words) = direct_run(&gk);
    {
        let (mut wal, _) = Wal::open(WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::new(&dir)
        })
        .expect("fresh log");
        wal.append(&Record::Admitted {
            id: 5,
            tenant: "alpha".to_owned(),
            label: "resumable".to_owned(),
            payload: serde_json::to_string(&submit_of(&gk, "alpha", "resumable", false))
                .expect("serializable")
                .into_bytes(),
        })
        .expect("append");
        wal.append(&Record::Checkpoint {
            id: 5,
            out_addr: 64,
            snap: vec![0xde, 0xad, 0xbe, 0xef, 1, 2, 3],
        })
        .expect("append");
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            wal: Some(scratch_wal::WalConfig::new(&dir)),
            ..ServeConfig::default()
        },
    )
    .expect("bind with wal");
    let report = server.recovery_report().expect("wal configured");
    assert_eq!(report.replayed, 1);
    assert_eq!(report.resumed, 1, "the scan trusts the checkpoint's shape");

    let meta = await_completion(&dir, 5);
    assert!(meta.ok, "fallback replay failed: {}", meta.error);
    assert_eq!(meta.digest, fnv1a(&words), "fallback is bit-identical");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `idle_timeout` set, a connection that goes silent with nothing in
/// flight is shed with the typed `IdleTimeout` rejection and closed —
/// while activity (even just pings) keeps it alive indefinitely.
#[test]
fn idle_connections_shed_with_typed_timeout_and_activity_resets_it() {
    use scratch_serve::Response;

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: Some(Duration::from_millis(300)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // A silent connection: the daemon speaks first, with the typed shed,
    // then closes.
    let silent = TcpStream::connect(addr).expect("connect");
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut lines = BufReader::new(silent);
    let mut line = String::new();
    lines.read_line(&mut line).expect("the shed notice arrives");
    let response: Response = serde_json::from_str(&line).expect("valid protocol line");
    match response {
        Response::Rejected(r) => {
            assert_eq!(r.reason, RejectReason::IdleTimeout);
            assert!(r.message.contains("300 ms"), "message names the limit");
        }
        other => panic!("expected the idle shed, got {other:?}"),
    }
    line.clear();
    let eof = lines.read_line(&mut line).expect("socket readable");
    assert_eq!(eof, 0, "the daemon closes an idle-shed connection");

    // An active connection outlives many idle windows: each ping resets
    // the clock.
    let mut active = ServeClient::connect(addr).expect("connect");
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            active.ping().expect("still connected"),
            "ping keeps it alive"
        );
    }

    // ...and a submitted job holds the connection open while the client
    // silently awaits its Done.
    let gk = workload(330, 2);
    active
        .submit(submit_of(&gk, "tenant", "awaited", false))
        .expect("protocol")
        .expect("admitted");
    let d = active
        .recv_done()
        .expect("done arrives on a live connection");
    assert!(d.ok);
    server.shutdown();
}
