//! Serde round-trips of every protocol message — both directions of the
//! wire format, via the exact `serde_json` path the server and client use.

use scratch_asm::KernelBuilder;
use scratch_serve::{
    JobDone, RejectReason, Rejection, Request, Response, StatsReply, SubmitRequest, TenantStats,
    TenantTop, TopReply,
};

fn tiny_kernel() -> scratch_asm::Kernel {
    let mut b = KernelBuilder::new("proto");
    b.vgprs(4).sgprs(24).workgroup_size(64);
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn roundtrip_request(req: &Request) {
    let line = serde_json::to_string(req).expect("serialize");
    assert!(!line.contains('\n'), "wire format must be one line");
    let back: Request = serde_json::from_str(&line).expect("deserialize");
    assert_eq!(*req, back, "request round-trip changed the message");
}

fn roundtrip_response(resp: &Response) {
    let line = serde_json::to_string(resp).expect("serialize");
    assert!(!line.contains('\n'), "wire format must be one line");
    let back: Response = serde_json::from_str(&line).expect("deserialize");
    assert_eq!(*resp, back, "response round-trip changed the message");
}

fn sample_submit() -> SubmitRequest {
    SubmitRequest {
        tenant: "acme".to_owned(),
        label: "job-1".to_owned(),
        kernel: tiny_kernel(),
        input: vec![1, 2, 3, 0xdead_beef],
        grid: [2, 1, 1],
        out_bytes: 16384,
        system: Some("dcdpm".to_owned()),
        return_output: true,
        exec: Some("cycle".to_owned()),
    }
}

#[test]
fn every_request_variant_round_trips() {
    roundtrip_request(&Request::Submit(sample_submit()));
    roundtrip_request(&Request::Submit(SubmitRequest {
        system: None, // the omittable fields, in their omitted state
        exec: None,
        input: Vec::new(),
        return_output: false,
        ..sample_submit()
    }));
    roundtrip_request(&Request::Stats);
    roundtrip_request(&Request::Ping);
    roundtrip_request(&Request::Drain);
    roundtrip_request(&Request::Cancel { job: 42 });
    roundtrip_request(&Request::Top);
}

#[test]
fn every_response_variant_round_trips() {
    roundtrip_response(&Response::Accepted { job: 42 });
    for reason in [
        RejectReason::RateLimited,
        RejectReason::TenantQueueFull,
        RejectReason::Overloaded,
        RejectReason::Draining,
        RejectReason::TooLarge,
        RejectReason::Invalid,
        RejectReason::IdleTimeout,
    ] {
        roundtrip_response(&Response::Rejected(Rejection {
            reason,
            tenant: "acme".to_owned(),
            retry_after_ms: (reason == RejectReason::RateLimited).then_some(125),
            message: format!("shed: {reason}"),
        }));
    }
    roundtrip_response(&Response::Done(JobDone {
        job: 42,
        tenant: "acme".to_owned(),
        label: "job-1".to_owned(),
        ok: true,
        error: None,
        cycles: 123_456,
        instructions: 7890,
        digest: 0xcbf2_9ce4_8422_2325,
        output: Some(vec![0, 1, u32::MAX]),
        queue_us: 12,
        exec_us: 3400,
        snap_us: 210,
        slices: 3,
        redelivered: false,
    }));
    roundtrip_response(&Response::Done(JobDone {
        job: 43,
        tenant: "acme".to_owned(),
        label: "job-2".to_owned(),
        ok: false,
        error: Some("watchdog: job exceeded its 1000-cycle budget".to_owned()),
        cycles: 0,
        instructions: 0,
        digest: 0xcbf2_9ce4_8422_2325,
        output: None,
        queue_us: 12,
        exec_us: 50,
        snap_us: 0,
        slices: 1,
        redelivered: true,
    }));
    roundtrip_response(&Response::Pong);
    roundtrip_response(&Response::Stats(StatsReply {
        submitted: 10,
        accepted: 8,
        shed: 2,
        completed: 7,
        failed: 1,
        cancelled: 1,
        queue_depth: 1,
        in_flight: 0,
        connections: 3,
        draining: false,
        tenants: vec![TenantStats {
            tenant: "acme".to_owned(),
            accepted: 8,
            shed: 2,
            completed: 7,
            in_flight: 1,
            latency_us: [150, 900, 2100],
        }],
    }));
    roundtrip_response(&Response::Top(TopReply {
        queue_depth: 2,
        in_flight: 1,
        draining: false,
        tenants: vec![TenantTop {
            tenant: "acme".to_owned(),
            queued: 2,
            in_flight: 1,
            completed: 7,
            shed: 1,
            p50_us: 150,
            p95_us: 900,
            p99_us: 2100,
            shed_ratio: 0.125,
            budget_burn: 1.5,
            instructions: 4096,
            preset: "salu+ivalu+lsu+branch".to_owned(),
        }],
    }));
    roundtrip_response(&Response::Draining { pending: 3 });
    roundtrip_response(&Response::Cancelled {
        job: 42,
        cancelled: true,
    });
    roundtrip_response(&Response::Error {
        message: "malformed request: expected value".to_owned(),
    });
}

#[test]
fn submit_accepts_omitted_optional_fields() {
    // A hand-written client may omit `system` entirely; the vendored
    // serde treats missing fields as null, which `Option` absorbs.
    let kernel_json = serde_json::to_string(&tiny_kernel()).unwrap();
    let line = format!(
        "{{\"Submit\":{{\"tenant\":\"t\",\"label\":\"l\",\"kernel\":{kernel_json},\
         \"input\":[],\"grid\":[1,1,1],\"out_bytes\":4096,\"return_output\":false}}}}"
    );
    let req: Request = serde_json::from_str(&line).expect("omitted system still parses");
    let Request::Submit(s) = req else {
        panic!("expected Submit")
    };
    assert_eq!(s.system, None);
    assert!(s.system_kind().is_ok(), "None defaults to dcdpm");
    assert_eq!(s.exec, None);
    assert!(s.exec_mode().is_ok(), "None defaults to the cycle tier");
}

#[test]
fn unknown_system_preset_is_invalid() {
    let s = SubmitRequest {
        system: Some("warp9".to_owned()),
        ..sample_submit()
    };
    assert!(s.system_kind().is_err());
}
