//! Serving-layer overhead: submit→Done round trips through a real daemon
//! on loopback, against the two paths a client can hit — a full execution
//! round trip, and the pure admission/shed path (no engine work at all).
//! The shed path bounds the serving tax: protocol parse + admission
//! decision + response, no simulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_check::GenKernel;
use scratch_metrics::Registry;
use scratch_serve::{ServeClient, ServeConfig, Server, SubmitRequest};

fn workload(seed: u64) -> GenKernel {
    let mut s = seed;
    loop {
        let gk = GenKernel::generate(s);
        if gk.build().is_ok() {
            return gk;
        }
        s = s.wrapping_add(1);
    }
}

fn submit_of(gk: &GenKernel, tenant: &str) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_owned(),
        label: "bench".to_owned(),
        kernel: gk.build().expect("buildable"),
        input: gk.image.clone(),
        grid: [gk.wgs, 1, 1],
        out_bytes: gk.out_bytes(),
        system: None,
        return_output: false,
        exec: None,
    }
}

fn serve_roundtrip(c: &mut Criterion) {
    let gk = workload(1);

    let mut group = c.benchmark_group("serve_roundtrip");
    group.sample_size(10).throughput(Throughput::Elements(1));

    // Full path: admission + engine execution + Done.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    group.bench_function("submit_exec_done", |b| {
        b.iter(|| {
            client
                .submit(submit_of(&gk, "bench"))
                .expect("protocol")
                .expect("admits");
            let done = client.recv_done().expect("completes");
            assert!(done.ok);
        });
    });

    // Ping: one protocol round trip, no admission, no execution — the
    // floor set by JSON + TCP + the connection's reader/writer threads.
    group.bench_function("ping", |b| {
        b.iter(|| assert!(client.ping().expect("pong")));
    });
    drop(client);
    server.shutdown();

    // The same full path with the write-ahead log on (default interval
    // fsync): the acceptance gate is that journaling admissions and
    // completions costs <= 10% over the bare round trip.
    let wal_dir = std::env::temp_dir().join(format!("scratch-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            registry: Some(Registry::new()),
            wal: Some(scratch_wal::WalConfig::new(&wal_dir)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    group.bench_function("submit_exec_done_wal", |b| {
        b.iter(|| {
            client
                .submit(submit_of(&gk, "bench"))
                .expect("protocol")
                .expect("admits");
            let done = client.recv_done().expect("completes");
            assert!(done.ok);
        });
    });
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);

    // Shed path: tenant_cap 0 rejects instantly, measuring protocol +
    // admission bookkeeping alone.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            tenant_cap: 0,
            registry: Some(Registry::new()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    group.bench_function("submit_shed", |b| {
        b.iter(|| {
            client
                .submit(submit_of(&gk, "bench"))
                .expect("protocol")
                .expect_err("tenant_cap 0 always sheds");
        });
    });
    drop(client);
    server.shutdown();

    group.finish();
}

criterion_group!(benches, serve_roundtrip);
criterion_main!(benches);
