//! Per-tenant token-bucket rate limiting.
//!
//! Each tenant owns one bucket: `burst` tokens of capacity, refilled
//! continuously at `rate` tokens per second. Admitting a job costs one
//! token; an empty bucket means the tenant is over quota and the
//! submission is shed as [`RateLimited`](crate::RejectReason::RateLimited)
//! with a computed `retry_after_ms`.
//!
//! Time is passed in explicitly (as an [`Instant`]) so the refill logic
//! is deterministic under test.

use std::time::{Duration, Instant};

/// A token bucket: capacity `burst`, refill `rate` tokens/second.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket. `rate <= 0` disables rate limiting entirely (the
    /// bucket always admits); `burst` is clamped to at least one token so
    /// a positive rate can ever admit anything.
    #[must_use]
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let burst = burst.max(1.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled: now,
        }
    }

    /// Tokens available at `now` (after refill).
    #[must_use]
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
    }

    /// Try to take one token at `now`. `Ok(())` admits; `Err(wait)` is
    /// the time until one token will have refilled.
    ///
    /// # Errors
    ///
    /// The bucket is empty; the payload is the suggested retry delay.
    pub fn try_take(&mut self, now: Instant) -> Result<(), Duration> {
        if self.rate <= 0.0 {
            return Ok(()); // rate limiting disabled
        }
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0, t0);
        // The full burst admits back-to-back…
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        // …then the bucket is empty and suggests the refill interval.
        let wait = b.try_take(t0).unwrap_err();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // 100 ms refills exactly one token at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(t1).is_ok());
        assert!(b.try_take(t1).is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000.0, 2.0, t0);
        // A long idle period must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        assert!((b.available(later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0.0, 1.0, t0);
        for _ in 0..1000 {
            assert!(b.try_take(t0).is_ok());
        }
    }
}
