//! # scratch-serve
//!
//! Multi-tenant kernel-execution service for the SCRATCH simulators: a
//! persistent daemon that accepts assembled SI kernels and input buffers
//! over a line-delimited JSON TCP protocol, queues them, executes them on
//! a shared [`scratch-engine`](scratch_engine) pool, and streams outcomes
//! back per job.
//!
//! The serving layer is where the repository's batch machinery meets
//! sustained, adversarial load:
//!
//! * **Admission control** — per-tenant token-bucket quotas
//!   ([`TokenBucket`]), bounded per-tenant queues, and a bounded shared
//!   engine queue. Load beyond capacity is *shed* with typed
//!   `429`-style [`Rejection`]s ([`RejectReason`]) instead of absorbed
//!   into unbounded latency. An accepted job always completes and is
//!   always answered — there is no accepted-then-dropped path.
//! * **Backpressure** — clients see `Rejected` with `retry_after_ms`
//!   hints; the closed-loop [`load`] harness honours them, which is what
//!   makes its saturation curves meaningful.
//! * **Observability** — every decision lands in
//!   [`scratch-metrics`](scratch_metrics): queue depth, per-reason shed
//!   counters, per-tenant end-to-end latency histograms (p50/p95/p99 via
//!   [`Request::Stats`] or Prometheus exposition).
//! * **Graceful drain** — [`Request::Drain`] stops admission, lets every
//!   accepted job finish and be answered, then shuts the daemon down.
//! * **Durability** — with a [`scratch-wal`](scratch_wal) write-ahead log
//!   configured ([`ServeConfig::wal`]), every acked admission survives a
//!   `kill -9`: the restarted daemon replays unfinished jobs (resuming
//!   from durable checkpoints where one exists) exactly once. The
//!   [`run_chaos`] harness SIGKILLs live daemons at seeded points —
//!   including mid-`write(2)` torn appends — and audits that promise.
//!
//! ```no_run
//! use scratch_serve::{Server, ServeConfig, ServeClient};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let mut client = ServeClient::connect(server.addr())?;
//! assert!(client.ping()?);
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod client;
mod load;
mod protocol;
mod quota;
mod server;

pub use chaos::{run_chaos, ChaosPlan, ChaosReport};
pub use client::ServeClient;
pub use load::{run_load, LoadPlan, LoadReport, StepReport};
pub use protocol::{
    fnv1a, JobDone, RejectReason, Rejection, Request, Response, StatsReply, SubmitRequest,
    TenantStats, TenantTop, TopReply,
};
pub use quota::TokenBucket;
pub use server::{ServeConfig, Server};
