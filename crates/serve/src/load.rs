//! Closed-loop load harness: drive a serve daemon with hundreds of
//! concurrent synthetic clients and measure its saturation curve.
//!
//! Each client is *closed-loop*: it keeps exactly one job outstanding,
//! submitting the next only after the previous one's `Done` (or after the
//! backoff a `Rejected` suggests). Offered load therefore scales with the
//! client count, and the curve of completed throughput and latency
//! quantiles against client count is the classic saturation plot: flat
//! latency while capacity lasts, then a knee where queueing dominates and
//! admission control starts shedding.
//!
//! Traffic is mixed seeded kernels from `scratch-check`'s generator, so
//! the daemon sees the same adversarial programs the differential fuzzer
//! uses — and every reported digest is reproducible from the seed.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use scratch_asm::Kernel;
use scratch_check::GenKernel;

use crate::client::ServeClient;
use crate::protocol::SubmitRequest;

/// What to drive at the daemon.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Daemon address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Client counts, one load step per entry (e.g. `[1, 2, 4, 8, 16]`).
    pub steps: Vec<usize>,
    /// How long each step runs.
    pub duration_ms: u64,
    /// Base seed for kernel generation.
    pub seed: u64,
    /// Distinct kernels in the traffic mix.
    pub kernels: usize,
    /// Distinct tenants the clients bill against (round-robin).
    pub tenants: usize,
}

impl Default for LoadPlan {
    fn default() -> LoadPlan {
        LoadPlan {
            addr: "127.0.0.1:7070".to_owned(),
            steps: vec![1, 2, 4, 8, 16, 32],
            duration_ms: 2000,
            seed: 1,
            kernels: 8,
            tenants: 4,
        }
    }
}

/// Measurements of one load step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Concurrent closed-loop clients in this step.
    pub clients: u64,
    /// Step duration in milliseconds (wall clock, measured).
    pub duration_ms: u64,
    /// Submissions attempted (accepted + shed).
    pub attempted: u64,
    /// Submissions the daemon admitted.
    pub accepted: u64,
    /// Submissions the daemon shed (typed rejections).
    pub shed: u64,
    /// Completions whose run failed server-side.
    pub failed: u64,
    /// Jobs that completed during the step.
    pub completed: u64,
    /// Attempted submissions per second (offered load).
    pub offered_per_sec: f64,
    /// Completed jobs per second (goodput).
    pub completed_per_sec: f64,
    /// Simulated instructions retired by completed jobs.
    pub instructions: u64,
    /// Simulated instructions per wall-clock second (aggregate engine
    /// throughput as seen through the service).
    pub instr_per_sec: f64,
    /// End-to-end client-side latency quantiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Mean time completed jobs spent waiting for a worker (admission
    /// wait plus between-slice parking), microseconds.
    pub mean_queue_us: u64,
    /// Mean time completed jobs spent actually executing (checkpoint
    /// plane excluded), microseconds.
    pub mean_run_us: u64,
    /// Mean time completed jobs spent in checkpoint capture/serde and
    /// restore/decode, microseconds.
    pub mean_snap_us: u64,
    /// Connections re-established after a reset (the daemon restarted or
    /// dropped the socket). Clients reconnect with jittered backoff
    /// instead of counting themselves out, so a load step can span a
    /// daemon crash/restart — which is what lets the chaos harness drive
    /// load across kill cycles.
    #[serde(default)]
    pub reconnects: u64,
}

/// The full saturation curve: one [`StepReport`] per client count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Base seed the kernel mix was generated from.
    pub seed: u64,
    /// Distinct kernels in the mix.
    pub kernels: u64,
    /// Distinct tenants.
    pub tenants: u64,
    /// One entry per load step, in plan order.
    pub steps: Vec<StepReport>,
}

/// One pre-built kernel of the traffic mix.
struct Workload {
    kernel: Kernel,
    image: Vec<u32>,
    grid: [u32; 3],
    out_bytes: u64,
}

/// Pre-generate `count` buildable kernels starting at `seed` (seeds whose
/// generated program fails to assemble are skipped, as the fuzzer does).
fn build_mix(seed: u64, count: usize) -> Vec<Workload> {
    let mut mix = Vec::with_capacity(count);
    let mut s = seed;
    while mix.len() < count {
        let gk = GenKernel::generate(s);
        s = s.wrapping_add(1);
        let Ok(kernel) = gk.build() else { continue };
        mix.push(Workload {
            kernel,
            image: gk.image.clone(),
            grid: [gk.wgs, 1, 1],
            out_bytes: gk.out_bytes(),
        });
    }
    mix
}

/// Shared per-step tallies.
#[derive(Default)]
struct Tally {
    attempted: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    completed: AtomicU64,
    instructions: AtomicU64,
    /// Summed server-side breakdown of completed jobs' latency:
    /// queue wait, pure run time, and checkpoint-plane time.
    queue_us: AtomicU64,
    run_us: AtomicU64,
    snap_us: AtomicU64,
    reconnects: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

/// Run the plan against a live daemon and return the saturation curve.
///
/// # Errors
///
/// Failure to connect or a protocol violation; admission rejections are
/// data, not errors.
pub fn run_load(plan: &LoadPlan) -> io::Result<LoadReport> {
    // A connect probe up front turns "no daemon there" into one clean
    // error instead of a failure per client thread.
    ServeClient::connect(&plan.addr)?.ping()?;
    let mix = build_mix(plan.seed, plan.kernels.max(1));
    let tenants = plan.tenants.max(1);

    let mut steps = Vec::with_capacity(plan.steps.len());
    for &clients in &plan.steps {
        let clients = clients.max(1);
        let tally = Tally::default();
        let started = Instant::now();
        let deadline = started + Duration::from_millis(plan.duration_ms.max(1));
        std::thread::scope(|scope| {
            for c in 0..clients {
                let tenant = format!("t{}", c % tenants);
                let tally = &tally;
                let mix = &mix;
                let addr = &plan.addr;
                scope.spawn(move || {
                    client_loop(addr, &tenant, c, mix, deadline, tally);
                });
            }
        });
        let elapsed = started.elapsed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mut lat = tally.latencies_us.into_inner().expect("latency lock");
        lat.sort_unstable();
        let q = |p: f64| {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        let mean = if lat.is_empty() {
            0
        } else {
            lat.iter().sum::<u64>() / lat.len() as u64
        };
        let attempted = tally.attempted.load(Ordering::Acquire);
        let completed = tally.completed.load(Ordering::Acquire);
        let instructions = tally.instructions.load(Ordering::Acquire);
        let mean_over_completed = |sum: &AtomicU64| sum.load(Ordering::Acquire) / completed.max(1);
        let mean_queue_us = mean_over_completed(&tally.queue_us);
        let mean_run_us = mean_over_completed(&tally.run_us);
        let mean_snap_us = mean_over_completed(&tally.snap_us);
        steps.push(StepReport {
            clients: clients as u64,
            duration_ms: elapsed.as_millis().try_into().unwrap_or(u64::MAX),
            attempted,
            accepted: tally.accepted.load(Ordering::Acquire),
            shed: tally.shed.load(Ordering::Acquire),
            failed: tally.failed.load(Ordering::Acquire),
            completed,
            offered_per_sec: attempted as f64 / secs,
            completed_per_sec: completed as f64 / secs,
            instructions,
            instr_per_sec: instructions as f64 / secs,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
            mean_us: mean,
            mean_queue_us,
            mean_run_us,
            mean_snap_us,
            reconnects: tally.reconnects.load(Ordering::Acquire),
        });
    }
    Ok(LoadReport {
        seed: plan.seed,
        kernels: mix.len() as u64,
        tenants: tenants as u64,
        steps,
    })
}

/// One closed-loop client: submit, await the outcome, repeat until the
/// deadline; on rejection honour the server's backoff hint. A connection
/// reset does not count the client out: it reconnects with jittered
/// exponential backoff (so a restarting daemon is not stampeded the
/// instant it rebinds) and keeps driving until the deadline.
fn client_loop(
    addr: &str,
    tenant: &str,
    client_idx: usize,
    mix: &[Workload],
    deadline: Instant,
    tally: &Tally,
) {
    // Cheap per-client splitmix64 for backoff jitter — deterministic per
    // client index, no shared state.
    let mut rng_state = (client_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
    let mut rng = move || {
        rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut client: Option<ServeClient> = None;
    let mut connected_before = false;
    let mut attempts = 0u32; // consecutive failed connects / resets
    let mut i = client_idx; // stagger the mix across clients
    while Instant::now() < deadline {
        let Some(c) = client.as_mut() else {
            match ServeClient::connect(addr) {
                Ok(c) => {
                    if connected_before {
                        tally.reconnects.fetch_add(1, Ordering::AcqRel);
                    }
                    connected_before = true;
                    attempts = 0;
                    client = Some(c);
                }
                Err(_) => {
                    // Daemon down (possibly mid-restart): back off with
                    // jitter and retry until the deadline.
                    attempts = attempts.saturating_add(1);
                    let base = (10u64 << attempts.min(5)).min(200);
                    std::thread::sleep(Duration::from_millis(base + rng() % (base / 2 + 1)));
                }
            }
            continue;
        };
        let w = &mix[i % mix.len()];
        i = i.wrapping_add(1);
        let begun = Instant::now();
        let request = SubmitRequest {
            tenant: tenant.to_owned(),
            label: format!("load-{client_idx}-{i}"),
            kernel: w.kernel.clone(),
            input: w.image.clone(),
            grid: w.grid,
            out_bytes: w.out_bytes,
            system: None,
            return_output: false,
            exec: None,
        };
        tally.attempted.fetch_add(1, Ordering::AcqRel);
        match c.submit(request) {
            Ok(Ok(_job)) => {
                tally.accepted.fetch_add(1, Ordering::AcqRel);
                // Closed loop: wait for this job's outcome before the
                // next submission. Accepted jobs always complete, so
                // this cannot wedge past the engine watchdog.
                match c.recv_done() {
                    Ok(done) => {
                        tally.completed.fetch_add(1, Ordering::AcqRel);
                        tally
                            .instructions
                            .fetch_add(done.instructions, Ordering::AcqRel);
                        tally.queue_us.fetch_add(done.queue_us, Ordering::AcqRel);
                        tally.snap_us.fetch_add(done.snap_us, Ordering::AcqRel);
                        tally
                            .run_us
                            .fetch_add(done.exec_us.saturating_sub(done.snap_us), Ordering::AcqRel);
                        if !done.ok {
                            tally.failed.fetch_add(1, Ordering::AcqRel);
                        }
                        let us = u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
                        tally.latencies_us.lock().expect("latency lock").push(us);
                    }
                    Err(_) => client = None, // connection died mid-job
                }
            }
            Ok(Err(rejection)) => {
                tally.shed.fetch_add(1, Ordering::AcqRel);
                let backoff = rejection
                    .retry_after_ms
                    .map_or(Duration::from_millis(5), Duration::from_millis)
                    .min(Duration::from_millis(50));
                std::thread::sleep(backoff);
            }
            Err(_) => client = None, // connection died
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_skips_unbuildable_seeds_and_fills_count() {
        let mix = build_mix(7, 5);
        assert_eq!(mix.len(), 5);
        for w in &mix {
            assert!(w.out_bytes >= 8192);
            assert_eq!(w.grid[1], 1);
            assert!(!w.image.is_empty());
        }
    }
}
