//! A blocking client for the serve protocol.
//!
//! One TCP connection, line-delimited JSON both ways. Because the server
//! interleaves late `Done` messages with direct answers on the same
//! connection, the client keeps a small reorder queue: reading towards a
//! `Stats` answer stashes any `Done`s that arrive first, and
//! [`ServeClient::recv_done`] consumes the stash before touching the
//! socket.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{JobDone, Rejection, Request, Response, StatsReply, SubmitRequest, TopReply};

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    pending_done: VecDeque<JobDone>,
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl ServeClient {
    /// Connect to a serve daemon.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            stream,
            reader,
            pending_done: VecDeque::new(),
        })
    }

    /// Set a read timeout for every subsequent receive (`None` blocks
    /// forever, the default).
    ///
    /// # Errors
    ///
    /// The underlying `setsockopt` failed.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = serde_json::to_string(request)
            .map_err(|e| bad_data(format!("serialize request: {e}")))?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(line.trim()).map_err(|e| bad_data(format!("malformed response: {e}")))
    }

    /// Read responses until one satisfies `want`, stashing interleaved
    /// `Done`s for [`recv_done`](Self::recv_done). The unwanted response
    /// comes back boxed so the closure's `Err` arm stays pointer-sized.
    fn recv_until<T>(
        &mut self,
        mut want: impl FnMut(Response) -> Result<T, Box<Response>>,
    ) -> io::Result<T> {
        loop {
            match want(self.recv()?) {
                Ok(v) => return Ok(v),
                Err(other) => match *other {
                    Response::Done(done) => self.pending_done.push_back(done),
                    Response::Error { message } => return Err(bad_data(message)),
                    other => {
                        return Err(bad_data(format!("unexpected response: {other:?}")));
                    }
                },
            }
        }
    }

    /// Submit a kernel; returns the admission decision — `Ok(job_id)` or
    /// the typed [`Rejection`].
    ///
    /// # Errors
    ///
    /// Socket or protocol failure (not admission rejection).
    pub fn submit(&mut self, request: SubmitRequest) -> io::Result<Result<u64, Rejection>> {
        self.send(&Request::Submit(request))?;
        self.recv_until(|r| match r {
            Response::Accepted { job } => Ok(Ok(job)),
            Response::Rejected(rejection) => Ok(Err(rejection)),
            other => Err(Box::new(other)),
        })
    }

    /// Receive the next job completion on this connection (possibly one
    /// stashed while waiting for another answer).
    ///
    /// # Errors
    ///
    /// Socket or protocol failure, including a read timeout configured
    /// via [`set_read_timeout`](Self::set_read_timeout).
    pub fn recv_done(&mut self) -> io::Result<JobDone> {
        if let Some(done) = self.pending_done.pop_front() {
            return Ok(done);
        }
        self.recv_until(|r| match r {
            Response::Done(done) => Ok(done),
            other => Err(Box::new(other)),
        })
    }

    /// Liveness probe; `true` on `Pong`.
    ///
    /// # Errors
    ///
    /// Socket or protocol failure.
    pub fn ping(&mut self) -> io::Result<bool> {
        self.send(&Request::Ping)?;
        self.recv_until(|r| match r {
            Response::Pong => Ok(true),
            other => Err(Box::new(other)),
        })
    }

    /// Fetch the server's live statistics.
    ///
    /// # Errors
    ///
    /// Socket or protocol failure.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        self.send(&Request::Stats)?;
        self.recv_until(|r| match r {
            Response::Stats(stats) => Ok(stats),
            other => Err(Box::new(other)),
        })
    }

    /// Fetch the live introspection view (per-tenant queues, rolling SLO
    /// telemetry, aggregated instruction profile).
    ///
    /// # Errors
    ///
    /// Socket or protocol failure.
    pub fn top(&mut self) -> io::Result<TopReply> {
        self.send(&Request::Top)?;
        self.recv_until(|r| match r {
            Response::Top(top) => Ok(top),
            other => Err(Box::new(other)),
        })
    }

    /// Request cancellation of an accepted job; `true` if the job was
    /// still live and the cancellation was delivered. The job's `Done`
    /// (with `ok: false`, error `"cancelled"`) still follows via
    /// [`recv_done`](Self::recv_done).
    ///
    /// # Errors
    ///
    /// Socket or protocol failure.
    pub fn cancel(&mut self, job: u64) -> io::Result<bool> {
        self.send(&Request::Cancel { job })?;
        self.recv_until(|r| match r {
            Response::Cancelled { job: j, cancelled } if j == job => Ok(cancelled),
            other => Err(Box::new(other)),
        })
    }

    /// Request a graceful drain; returns the number of jobs still pending
    /// at the time of the request.
    ///
    /// # Errors
    ///
    /// Socket or protocol failure.
    pub fn drain(&mut self) -> io::Result<u64> {
        self.send(&Request::Drain)?;
        self.recv_until(|r| match r {
            Response::Draining { pending } => Ok(pending),
            other => Err(Box::new(other)),
        })
    }
}
