//! Chaos harness: prove the WAL's exactly-once recovery promise under
//! violent failure.
//!
//! The driver runs a real serve daemon *as a child process* (so it can be
//! SIGKILLed mid-anything), drives seeded load at it with reconnecting
//! clients, kills it at seeded random points — including mid-append, via
//! the `SCRATCH_WAL_CRASH` torn-write hook — restarts it against the same
//! `--wal-dir`, and finally audits the surviving log against the invariant
//! a production inference stack needs from in-flight request recovery:
//!
//! * **Exactly-once** — every acked admission completes exactly once
//!   (one completion record per id, no duplicates, no losses);
//! * **Bit-identity** — every completion's digest equals a direct
//!   in-process run of the same kernel (replayed and checkpoint-resumed
//!   jobs included);
//! * **No phantom work** — no completion for an id that was never
//!   admitted, and no client ever receives a `Done` for a job it was not
//!   acked.
//!
//! The whole campaign is deterministic in its *schedule* (kernels, kill
//! delays, tear points all derive from [`ChaosPlan::seed`]); the precise
//! instruction the daemon dies on still varies run to run, which is the
//! point — the invariant must hold for every interleaving.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use scratch_check::GenKernel;
use scratch_system::{System, SystemConfig, SystemKind};
use scratch_wal::{verify, WalState};

use crate::client::ServeClient;
use crate::protocol::{fnv1a, SubmitRequest};

/// The campaign schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for everything random: the kernel mix, kill delays, tear
    /// points.
    pub seed: u64,
    /// SIGKILL/restart cycles before the final drain cycle.
    pub cycles: u32,
    /// Distinct jobs the campaign must complete at least once.
    pub jobs: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Distinct tenants the jobs bill against.
    pub tenants: usize,
    /// Daemon address, fixed across restarts (the clients reconnect to
    /// it).
    pub addr: String,
    /// The write-ahead log directory shared by every daemon lifetime.
    pub wal_dir: PathBuf,
    /// Preemption quantum handed to the daemon — small, so jobs slice and
    /// checkpoint records land in the log for recovery to resume from.
    pub quantum: u64,
    /// Per-cycle uptime window `(min_ms, max_ms)` before the SIGKILL.
    pub uptime_ms: (u64, u64),
    /// Install the `SCRATCH_WAL_CRASH` mid-append tear-and-abort hook on
    /// every `n`-th kill cycle (0 = never): the daemon dies *inside* a
    /// `write(2)`, leaving a torn frame exactly as a power cut would.
    pub mid_append_every: u32,
    /// Command prefix that launches a serve daemon (binary plus any extra
    /// flags). The harness appends `--addr`, `--wal-dir` and `--quantum`
    /// itself.
    pub daemon: Vec<String>,
}

impl Default for ChaosPlan {
    fn default() -> ChaosPlan {
        ChaosPlan {
            seed: 42,
            cycles: 5,
            jobs: 96,
            clients: 4,
            tenants: 3,
            addr: "127.0.0.1:7999".to_owned(),
            wal_dir: std::env::temp_dir().join("scratch-chaos-wal"),
            quantum: 400,
            // Short lifetimes: the kill must land while jobs are in
            // flight, or nothing ever needs replaying.
            uptime_ms: (60, 350),
            mid_append_every: 2,
            daemon: Vec::new(),
        }
    }
}

/// What the campaign observed, and the verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The plan's seed.
    pub seed: u64,
    /// Kill cycles driven (excluding the final drain cycle).
    pub cycles: u32,
    /// SIGKILLs delivered.
    pub kills: u32,
    /// Cycles where the mid-append tear-and-abort hook was armed.
    pub mid_append_crashes: u32,
    /// Distinct jobs in the campaign.
    pub jobs: u64,
    /// Distinct admissions acked to a client across all daemon lifetimes.
    pub acked: u64,
    /// Admission records in the final log.
    pub admitted: u64,
    /// Completion records in the final log.
    pub completions: u64,
    /// Checkpoint records in the final log (mid-run durable state).
    pub checkpoints: u64,
    /// Submissions of a job that had already been acked in an earlier
    /// daemon lifetime (the client could not know — its ack or `Done` was
    /// lost to a crash).
    pub resubmits: u64,
    /// Client reconnections after a connection reset.
    pub reconnects: u64,
    /// Ids with more than one completion record — exactly-once
    /// violations. Must be 0.
    pub duplicates: u64,
    /// Acked admissions with no completion record after the final drain —
    /// lost jobs. Must be 0.
    pub losses: u64,
    /// Completions whose digest differs from the direct in-process run of
    /// the same kernel. Must be 0.
    pub digest_mismatches: u64,
    /// Completion records with `ok: false`. Must be 0 (nothing in this
    /// campaign legitimately fails).
    pub failed_jobs: u64,
    /// Completion records whose id was never admitted. Must be 0.
    pub orphan_completions: u64,
    /// Admitted jobs with no completion after the final drain. Must be 0.
    pub unfinished: u64,
    /// `Done`s a client received for a job it was never acked. Must be 0.
    pub unacked_done: u64,
    /// A job id acked twice across daemon lifetimes (the recovered id
    /// floor failed). Must be 0.
    pub id_reuse: u64,
    /// The final log still carries damage after the last recovery. Must
    /// be `false`.
    pub damage: bool,
    /// The verdict: every invariant above held.
    pub exactly_once: bool,
    /// Campaign wall clock, milliseconds.
    pub wall_ms: u64,
}

impl ChaosReport {
    /// `true` when every invariant held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.exactly_once
    }

    /// Multi-line human summary; the last line is the grep-stable
    /// verdict.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "chaos: seed {} — {} kill cycles ({} SIGKILL, {} armed mid-append), {} jobs, {} ms\n",
            self.seed, self.cycles, self.kills, self.mid_append_crashes, self.jobs, self.wall_ms
        ));
        s.push_str(&format!(
            "chaos: log holds {} admissions / {} completions / {} checkpoints; \
             {} acked, {} resubmits, {} reconnects\n",
            self.admitted,
            self.completions,
            self.checkpoints,
            self.acked,
            self.resubmits,
            self.reconnects
        ));
        let verdict = if self.exactly_once {
            "chaos: exactly-once OK".to_owned()
        } else {
            "chaos: exactly-once VIOLATED".to_owned()
        };
        s.push_str(&format!(
            "{verdict} — {} duplicates, {} losses, {} digest mismatches, {} failed, \
             {} orphans, {} unfinished, {} unacked-done, {} id-reuse, damage: {}",
            self.duplicates,
            self.losses,
            self.digest_mismatches,
            self.failed_jobs,
            self.orphan_completions,
            self.unfinished,
            self.unacked_done,
            self.id_reuse,
            self.damage
        ));
        s
    }
}

/// One job of the campaign, with its ground-truth digest from a direct
/// in-process run.
struct JobSpec {
    label: String,
    tenant: String,
    kernel: scratch_asm::Kernel,
    image: Vec<u32>,
    grid: [u32; 3],
    out_bytes: u64,
    digest: u64,
}

impl JobSpec {
    fn request(&self) -> SubmitRequest {
        SubmitRequest {
            tenant: self.tenant.clone(),
            label: self.label.clone(),
            kernel: self.kernel.clone(),
            input: self.image.clone(),
            grid: self.grid,
            out_bytes: self.out_bytes,
            system: None,
            return_output: false,
            exec: None,
        }
    }
}

/// splitmix64 — the repo's stock deterministic stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build the job mix: seeded generated kernels (skipping unbuildable
/// seeds, as the fuzzer does), `wgs` stretched so small quanta force
/// multi-slice runs, each with its direct-run digest.
fn build_specs(seed: u64, jobs: usize, tenants: usize) -> io::Result<Vec<JobSpec>> {
    let mut specs = Vec::with_capacity(jobs);
    let mut s = seed;
    while specs.len() < jobs {
        let idx = specs.len();
        let mut gk = GenKernel::generate(s);
        s = s.wrapping_add(1);
        gk.wgs = 2 + (idx as u32 % 3); // 2..=4 workgroups
        let Ok(kernel) = gk.build() else { continue };
        let digest = direct_digest(&gk, &kernel)?;
        specs.push(JobSpec {
            label: format!("chaos-{idx}"),
            tenant: format!("t{}", idx % tenants.max(1)),
            kernel,
            image: gk.image.clone(),
            grid: [gk.wgs, 1, 1],
            out_bytes: gk.out_bytes(),
            digest,
        });
    }
    Ok(specs)
}

/// Mirror of the server's execution path, run directly in-process — the
/// ground truth every completion digest must equal bit-for-bit.
fn direct_digest(gk: &GenKernel, kernel: &scratch_asm::Kernel) -> io::Result<u64> {
    let config = SystemConfig::preset(SystemKind::DcdPm);
    let mut sys = System::new(config, kernel).map_err(io::Error::other)?;
    let out = sys.alloc(gk.out_bytes().max(4));
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    sys.dispatch([gk.wgs, 1, 1]).map_err(io::Error::other)?;
    let words = sys.read_words(out, (gk.out_bytes().max(4) / 4) as usize);
    Ok(fnv1a(&words))
}

/// Client-side shared state, accumulated across every daemon lifetime.
struct Shared {
    specs: Vec<JobSpec>,
    /// Jobs not yet confirmed complete by a client-received `Done`.
    remaining: Mutex<BTreeSet<usize>>,
    /// Every acked admission: server job id → spec index.
    acked: Mutex<BTreeMap<u64, usize>>,
    /// Spec indices acked at least once (resubmission detector).
    ever_acked: Mutex<BTreeSet<usize>>,
    stop: AtomicBool,
    resubmits: AtomicU64,
    reconnects: AtomicU64,
    unacked_done: AtomicU64,
    id_reuse: AtomicU64,
    client_mismatch: AtomicU64,
}

/// One closed-loop chaos client: claims jobs `idx % clients == c`,
/// submits, awaits the `Done`, repeats. `reconnect: false` (kill cycles)
/// dies with its connection; `reconnect: true` (the drain cycle) keeps
/// reconnecting until its share of jobs is empty.
#[allow(clippy::too_many_lines)]
fn client_loop(shared: &Shared, addr: &str, c: usize, clients: usize, reconnect: bool) {
    let mut rng_state = (c as u64).wrapping_mul(0x517c_c1b7_2722_0a95) ^ 0x5ca1ab1e;
    let mut client: Option<ServeClient> = None;
    let mut connected_before = false;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // My next unfinished job.
        let idx = {
            let rem = shared.remaining.lock().expect("remaining lock");
            rem.iter().copied().find(|i| i % clients == c)
        };
        let Some(idx) = idx else { return };
        if client.is_none() {
            match ServeClient::connect(addr) {
                Ok(conn) => {
                    if connected_before {
                        shared.reconnects.fetch_add(1, Ordering::AcqRel);
                    }
                    connected_before = true;
                    // Safety net so a wedged daemon cannot hang the
                    // campaign; treated as a dead connection.
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(20)));
                    client = Some(conn);
                }
                Err(_) => {
                    if !reconnect {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20 + mix(&mut rng_state) % 60));
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");
        match conn.submit(shared.specs[idx].request()) {
            Ok(Ok(id)) => {
                {
                    let mut acked = shared.acked.lock().expect("acked lock");
                    if acked.insert(id, idx).is_some() {
                        // A restarted daemon re-minted an id an earlier
                        // lifetime already acked: the recovery id floor
                        // failed.
                        shared.id_reuse.fetch_add(1, Ordering::AcqRel);
                    }
                }
                if !shared
                    .ever_acked
                    .lock()
                    .expect("ever-acked lock")
                    .insert(idx)
                {
                    shared.resubmits.fetch_add(1, Ordering::AcqRel);
                }
                match conn.recv_done() {
                    Ok(done) => {
                        let owner = shared
                            .acked
                            .lock()
                            .expect("acked lock")
                            .get(&done.job)
                            .copied();
                        match owner {
                            Some(done_idx) => {
                                if !done.ok || done.digest != shared.specs[done_idx].digest {
                                    shared.client_mismatch.fetch_add(1, Ordering::AcqRel);
                                }
                                shared
                                    .remaining
                                    .lock()
                                    .expect("remaining lock")
                                    .remove(&done_idx);
                            }
                            None => {
                                shared.unacked_done.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    Err(_) => {
                        client = None; // connection died mid-job
                        if !reconnect {
                            return;
                        }
                    }
                }
            }
            Ok(Err(rejection)) => {
                let backoff = rejection.retry_after_ms.map_or(5, |ms| ms.min(50));
                std::thread::sleep(Duration::from_millis(backoff + mix(&mut rng_state) % 10));
            }
            Err(_) => {
                client = None;
                if !reconnect {
                    return;
                }
            }
        }
    }
}

fn spawn_daemon(plan: &ChaosPlan, crash_env: Option<&str>) -> io::Result<Child> {
    let mut cmd = Command::new(&plan.daemon[0]);
    cmd.args(&plan.daemon[1..])
        .args(["--addr", &plan.addr])
        .args(["--wal-dir", &plan.wal_dir.display().to_string()])
        .args(["--quantum", &plan.quantum.to_string()])
        .stdin(Stdio::null());
    match crash_env {
        Some(spec) => cmd.env("SCRATCH_WAL_CRASH", spec),
        None => cmd.env_remove("SCRATCH_WAL_CRASH"),
    };
    cmd.spawn()
}

/// Poll until the daemon answers a ping. `Ok(false)` means the child
/// exited before becoming ready (e.g. an armed tear fired during replay);
/// the caller restarts it clean.
fn wait_ready(addr: &str, child: &mut Child) -> io::Result<bool> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if child.try_wait()?.is_some() {
            return Ok(false);
        }
        if let Ok(mut c) = ServeClient::connect(addr) {
            let _ = c.set_read_timeout(Some(Duration::from_secs(2)));
            if c.ping().unwrap_or(false) {
                return Ok(true);
            }
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            return Err(io::Error::other(format!(
                "daemon at {addr} not ready within 20s"
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Run the campaign: kill cycles, a final drain cycle, then the audit.
///
/// # Errors
///
/// Harness-level failure only (cannot spawn or reach the daemon, direct
/// runs fail, the log is unreadable). *Invariant violations are not
/// errors* — they land in the report with `exactly_once: false`.
#[allow(clippy::too_many_lines)]
pub fn run_chaos(plan: &ChaosPlan) -> io::Result<ChaosReport> {
    if plan.daemon.is_empty() {
        return Err(io::Error::other(
            "ChaosPlan::daemon must name the serve daemon command",
        ));
    }
    let started = Instant::now();
    std::fs::create_dir_all(&plan.wal_dir)?;
    let clients = plan.clients.max(1);
    let specs = build_specs(plan.seed, plan.jobs.max(1), plan.tenants)?;
    let shared = Shared {
        remaining: Mutex::new((0..specs.len()).collect()),
        specs,
        acked: Mutex::new(BTreeMap::new()),
        ever_acked: Mutex::new(BTreeSet::new()),
        stop: AtomicBool::new(false),
        resubmits: AtomicU64::new(0),
        reconnects: AtomicU64::new(0),
        unacked_done: AtomicU64::new(0),
        id_reuse: AtomicU64::new(0),
        client_mismatch: AtomicU64::new(0),
    };
    let mut rng = plan.seed ^ 0xc4a0_5c4a_05c4_a05c;
    let mut kills = 0u32;
    let mut mid_append = 0u32;

    for cycle in 0..plan.cycles {
        let armed = plan.mid_append_every > 0 && (cycle + 1) % plan.mid_append_every == 0;
        let crash_spec = armed.then(|| {
            mid_append += 1;
            // Tear a frame `at` appends into this lifetime, keeping a
            // few bytes — both drawn from the seed.
            format!("{}:{}", 5 + mix(&mut rng) % 40, 1 + mix(&mut rng) % 14)
        });
        let mut child = spawn_daemon(plan, crash_spec.as_deref())?;
        if !wait_ready(&plan.addr, &mut child)? {
            // The armed tear fired before the daemon was ready (during
            // replay appends). That *is* a crash cycle; restart clean.
            let _ = child.wait();
            child = spawn_daemon(plan, None)?;
            if !wait_ready(&plan.addr, &mut child)? {
                return Err(io::Error::other("daemon died twice before ready"));
            }
        }
        shared.stop.store(false, Ordering::Release);
        let (lo, hi) = plan.uptime_ms;
        let uptime = lo + mix(&mut rng) % (hi.saturating_sub(lo) + 1);
        std::thread::scope(|s| {
            for c in 0..clients {
                let shared = &shared;
                let addr = plan.addr.as_str();
                s.spawn(move || client_loop(shared, addr, c, clients, false));
            }
            std::thread::sleep(Duration::from_millis(uptime));
            let _ = child.kill(); // SIGKILL on unix
            shared.stop.store(true, Ordering::Release);
        });
        let _ = child.wait();
        kills += 1;
    }

    // Final cycle: restart, drive every remaining job to completion, then
    // drain gracefully.
    let mut child = spawn_daemon(plan, None)?;
    if !wait_ready(&plan.addr, &mut child)? {
        return Err(io::Error::other("final daemon lifetime died before ready"));
    }
    shared.stop.store(false, Ordering::Release);
    std::thread::scope(|s| {
        for c in 0..clients {
            let shared = &shared;
            let addr = plan.addr.as_str();
            s.spawn(move || client_loop(shared, addr, c, clients, true));
        }
    });
    let mut ctl = ServeClient::connect(&plan.addr)?;
    ctl.drain()?;
    let _ = child.wait();

    // The audit: the log is the ledger.
    let state = WalState::read(&plan.wal_dir).map_err(io::Error::other)?;
    let vr = verify(&plan.wal_dir).map_err(io::Error::other)?;
    let spec_of_label = |label: &str| -> Option<usize> {
        label
            .strip_prefix("chaos-")
            .and_then(|d| d.parse::<usize>().ok())
            .filter(|&i| i < shared.specs.len())
    };
    let mut digest_mismatches = shared.client_mismatch.load(Ordering::Acquire);
    let mut failed_jobs = 0u64;
    let mut completions = 0u64;
    for (id, metas) in &state.completions {
        completions += metas.len() as u64;
        let expected = state
            .admitted
            .get(id)
            .and_then(|(_, label)| spec_of_label(label))
            .map(|i| shared.specs[i].digest);
        for meta in metas {
            if !meta.ok {
                failed_jobs += 1;
            } else if expected.is_some_and(|d| d != meta.digest) {
                digest_mismatches += 1;
            }
        }
    }
    let acked = shared.acked.lock().expect("acked lock");
    let losses = acked
        .keys()
        .filter(|id| !state.completions.contains_key(id))
        .count() as u64;

    let report = ChaosReport {
        seed: plan.seed,
        cycles: plan.cycles,
        kills,
        mid_append_crashes: mid_append,
        jobs: shared.specs.len() as u64,
        acked: acked.len() as u64,
        admitted: state.admitted.len() as u64,
        completions,
        checkpoints: state.checkpoints.values().sum(),
        resubmits: shared.resubmits.load(Ordering::Acquire),
        reconnects: shared.reconnects.load(Ordering::Acquire),
        duplicates: vr.duplicate_completions,
        losses,
        digest_mismatches,
        failed_jobs,
        orphan_completions: vr.orphan_completions,
        unfinished: vr.unfinished,
        unacked_done: shared.unacked_done.load(Ordering::Acquire),
        id_reuse: shared.id_reuse.load(Ordering::Acquire),
        damage: vr.damage.is_some(),
        exactly_once: false,
        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
    };
    let exactly_once = report.duplicates == 0
        && report.losses == 0
        && report.digest_mismatches == 0
        && report.failed_jobs == 0
        && report.orphan_completions == 0
        && report.unfinished == 0
        && report.unacked_done == 0
        && report.id_reuse == 0
        && !report.damage;
    Ok(ChaosReport {
        exactly_once,
        ..report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_labeled() {
        let a = build_specs(7, 6, 3).expect("build");
        let b = build_specs(7, 6, 3).expect("build");
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.digest, y.digest, "direct digests are reproducible");
        }
        assert_eq!(a[0].label, "chaos-0");
        assert_eq!(a[5].tenant, "t2");
        assert!(a.iter().all(|s| s.out_bytes >= 4));
    }

    #[test]
    fn report_summary_carries_the_grep_stable_verdict() {
        let mut r = ChaosReport {
            exactly_once: true,
            ..ChaosReport::default()
        };
        assert!(r.summary().contains("chaos: exactly-once OK"));
        r.exactly_once = false;
        r.losses = 2;
        assert!(r.summary().contains("chaos: exactly-once VIOLATED"));
        assert!(r.summary().contains("2 losses"));
    }

    #[test]
    fn empty_daemon_command_is_a_typed_error() {
        let plan = ChaosPlan {
            jobs: 1,
            ..ChaosPlan::default()
        };
        let err = run_chaos(&plan).expect_err("no daemon command");
        assert!(err.to_string().contains("daemon"));
    }
}
