//! The daemon: TCP accept loop, per-connection protocol handling,
//! admission control, engine execution, and graceful drain.
//!
//! ## Threading model
//!
//! One accept thread; two threads per connection (a reader that parses
//! request lines and makes admission decisions, and a writer that owns
//! the socket's send side, fed by an mpsc channel); one shared
//! *preemptive* `scratch-engine` pool executing the admitted jobs in
//! checkpointed slices; and one router thread that consumes the pool's
//! outcome stream and serializes each [`Response::Done`] into the
//! originating connection's channel. A disconnected client simply makes
//! that send a no-op (the job itself always completes; accepted work is
//! never dropped).
//!
//! ## Preemptive execution
//!
//! A job does not own a worker for its whole run. Each admitted kernel
//! executes in quanta of [`ServeConfig::quantum_cycles`] simulated
//! cycles: when a quantum expires the simulator pauses at an instruction
//! boundary, the full architectural state is captured as a
//! `scratch_system::SystemCheckpoint`, serialized to the compact
//! `scratch-snap` binary form, and the `System` is dropped; the next
//! slice rebuilds it from those bytes and resumes. Checkpoint/restore is
//! bit-identical (outputs *and* cycle counts), so sliced served results
//! match offline runs exactly. Between slices the scheduler round-robins
//! across tenants, and a [`Request::Cancel`] takes effect at the next
//! quantum boundary — long kernels can be stopped mid-flight without
//! wedging a worker or blocking a drain.
//!
//! ## Admission control
//!
//! A submission passes four gates, in order: the server is not draining;
//! the request is well-formed and within size limits; the shared engine
//! queue has room (`queue_cap`) and the tenant is below its own bound
//! (`tenant_cap`); and the tenant's token bucket has a token. Each gate
//! sheds with its own typed [`RejectReason`] so clients can tell "back
//! off" from "give up".

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scratch_engine::{JobError, JobOutcome, PreemptiveEngine, PreemptiveHandle, Slice};
use scratch_metrics::{Counter, Gauge, Histogram, Registry};
use scratch_profile::{
    InstrSignature, JobSpans, SloSnapshot, SloWindow, SpanKind, SpanRecorder, SpanTrack,
};
use scratch_system::{
    CuError, DispatchProgress, ExecMode, System, SystemCheckpoint, SystemConfig, SystemError,
    SystemKind,
};
use scratch_wal::{CrashOnAppend, PendingEntry, Record, RecoveryReport, Wal, WalConfig};

use crate::protocol::{
    fnv1a, JobDone, RejectReason, Rejection, Request, Response, StatsReply, SubmitRequest,
    TenantStats, TenantTop, TopReply,
};
use crate::quota::TokenBucket;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine pool workers (`0` = one per available core).
    pub workers: usize,
    /// Maximum jobs waiting in the shared engine queue; beyond this every
    /// tenant is shed with [`RejectReason::Overloaded`].
    pub queue_cap: usize,
    /// Maximum jobs one tenant may have queued or running; beyond it the
    /// tenant is shed with [`RejectReason::TenantQueueFull`].
    pub tenant_cap: usize,
    /// Token-bucket refill rate per tenant, jobs/second (`0` disables
    /// rate limiting).
    pub rate: f64,
    /// Token-bucket capacity per tenant (burst allowance).
    pub burst: f64,
    /// Per-job simulated-cycle budget; a kernel that exceeds it resolves
    /// to a failed [`JobDone`] instead of wedging a worker.
    pub watchdog_cycles: u64,
    /// Simulated cycles one execution slice may run before the job is
    /// checkpointed and the worker moves to the next tenant's work.
    /// Smaller quanta mean fairer scheduling and faster cancellation at
    /// the cost of more checkpoint/restore round-trips.
    pub quantum_cycles: u64,
    /// Largest accepted input buffer, in words.
    pub max_input_words: usize,
    /// Largest accepted output allocation, in bytes.
    pub max_out_bytes: u64,
    /// Registry the serving metrics publish into (`None` = the
    /// process-global registry).
    pub registry: Option<Registry>,
    /// Record a span timeline (admission → reply) for every job into an
    /// internal recorder, drained via [`Server::take_spans`]. Purely
    /// observational: enabling it changes no reported cycles or outputs.
    pub spans: bool,
    /// Run jobs with the continuous profiler on (per-PC retire counters
    /// in the cycle tier, per-block dispatch counters in the fast tier)
    /// and fold each completed job's [`InstrSignature`] into its
    /// tenant's aggregate. Also purely observational.
    pub profile: bool,
    /// Journal every admission, completion and quantum-boundary
    /// checkpoint into a durable write-ahead log at this location
    /// (`None` = no durability). On bind the log is recovered first:
    /// unfinished jobs are re-admitted (resuming from their newest
    /// durable checkpoint where one exists), completed ones are deduped
    /// by request id, and the torn tail — if a crash landed mid-append —
    /// is truncated. See [`Server::recovery_report`].
    pub wal: Option<WalConfig>,
    /// Close a connection that has sent no request *and* has no job in
    /// flight for this long, shedding it with
    /// [`RejectReason::IdleTimeout`] (`None` = connections may idle
    /// forever, the historical behaviour). Clients blocked on a `Done`
    /// of a long-running job are never idle-closed: in-flight jobs hold
    /// the connection open.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_cap: 256,
            tenant_cap: 64,
            rate: 0.0,
            burst: 32.0,
            watchdog_cycles: scratch_engine::DEFAULT_WATCHDOG_CYCLES,
            quantum_cycles: 200_000,
            max_input_words: 1 << 20,
            max_out_bytes: 64 << 20,
            registry: None,
            spans: false,
            profile: false,
            wal: None,
            idle_timeout: None,
        }
    }
}

/// Registry handles for the serving layer's counters.
struct ServeMetrics {
    submitted: Counter,
    accepted: Counter,
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    shed: [(RejectReason, Counter); 7],
    queue_depth: Gauge,
    in_flight: Gauge,
    connections: Gauge,
    queue_us: Histogram,
}

/// Registry handles for the checkpoint/restore plane of preemptive
/// execution.
struct SnapMetrics {
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    resume_us: Histogram,
}

impl SnapMetrics {
    fn new(r: &Registry) -> SnapMetrics {
        SnapMetrics {
            checkpoints: r.counter(
                "scratch_snap_checkpoints_total",
                "System checkpoints captured at preemption boundaries",
            ),
            checkpoint_bytes: r.counter(
                "scratch_snap_checkpoint_bytes_total",
                "Serialized checkpoint bytes produced",
            ),
            resume_us: r.histogram(
                "scratch_snap_resume_micros",
                "Microseconds to decode a checkpoint and rebuild the system",
            ),
        }
    }
}

/// Registry handles for the durability plane.
struct WalMetrics {
    appends: Counter,
    appended_bytes: Counter,
    fsyncs: Counter,
    append_errors: Counter,
    replayed: Counter,
    resumed: Counter,
    deduped: Counter,
    recovery_ms: Gauge,
}

impl WalMetrics {
    fn new(r: &Registry) -> WalMetrics {
        WalMetrics {
            appends: r.counter(
                "scratch_wal_appends_total",
                "Records appended to the write-ahead log",
            ),
            appended_bytes: r.counter(
                "scratch_wal_appended_bytes_total",
                "Frame bytes appended to the write-ahead log",
            ),
            fsyncs: r.counter(
                "scratch_wal_fsyncs_total",
                "Appends that paid an fsync under the configured policy",
            ),
            append_errors: r.counter(
                "scratch_wal_append_errors_total",
                "Write-ahead log appends that failed (durability degraded)",
            ),
            replayed: r.counter(
                "scratch_wal_replayed_jobs_total",
                "Unfinished jobs re-admitted from the log at startup",
            ),
            resumed: r.counter(
                "scratch_wal_resumed_jobs_total",
                "Replayed jobs that resumed from a durable checkpoint",
            ),
            deduped: r.counter(
                "scratch_wal_deduped_jobs_total",
                "Logged jobs whose completion record suppressed re-execution",
            ),
            recovery_ms: r.gauge(
                "scratch_wal_recovery_ms",
                "Wall-clock milliseconds the last recovery scan took",
            ),
        }
    }
}

/// The serving side of the write-ahead log: a mutex around the writer
/// (appends from the admission path, the router and engine workers are
/// serialized here) plus the `scratch_wal_*` metrics.
struct WalPlane {
    wal: Mutex<Wal>,
    metrics: WalMetrics,
}

impl WalPlane {
    /// Append one record, best effort. A failed append loudly degrades
    /// durability (counter + stderr) rather than wedging the serving
    /// path: the job still runs, it is just no longer replayable.
    fn append(&self, record: &Record) {
        let mut wal = self.wal.lock().expect("wal lock");
        match wal.append(record) {
            Ok(info) => {
                self.metrics.appends.inc();
                self.metrics.appended_bytes.add(info.bytes);
                if info.synced {
                    self.metrics.fsyncs.inc();
                }
            }
            Err(e) => {
                self.metrics.append_errors.inc();
                eprintln!("scratch-serve: wal append failed: {e}");
            }
        }
    }

    /// Force an fsync (drain/shutdown path).
    fn sync(&self) {
        if let Err(e) = self.wal.lock().expect("wal lock").sync() {
            eprintln!("scratch-serve: wal sync failed: {e}");
        }
    }
}

impl ServeMetrics {
    fn new(r: &Registry) -> ServeMetrics {
        let shed_counter = |reason: RejectReason| {
            (
                reason,
                r.counter_with(
                    "scratch_serve_shed_total",
                    "Submissions shed by admission control",
                    &[("reason", reason.name())],
                ),
            )
        };
        ServeMetrics {
            submitted: r.counter(
                "scratch_serve_submitted_total",
                "Submissions received (admitted + shed)",
            ),
            accepted: r.counter(
                "scratch_serve_accepted_total",
                "Submissions admitted to the engine queue",
            ),
            completed: r.counter(
                "scratch_serve_completed_total",
                "Accepted jobs that produced a Done (ok or failed)",
            ),
            failed: r.counter(
                "scratch_serve_failed_total",
                "Completed jobs whose run failed (simulator error or watchdog)",
            ),
            cancelled: r.counter(
                "scratch_serve_cancelled_total",
                "Completed jobs that ended via client cancellation",
            ),
            shed: [
                shed_counter(RejectReason::RateLimited),
                shed_counter(RejectReason::TenantQueueFull),
                shed_counter(RejectReason::Overloaded),
                shed_counter(RejectReason::Draining),
                shed_counter(RejectReason::TooLarge),
                shed_counter(RejectReason::Invalid),
                shed_counter(RejectReason::IdleTimeout),
            ],
            queue_depth: r.gauge(
                "scratch_serve_queue_depth",
                "Admitted jobs waiting for an engine worker",
            ),
            in_flight: r.gauge(
                "scratch_serve_in_flight",
                "Admitted jobs executing right now",
            ),
            connections: r.gauge("scratch_serve_connections", "Open client connections"),
            queue_us: r.histogram(
                "scratch_serve_queue_micros",
                "Microseconds admitted jobs waited for an engine worker",
            ),
        }
    }

    fn shed(&self, reason: RejectReason) -> &Counter {
        &self
            .shed
            .iter()
            .find(|(r, _)| *r == reason)
            .expect("every reason has a counter")
            .1
    }
}

/// SLO gauge handles for one tenant, refreshed from its rolling window
/// at most every [`SLO_REFRESH`].
#[derive(Clone)]
struct SloGauges {
    p99_us: Gauge,
    shed_ratio: Gauge,
    budget_burn: Gauge,
}

impl SloGauges {
    fn publish(&self, snap: &SloSnapshot) {
        self.p99_us.set(snap.p99_us as f64);
        self.shed_ratio.set(snap.shed_ratio);
        self.budget_burn.set(snap.budget_burn);
    }
}

/// Minimum interval between gauge recomputations from a tenant's rolling
/// window — keeps the per-completion hook O(1) under load.
const SLO_REFRESH: Duration = Duration::from_millis(200);

/// Per-tenant serving state. The registry handles double as the stats
/// source, so counters exist in exactly one place.
struct Tenant {
    bucket: TokenBucket,
    /// Jobs queued or running (the `tenant_cap` gate).
    in_flight: Arc<AtomicU64>,
    accepted: Counter,
    completed: Counter,
    shed: Counter,
    /// End-to-end latency, admission → Done, in microseconds.
    latency_us: Histogram,
    /// Rolling SLO window (last 60 s of completions and sheds).
    slo: Arc<Mutex<SloWindow>>,
    slo_gauges: SloGauges,
    /// The profiler's per-tenant aggregate: every completed job's
    /// signature merged in (stays empty with profiling off).
    signature: Arc<Mutex<InstrSignature>>,
}

impl Tenant {
    /// Record a shed in the rolling window and refresh the gauges if due.
    fn note_shed(&self) {
        let mut slo = self.slo.lock().expect("tenant slo lock");
        slo.record_shed();
        if let Some(snap) = slo.maybe_refresh(SLO_REFRESH) {
            self.slo_gauges.publish(&snap);
        }
    }
}

/// What a completed run resolves to. (Named to stay clear of
/// `scratch_engine::JobOutcome`, which wraps engine-level delivery.)
struct RunOutcome {
    cycles: u64,
    instructions: u64,
    words: Vec<u32>,
    /// Microseconds spent capturing/serializing and decoding/restoring
    /// checkpoints across all slices.
    snap_us: u64,
    /// Execution slices the run took.
    slices: u64,
    /// The job's instruction-usage signature (profiling on only).
    signature: Option<InstrSignature>,
}

/// What a slice job resolves to: the run's [`RunOutcome`] or a failure
/// description. Cancellation and panics arrive as the outer [`JobError`]
/// instead.
type JobResult = Result<RunOutcome, String>;

/// Everything the router needs to answer and account for one admitted
/// job once its outcome arrives, keyed by engine job id.
struct PendingJob {
    tx: Sender<String>,
    tenant: String,
    label: String,
    return_output: bool,
    admitted: Instant,
    tenant_in_flight: Arc<AtomicU64>,
    tenant_completed: Counter,
    tenant_latency: Histogram,
    tenant_slo: Arc<Mutex<SloWindow>>,
    tenant_slo_gauges: SloGauges,
    tenant_signature: Arc<Mutex<InstrSignature>>,
    /// The job's span timeline (spans on only); finished at routing.
    track: Option<Arc<SpanTrack>>,
    /// Id this job's WAL records settle under. Equal to the engine id for
    /// live admissions; for jobs re-admitted by recovery it is the
    /// *original* request id, so the completion record dedupes against
    /// the original admission on the next restart.
    wal_id: u64,
    /// `true` for jobs re-admitted from the log (stamped into the
    /// [`JobDone`]).
    redelivered: bool,
    /// The admitting connection's in-flight job count; decremented once
    /// the `Done` is on the writer channel. Holds the idle timeout off
    /// while the client legitimately waits in silence.
    conn_pending: Arc<AtomicU64>,
}

/// State shared by the accept loop, connection threads and the router.
struct Inner {
    config: ServeConfig,
    registry: Registry,
    engine: PreemptiveHandle<JobResult>,
    metrics: ServeMetrics,
    snap: SnapMetrics,
    tenants: Mutex<BTreeMap<String, Tenant>>,
    /// Admitted jobs whose outcome the router has not yet routed. The
    /// admission path holds this lock *across* the engine submit, so the
    /// router can never observe an outcome before its entry exists.
    pending_jobs: Mutex<HashMap<u64, PendingJob>>,
    draining: AtomicBool,
    stop: AtomicBool,
    /// Signalled on every job completion and on drain requests; the value
    /// is `true` once a drain has been requested.
    progress: (Mutex<bool>, Condvar),
    /// Span recorder, present when [`ServeConfig::spans`] is on.
    spans: Option<Arc<SpanRecorder>>,
    /// Durability plane, present when [`ServeConfig::wal`] is set.
    wal: Option<WalPlane>,
}

impl Inner {
    fn tenant_metrics(&self, registry: &Registry, name: &str) -> Tenant {
        Tenant {
            bucket: TokenBucket::new(self.config.rate, self.config.burst, Instant::now()),
            in_flight: Arc::new(AtomicU64::new(0)),
            accepted: registry.counter_with(
                "scratch_serve_tenant_accepted_total",
                "Submissions admitted, per tenant",
                &[("tenant", name)],
            ),
            completed: registry.counter_with(
                "scratch_serve_tenant_completed_total",
                "Jobs completed, per tenant",
                &[("tenant", name)],
            ),
            shed: registry.counter_with(
                "scratch_serve_tenant_shed_total",
                "Submissions shed, per tenant",
                &[("tenant", name)],
            ),
            latency_us: registry.histogram_with(
                "scratch_serve_latency_micros",
                "End-to-end job latency (admission to completion), per tenant",
                &[("tenant", name)],
            ),
            slo: Arc::new(Mutex::new(SloWindow::default_serving())),
            slo_gauges: SloGauges {
                p99_us: registry.gauge_with(
                    "scratch_slo_p99_micros",
                    "Rolling-window (60s) p99 end-to-end latency, per tenant",
                    &[("tenant", name)],
                ),
                shed_ratio: registry.gauge_with(
                    "scratch_slo_shed_ratio",
                    "Rolling-window (60s) shed fraction, per tenant",
                    &[("tenant", name)],
                ),
                budget_burn: registry.gauge_with(
                    "scratch_slo_budget_burn",
                    "Error-budget burn rate against the 99% target (1.0 = \
                     burning exactly the allowed rate), per tenant",
                    &[("tenant", name)],
                ),
            },
            signature: Arc::new(Mutex::new(InstrSignature::default())),
        }
    }

    /// Update the backlog gauges from engine introspection.
    fn publish_backlog(&self) {
        self.metrics
            .queue_depth
            .set(self.engine.queue_depth() as f64);
        self.metrics.in_flight.set(self.engine.in_flight() as f64);
    }

    /// Jobs admitted but not yet completed.
    fn pending(&self) -> u64 {
        self.metrics.accepted.get() - self.metrics.completed.get()
    }

    /// Route one engine outcome: build the [`JobDone`], send it down the
    /// originating connection's channel, and settle all accounting. Runs
    /// on the router thread.
    fn route(&self, outcome: JobOutcome<JobResult>) {
        let Some(p) = self
            .pending_jobs
            .lock()
            .expect("pending jobs lock")
            .remove(&outcome.id)
        else {
            return; // unreachable: admission registers before submitting
        };
        let exec_us = micros(outcome.wall);
        let total_us = micros(p.admitted.elapsed());
        // With sliced execution "queue time" is every moment the job was
        // admitted but not on a worker — initial wait plus between-slice
        // parking.
        let queue_us = total_us.saturating_sub(exec_us);
        self.metrics.queue_us.observe(queue_us);
        let cancelled = matches!(outcome.result, Err(JobError::Cancelled));
        let failure = |msg: String| (false, Some(msg), 0, 0, fnv1a(&[]), None, 0, 0, None);
        let (ok, error, cycles, instructions, digest, output, snap_us, slices, signature) =
            match outcome.result {
                Ok(Ok(run)) => (
                    true,
                    None,
                    run.cycles,
                    run.instructions,
                    fnv1a(&run.words),
                    p.return_output.then_some(run.words),
                    run.snap_us,
                    run.slices,
                    run.signature,
                ),
                Ok(Err(msg)) => failure(msg),
                Err(JobError::Cancelled) => failure("cancelled".to_owned()),
                Err(JobError::Panicked(_)) => {
                    failure("job panicked inside the simulator".to_owned())
                }
                Err(other) => failure(other.to_string()),
            };
        // The completion becomes durable *before* the client can observe
        // it: a crash after this append but before the send redelivers a
        // `Done` the client never saw (flagged `redelivered`), never the
        // reverse — an acked `Done` whose job re-runs.
        if let Some(plane) = &self.wal {
            plane.append(&Record::Completed {
                id: p.wal_id,
                ok,
                digest,
                cycles,
                instructions,
                error: error.clone().unwrap_or_default(),
            });
        }
        // Like the WAL append above, all completion accounting settles
        // *before* the Done can reach the client: a client that has its
        // reply in hand must never observe counters that do not yet
        // include it.
        if let Some(sig) = signature {
            p.tenant_signature
                .lock()
                .expect("tenant signature lock")
                .merge(&sig);
        }
        {
            let mut slo = p.tenant_slo.lock().expect("tenant slo lock");
            slo.record_latency(total_us);
            if let Some(snap) = slo.maybe_refresh(SLO_REFRESH) {
                p.tenant_slo_gauges.publish(&snap);
            }
        }
        p.tenant_latency.observe(total_us);
        p.tenant_completed.inc();
        p.tenant_in_flight.fetch_sub(1, Ordering::AcqRel);
        self.metrics.completed.inc();
        if !ok {
            self.metrics.failed.inc();
        }
        if cancelled {
            self.metrics.cancelled.inc();
        }

        let done = JobDone {
            job: outcome.id,
            tenant: p.tenant,
            label: p.label,
            ok,
            error,
            cycles,
            instructions,
            digest,
            output,
            queue_us,
            exec_us,
            snap_us,
            slices,
            redelivered: p.redelivered,
        };
        // A gone client makes this a no-op; the accounting above already
        // ran, so drains never wedge and accepted work is never dropped
        // server-side.
        let line = serde_json::to_string(&Response::Done(done)).expect("JobDone always serializes");
        let _ = p.tx.send(line);
        p.conn_pending.fetch_sub(1, Ordering::AcqRel);
        // Close the span timeline only after the reply hit the writer
        // channel, so the final Reply span covers the routing work too.
        if let Some(track) = &p.track {
            track.finish(outcome.id);
        }
        self.publish_backlog();
        // Wake anyone waiting on drain progress.
        let (lock, cv) = &self.progress;
        let _guard = lock.lock().expect("progress lock");
        cv.notify_all();
    }

    /// The admission decision for one submission. Returns the response to
    /// send immediately; on acceptance the job has already been queued
    /// (its `Done` will follow through `tx`) and — when the WAL is on —
    /// durably journaled, so the `Accepted` ack implies replay-on-crash.
    fn admit(
        self: &Arc<Inner>,
        req: SubmitRequest,
        tx: &Sender<String>,
        conn_pending: &Arc<AtomicU64>,
    ) -> Response {
        self.metrics.submitted.inc();
        if self.draining.load(Ordering::Acquire) {
            return self.reject(
                &req.tenant,
                RejectReason::Draining,
                None,
                "server is draining",
            );
        }
        let kind = match req.system_kind() {
            Ok(kind) => kind,
            Err(msg) => return self.reject(&req.tenant, RejectReason::Invalid, None, &msg),
        };
        if let Err(msg) = req.exec_mode() {
            return self.reject(&req.tenant, RejectReason::Invalid, None, &msg);
        }
        if req.input.len() > self.config.max_input_words {
            let msg = format!(
                "input of {} words exceeds the {}-word limit",
                req.input.len(),
                self.config.max_input_words
            );
            return self.reject(&req.tenant, RejectReason::TooLarge, None, &msg);
        }
        if req.out_bytes > self.config.max_out_bytes {
            let msg = format!(
                "out_bytes {} exceeds the {}-byte limit",
                req.out_bytes, self.config.max_out_bytes
            );
            return self.reject(&req.tenant, RejectReason::TooLarge, None, &msg);
        }

        // Tenant-table gates. The lock covers the bucket mutation and the
        // in-flight reservation, so two racing submissions cannot both
        // squeeze through the last slot.
        let (
            tenant_in_flight,
            tenant_completed,
            tenant_latency,
            tenant_slo,
            slo_gauges,
            tenant_sig,
        ) = {
            let mut tenants = self.tenants.lock().expect("tenant table lock");
            if !tenants.contains_key(&req.tenant) {
                let t = self.tenant_metrics(&self.registry, &req.tenant);
                tenants.insert(req.tenant.clone(), t);
            }
            let t = tenants.get_mut(&req.tenant).expect("just inserted");

            if t.in_flight.load(Ordering::Acquire) >= self.config.tenant_cap as u64 {
                t.shed.inc();
                t.note_shed();
                let msg = format!(
                    "tenant has {} jobs queued or running (cap {})",
                    t.in_flight.load(Ordering::Acquire),
                    self.config.tenant_cap
                );
                return self.reject(&req.tenant, RejectReason::TenantQueueFull, None, &msg);
            }
            if self.engine.queue_depth() >= self.config.queue_cap {
                t.shed.inc();
                t.note_shed();
                let msg = format!("engine queue at capacity ({} jobs)", self.config.queue_cap);
                return self.reject(&req.tenant, RejectReason::Overloaded, None, &msg);
            }
            if let Err(wait) = t.bucket.try_take(Instant::now()) {
                t.shed.inc();
                t.note_shed();
                let ms = wait.as_millis().try_into().unwrap_or(u64::MAX).max(1);
                let msg = format!("tenant over its {}/s rate quota", self.config.rate);
                return self.reject(&req.tenant, RejectReason::RateLimited, Some(ms), &msg);
            }

            t.in_flight.fetch_add(1, Ordering::AcqRel);
            t.accepted.inc();
            (
                Arc::clone(&t.in_flight),
                t.completed.clone(),
                t.latency_us.clone(),
                Arc::clone(&t.slo),
                t.slo_gauges.clone(),
                Arc::clone(&t.signature),
            )
        };

        self.metrics.accepted.inc();
        // The timeline opens in its Queue span here, at admission; the
        // job id is bound at routing, once the engine has minted it.
        let track = self
            .spans
            .as_ref()
            .map(|r| r.begin(&req.tenant, &req.label));
        let job = self.launch(
            req,
            kind,
            tx.clone(),
            Arc::clone(conn_pending),
            (
                tenant_in_flight,
                tenant_completed,
                tenant_latency,
                tenant_slo,
                slo_gauges,
                tenant_sig,
            ),
            track,
            None,
            None,
        );
        self.publish_backlog();
        Response::Accepted { job }
    }

    /// Hand one validated submission to the engine and register its
    /// pending entry — the shared tail of live admission ([`Inner::admit`])
    /// and WAL replay ([`Inner::replay`]). `resume` seeds the slice loop
    /// with a recovered checkpoint's `(out_addr, snap bytes)`; `wal_id`
    /// pins the WAL record id for replayed jobs (`None` = live admission,
    /// whose records settle under the engine id).
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::type_complexity)]
    fn launch(
        self: &Arc<Inner>,
        req: SubmitRequest,
        kind: SystemKind,
        tx: Sender<String>,
        conn_pending: Arc<AtomicU64>,
        handles: (
            Arc<AtomicU64>,
            Counter,
            Histogram,
            Arc<Mutex<SloWindow>>,
            SloGauges,
            Arc<Mutex<InstrSignature>>,
        ),
        track: Option<Arc<SpanTrack>>,
        resume: Option<(u64, Vec<u8>)>,
        wal_id: Option<u64>,
    ) -> u64 {
        let (
            tenant_in_flight,
            tenant_completed,
            tenant_latency,
            tenant_slo,
            slo_gauges,
            tenant_sig,
        ) = handles;
        // Live admissions journal the full submission; replayed jobs are
        // already in the log (replay is idempotent by request id), so
        // they are not re-journaled.
        let payload = (wal_id.is_none() && self.wal.is_some()).then(|| {
            serde_json::to_string(&req)
                .expect("SubmitRequest always serializes")
                .into_bytes()
        });
        let inner = Arc::clone(self);
        let admitted = Instant::now();
        let engine_label = format!("{}/{}", req.tenant, req.label);
        let tenant = req.tenant.clone();
        let label = req.label.clone();
        let return_output = req.return_output;
        let watchdog = self.config.watchdog_cycles;
        let quantum = self.config.quantum_cycles.max(1);
        let profile = self.config.profile;
        let work_track = track.clone();
        let redelivered = wal_id.is_some();
        // Checkpoint bytes carried between slices, plus the output base
        // the first slice allocated (the restored system re-derives
        // everything else from the checkpoint). Replay seeds both from
        // the recovered checkpoint, so a restart resumes mid-kernel.
        let (mut out_addr, mut carried) = match resume {
            Some((addr, snap)) => (addr, Some(snap)),
            None => (0u64, None),
        };
        let mut snap_us = 0u64;
        let work = move |job: u64, slice: u64| -> Slice<JobResult> {
            match run_slice(
                &req,
                kind,
                &inner.registry,
                watchdog,
                quantum,
                carried.take(),
                &mut out_addr,
                &inner.snap,
                job,
                profile,
                work_track.as_deref(),
                &mut snap_us,
            ) {
                Ok(SliceStep::Paused(bytes)) => {
                    // Persist the quantum-boundary checkpoint, then carry
                    // the same bytes into the next slice (destructured
                    // back out of the record rather than cloned).
                    let bytes = match &inner.wal {
                        Some(plane) => {
                            let record = Record::Checkpoint {
                                id: wal_id.unwrap_or(job),
                                out_addr,
                                snap: bytes,
                            };
                            plane.append(&record);
                            let Record::Checkpoint { snap, .. } = record else {
                                unreachable!("just built as a checkpoint")
                            };
                            snap
                        }
                        None => bytes,
                    };
                    carried = Some(bytes);
                    Slice::Yield
                }
                Ok(SliceStep::Finished {
                    cycles,
                    instructions,
                    words,
                    signature,
                }) => Slice::Done(Ok(Ok(RunOutcome {
                    cycles,
                    instructions,
                    words,
                    snap_us,
                    slices: slice + 1,
                    signature,
                }))),
                Err(msg) => Slice::Done(Ok(Err(msg))),
            }
        };
        conn_pending.fetch_add(1, Ordering::AcqRel);
        // Register the pending entry under the same critical section as
        // the submit, so the router can't race us to the outcome — and
        // journal the admission there too, so a job's Admitted record
        // always precedes its Completed record in the log.
        let job = {
            let mut pending = self.pending_jobs.lock().expect("pending jobs lock");
            let id = self
                .engine
                .submit_with_id(tenant.clone(), engine_label, work);
            if let (Some(payload), Some(plane)) = (payload, &self.wal) {
                plane.append(&Record::Admitted {
                    id,
                    tenant: tenant.clone(),
                    label: label.clone(),
                    payload,
                });
            }
            pending.insert(
                id,
                PendingJob {
                    tx,
                    tenant,
                    label,
                    return_output,
                    admitted,
                    tenant_in_flight,
                    tenant_completed,
                    tenant_latency,
                    tenant_slo,
                    tenant_slo_gauges: slo_gauges,
                    tenant_signature: tenant_sig,
                    track,
                    wal_id: wal_id.unwrap_or(id),
                    redelivered,
                    conn_pending: Arc::clone(&conn_pending),
                },
            );
            id
        };
        job
    }

    /// Re-admit every unfinished job recovery found in the write-ahead
    /// log, in original admission order. Runs once at bind, after the
    /// router thread is live.
    fn replay(self: &Arc<Inner>, entries: Vec<PendingEntry>) {
        for entry in entries {
            let req: SubmitRequest = match std::str::from_utf8(&entry.payload)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
            {
                Ok(req) => req,
                Err(e) => {
                    self.dead_letter(entry.id, &format!("payload decode failed: {e}"));
                    continue;
                }
            };
            let kind = match req.system_kind() {
                Ok(kind) => kind,
                Err(msg) => {
                    self.dead_letter(entry.id, &msg);
                    continue;
                }
            };
            if let Err(msg) = req.exec_mode() {
                self.dead_letter(entry.id, &msg);
                continue;
            }
            // A checkpoint from a foreign snap format version is dropped
            // (the job re-runs from scratch, still exactly-once); same-
            // version bytes resume mid-kernel.
            let resume =
                entry
                    .checkpoint
                    .and_then(|(addr, snap)| match scratch_snap::peek_version(&snap) {
                        Ok(v) if v == scratch_snap::FORMAT_VERSION => Some((addr, snap)),
                        peek => {
                            eprintln!(
                                "scratch-serve: wal replay: job {} checkpoint unusable \
                             ({peek:?}); re-running from scratch",
                                entry.id
                            );
                            None
                        }
                    });
            let handles = {
                let mut tenants = self.tenants.lock().expect("tenant table lock");
                if !tenants.contains_key(&req.tenant) {
                    let t = self.tenant_metrics(&self.registry, &req.tenant);
                    tenants.insert(req.tenant.clone(), t);
                }
                let t = tenants.get_mut(&req.tenant).expect("just inserted");
                // Replay bypasses the admission gates — these jobs were
                // already admitted and acked in a previous lifetime — but
                // still reserves tenant capacity, so live admission sees
                // the recovered backlog.
                t.in_flight.fetch_add(1, Ordering::AcqRel);
                t.accepted.inc();
                (
                    Arc::clone(&t.in_flight),
                    t.completed.clone(),
                    t.latency_us.clone(),
                    Arc::clone(&t.slo),
                    t.slo_gauges.clone(),
                    Arc::clone(&t.signature),
                )
            };
            self.metrics.accepted.inc();
            let track = self
                .spans
                .as_ref()
                .map(|r| r.begin_replayed(&req.tenant, &req.label));
            // No connection owns a replayed job: its Done goes to a dead
            // channel (while still being journaled and accounted), its
            // in-flight count to a throwaway counter.
            let (tx, _) = channel::<String>();
            self.launch(
                req,
                kind,
                tx,
                Arc::new(AtomicU64::new(0)),
                handles,
                track,
                resume,
                Some(entry.id),
            );
        }
        self.publish_backlog();
    }

    /// A logged job that can no longer be replayed (undecodable payload
    /// or an invalid request): journal a failed completion under its id
    /// so the next recovery dedupes it instead of tripping over it again.
    fn dead_letter(&self, id: u64, why: &str) {
        eprintln!("scratch-serve: wal replay: job {id} dropped: {why}");
        if let Some(plane) = &self.wal {
            plane.append(&Record::Completed {
                id,
                ok: false,
                digest: 0,
                cycles: 0,
                instructions: 0,
                error: format!("unreplayable: {why}"),
            });
        }
    }

    fn reject(
        &self,
        tenant: &str,
        reason: RejectReason,
        retry_after_ms: Option<u64>,
        message: &str,
    ) -> Response {
        self.metrics.shed(reason).inc();
        Response::Rejected(Rejection {
            reason,
            tenant: tenant.to_owned(),
            retry_after_ms,
            message: message.to_owned(),
        })
    }

    fn stats(&self) -> StatsReply {
        let tenants = self.tenants.lock().expect("tenant table lock");
        let mut out = Vec::with_capacity(tenants.len());
        for (name, t) in tenants.iter() {
            let snap = t.latency_us.snapshot();
            let q = |p: f64| snap.quantile(p).unwrap_or(0);
            out.push(TenantStats {
                tenant: name.clone(),
                accepted: t.accepted.get(),
                shed: t.shed.get(),
                completed: t.completed.get(),
                in_flight: t.in_flight.load(Ordering::Acquire),
                latency_us: [q(0.50), q(0.95), q(0.99)],
            });
        }
        let m = &self.metrics;
        StatsReply {
            submitted: m.submitted.get(),
            accepted: m.accepted.get(),
            shed: m.shed.iter().map(|(_, c)| c.get()).sum(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            cancelled: m.cancelled.get(),
            queue_depth: self.engine.queue_depth() as u64,
            in_flight: self.engine.in_flight() as u64,
            connections: m.connections.get() as u64,
            draining: self.draining.load(Ordering::Acquire),
            tenants: out,
        }
    }

    /// The live introspection view behind `scratch-tool ctl top`.
    fn top(&self) -> TopReply {
        let mut queued: HashMap<String, u64> = HashMap::new();
        for (tenant, depth) in self.engine.tenant_queue_depths() {
            *queued.entry(tenant).or_default() += depth as u64;
        }
        let tenants = self.tenants.lock().expect("tenant table lock");
        let mut rows = Vec::with_capacity(tenants.len());
        for (name, t) in tenants.iter() {
            let slo = t.slo.lock().expect("tenant slo lock").snapshot();
            let (instructions, preset) = {
                let sig = t.signature.lock().expect("tenant signature lock");
                if sig.is_empty() {
                    (0, "-".to_owned())
                } else {
                    (sig.instructions(), sig.minimal_preset().0)
                }
            };
            rows.push(TenantTop {
                tenant: name.clone(),
                queued: queued.get(name).copied().unwrap_or(0),
                in_flight: t.in_flight.load(Ordering::Acquire),
                completed: slo.completed,
                shed: slo.shed,
                p50_us: slo.p50_us,
                p95_us: slo.p95_us,
                p99_us: slo.p99_us,
                shed_ratio: slo.shed_ratio,
                budget_burn: slo.budget_burn,
                instructions,
                preset,
            });
        }
        TopReply {
            queue_depth: self.engine.queue_depth() as u64,
            in_flight: self.engine.in_flight() as u64,
            draining: self.draining.load(Ordering::Acquire),
            tenants: rows,
        }
    }

    /// Handle one parsed request; returns the immediate response.
    fn dispatch(
        self: &Arc<Inner>,
        req: Request,
        tx: &Sender<String>,
        conn_pending: &Arc<AtomicU64>,
    ) -> Response {
        match req {
            Request::Submit(submit) => self.admit(submit, tx, conn_pending),
            Request::Stats => Response::Stats(self.stats()),
            Request::Top => Response::Top(self.top()),
            Request::Ping => Response::Pong,
            Request::Drain => {
                self.draining.store(true, Ordering::Release);
                let (lock, cv) = &self.progress;
                let mut requested = lock.lock().expect("progress lock");
                *requested = true;
                cv.notify_all();
                Response::Draining {
                    pending: self.pending(),
                }
            }
            Request::Cancel { job } => Response::Cancelled {
                job,
                cancelled: self.engine.cancel(job),
            },
        }
    }
}

fn micros(d: Duration) -> u64 {
    d.as_micros().try_into().unwrap_or(u64::MAX)
}

/// What one execution slice produced.
enum SliceStep {
    /// The quantum expired; the serialized checkpoint resumes the run.
    Paused(Vec<u8>),
    /// The kernel completed.
    Finished {
        cycles: u64,
        instructions: u64,
        words: Vec<u32>,
        signature: Option<InstrSignature>,
    },
}

/// Build the completed job's instruction-usage signature from whichever
/// tier ran it: the cycle tier's accumulated per-PC retire counters, or
/// the fast tier's per-block dispatch counters. Block attribution comes
/// from the fastpath translator's static block table either way; a kernel
/// the translator rejects outright simply yields no signature.
fn build_signature(req: &SubmitRequest, kind: SystemKind, sys: &System) -> Option<InstrSignature> {
    if let Some(stats) = sys.fast_stats(0) {
        let blocks = sys.fast_block_profiles(0)?;
        return Some(InstrSignature::from_block_dispatches(
            &req.label,
            &blocks,
            &stats.block_dispatches,
        ));
    }
    let config = SystemConfig::preset(kind);
    let prog = scratch_fastpath::translate(&req.kernel, &config.cu).ok()?;
    Some(InstrSignature::from_pc_counts(
        &req.label,
        &prog.block_profiles(),
        sys.pc_profile(0),
    ))
}

/// Run one quantum of an admitted submission on the calling engine
/// worker. The first slice builds the system and mirrors a direct
/// `scratch-system` run exactly (same allocation order, same argument
/// convention); later slices rebuild it from the carried checkpoint
/// bytes. Checkpoint/restore is bit-identical, so sliced served results
/// match offline execution.
#[allow(clippy::too_many_arguments)]
fn run_slice(
    req: &SubmitRequest,
    kind: SystemKind,
    registry: &Registry,
    watchdog: u64,
    quantum: u64,
    carried: Option<Vec<u8>>,
    out_addr: &mut u64,
    snap: &SnapMetrics,
    job: u64,
    profile: bool,
    track: Option<&SpanTrack>,
    snap_us: &mut u64,
) -> Result<SliceStep, String> {
    let map_err = |e: SystemError| match e {
        SystemError::Cu(CuError::CycleLimit { .. }) => {
            format!("watchdog: job exceeded its {watchdog}-cycle budget")
        }
        other => other.to_string(),
    };
    let mark = |kind: SpanKind| {
        if let Some(t) = track {
            t.mark(kind);
        }
    };
    let exec = req.exec_mode().map_err(|e| e.to_string())?;
    if exec != ExecMode::Cycle {
        // Fast tiers have no cycle-accurate state to checkpoint
        // (`SnapError::UnsupportedExecMode`), so jobs that don't need
        // cycle counts run whole in a single slice with a plain dispatch
        // instead of the preemptible quantum loop.
        mark(SpanKind::Run);
        let mut config = SystemConfig::preset(kind)
            .with_registry(registry.clone())
            .with_exec(exec)
            .with_profile(profile);
        config.cu.cycle_limit = config.cu.cycle_limit.min(watchdog.max(1));
        let mut sys = System::new(config, &req.kernel).map_err(map_err)?;
        sys.set_job_id(job);
        let out = sys.alloc(req.out_bytes.max(4));
        let mut args = vec![u32::try_from(out).unwrap_or(0)];
        if !req.input.is_empty() {
            let inp = sys.alloc_words(&req.input);
            args.push(u32::try_from(inp).unwrap_or(0));
        }
        sys.set_args(&args);
        *out_addr = out;
        sys.dispatch(req.grid).map_err(map_err)?;
        let report = sys.report();
        let words = sys.read_words(
            *out_addr,
            usize::try_from(req.out_bytes.max(4) / 4).unwrap_or(0),
        );
        let signature = profile.then(|| build_signature(req, kind, &sys)).flatten();
        mark(SpanKind::Reply);
        return Ok(SliceStep::Finished {
            cycles: report.cu_cycles,
            instructions: report.instructions(),
            words,
            signature,
        });
    }
    let mut sys;
    let progress = match carried {
        Some(bytes) => {
            mark(SpanKind::Restore);
            let resume_start = Instant::now();
            let ck: SystemCheckpoint = scratch_snap::from_bytes(&bytes)
                .map_err(|e| format!("checkpoint decode failed: {e}"))?;
            sys = System::restore(&ck, Some(registry.clone())).map_err(map_err)?;
            sys.set_job_id(job);
            let restore_us = micros(resume_start.elapsed());
            snap.resume_us.observe(restore_us);
            *snap_us += restore_us;
            mark(SpanKind::Run);
            sys.resume_dispatch(quantum).map_err(map_err)?
        }
        None => {
            mark(SpanKind::Run);
            let mut config = SystemConfig::preset(kind)
                .with_registry(registry.clone())
                .with_profile(profile);
            config.cu.cycle_limit = config.cu.cycle_limit.min(watchdog.max(1));
            sys = System::new(config, &req.kernel).map_err(map_err)?;
            sys.set_job_id(job);
            let out = sys.alloc(req.out_bytes.max(4));
            let mut args = vec![u32::try_from(out).unwrap_or(0)];
            if !req.input.is_empty() {
                let inp = sys.alloc_words(&req.input);
                args.push(u32::try_from(inp).unwrap_or(0));
            }
            sys.set_args(&args);
            *out_addr = out;
            sys.dispatch_preemptible(req.grid, quantum)
                .map_err(map_err)?
        }
    };
    match progress {
        DispatchProgress::Paused => {
            mark(SpanKind::Capture);
            let capture_start = Instant::now();
            let ck = sys.checkpoint().map_err(map_err)?;
            let bytes = scratch_snap::to_bytes(&ck);
            *snap_us += micros(capture_start.elapsed());
            snap.checkpoints.inc();
            snap.checkpoint_bytes.add(bytes.len() as u64);
            // Back on the shelf until the scheduler's next turn.
            mark(SpanKind::Queue);
            Ok(SliceStep::Paused(bytes))
        }
        DispatchProgress::Complete { .. } => {
            let report = sys.report();
            let words = sys.read_words(
                *out_addr,
                usize::try_from(req.out_bytes.max(4) / 4).unwrap_or(0),
            );
            let signature = profile.then(|| build_signature(req, kind, &sys)).flatten();
            mark(SpanKind::Reply);
            Ok(SliceStep::Finished {
                cycles: report.cu_cycles,
                instructions: report.instructions(),
                words,
                signature,
            })
        }
    }
}

/// The router loop: consume engine outcomes and answer/settle each one.
/// Exits once the server is stopping and nothing is pending.
fn router(inner: &Arc<Inner>) {
    loop {
        if let Some(outcome) = inner.engine.recv_timeout(Duration::from_millis(100)) {
            inner.route(outcome);
            continue;
        }
        if inner.stop.load(Ordering::Acquire)
            && inner
                .pending_jobs
                .lock()
                .expect("pending jobs lock")
                .is_empty()
        {
            return;
        }
    }
}

/// A running serve daemon. [`Server::shutdown`] (or a client's
/// [`Request::Drain`] followed by [`Server::wait_drain`] +
/// [`Server::shutdown`]) drains gracefully: admission stops, every
/// accepted job completes and is answered, then the listener and all
/// threads wind down.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| scratch_metrics::global().clone());
        // Open and recover the WAL *before* the engine exists: recovery's
        // `next_id` seeds the engine's id space, so restarted processes
        // never re-mint an id a previous lifetime already acked.
        let mut recovered = None;
        let wal = match config.wal.clone() {
            Some(wal_config) => {
                let (mut wal, recovery) = Wal::open(wal_config).map_err(|e| match e {
                    scratch_wal::WalError::Io(io) => io,
                    other => io::Error::other(other.to_string()),
                })?;
                // Test-only chaos hook: SCRATCH_WAL_CRASH=<append>:<keep>
                // tears that append after <keep> bytes and aborts the
                // process — the chaos harness's mid-append crash. Never
                // set it in production.
                if let Ok(spec) = std::env::var("SCRATCH_WAL_CRASH") {
                    if let Some(hook) = CrashOnAppend::parse(&spec) {
                        eprintln!(
                            "scratch-serve: SCRATCH_WAL_CRASH={spec} installed \
                             (test-only crash fault)"
                        );
                        wal.set_fault_hook(Box::new(hook));
                    }
                }
                let metrics = WalMetrics::new(&registry);
                let report = &recovery.report;
                metrics.replayed.add(report.replayed);
                metrics.resumed.add(report.resumed);
                metrics.deduped.add(report.deduped);
                metrics.recovery_ms.set(report.recovery_ms as f64);
                recovered = Some(recovery);
                Some(WalPlane {
                    wal: Mutex::new(wal),
                    metrics,
                })
            }
            None => None,
        };
        let first_id = recovered.as_ref().map_or(0, |r| r.next_id);
        let engine = PreemptiveEngine::new(config.workers)
            .with_registry(registry.clone())
            .with_first_id(first_id)
            .start();
        let spans = config.spans.then(SpanRecorder::new);
        let inner = Arc::new(Inner {
            metrics: ServeMetrics::new(&registry),
            snap: SnapMetrics::new(&registry),
            config,
            registry,
            engine,
            tenants: Mutex::new(BTreeMap::new()),
            pending_jobs: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            progress: (Mutex::new(false), Condvar::new()),
            spans,
            wal,
        });
        let router_inner = Arc::clone(&inner);
        let router_thread = std::thread::Builder::new()
            .name("scratch-serve-route".to_owned())
            .spawn(move || router(&router_inner))
            .expect("spawn router thread");
        // Re-admit the recovered backlog with the router already live, so
        // replayed completions route (to dead channels) like any other.
        let recovery = recovered.map(|r| {
            inner.replay(r.pending);
            r.report
        });
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept_inner = Arc::clone(&inner);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("scratch-serve-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_inner = Arc::clone(&accept_inner);
                    let handle = std::thread::Builder::new()
                        .name("scratch-serve-conn".to_owned())
                        .spawn(move || connection(&conn_inner, stream))
                        .expect("spawn connection thread");
                    accept_conns.lock().expect("conns lock").push(handle);
                }
            })
            .expect("spawn accept thread");
        Ok(Server {
            inner,
            addr,
            accept_thread: Some(accept_thread),
            router_thread: Some(router_thread),
            conns,
            recovery,
        })
    }

    /// What WAL recovery did at bind: `None` without a WAL (or on a
    /// fresh, empty log directory the report is all zeros — still
    /// `Some`). The same numbers land on the `scratch_wal_*` metrics.
    #[must_use]
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving statistics.
    #[must_use]
    pub fn stats(&self) -> StatsReply {
        self.inner.stats()
    }

    /// The live introspection view ([`Request::Top`]'s payload).
    #[must_use]
    pub fn top(&self) -> TopReply {
        self.inner.top()
    }

    /// Drain the span timelines of every job finished so far. Empty when
    /// [`ServeConfig::spans`] is off (or between completions).
    #[must_use]
    pub fn take_spans(&self) -> Vec<JobSpans> {
        self.inner
            .spans
            .as_ref()
            .map(|r| r.take_finished())
            .unwrap_or_default()
    }

    /// A handle on the span recorder (when [`ServeConfig::spans`] is on)
    /// that outlives [`Server::shutdown`], so timelines of jobs that
    /// finish during the drain can still be collected.
    #[must_use]
    pub fn span_recorder(&self) -> Option<Arc<SpanRecorder>> {
        self.inner.spans.clone()
    }

    /// Snapshot of every tenant's aggregated instruction-usage signature
    /// (empty signatures elided). Populated only with
    /// [`ServeConfig::profile`] on.
    #[must_use]
    pub fn tenant_signatures(&self) -> Vec<(String, InstrSignature)> {
        let tenants = self.inner.tenants.lock().expect("tenant table lock");
        tenants
            .iter()
            .filter_map(|(name, t)| {
                let sig = t.signature.lock().expect("tenant signature lock");
                (!sig.is_empty()).then(|| (name.clone(), sig.clone()))
            })
            .collect()
    }

    /// Block until some client requests a drain ([`Request::Drain`]).
    /// The daemon's main loop parks here, then calls [`Server::shutdown`].
    pub fn wait_drain(&self) {
        let (lock, cv) = &self.inner.progress;
        let mut requested = lock.lock().expect("progress lock");
        while !*requested {
            requested = cv.wait(requested).expect("progress lock");
        }
    }

    /// Drain and stop: reject new submissions, wait for every accepted
    /// job to complete and be answered, then tear the listener, the
    /// connection threads and the engine pool down. Returns the final
    /// statistics.
    pub fn shutdown(mut self) -> StatsReply {
        self.inner.draining.store(true, Ordering::Release);
        // Wait for the backlog to drain. Completion closures signal the
        // condvar; the timeout makes the loop robust to missed wakeups.
        {
            let (lock, cv) = &self.inner.progress;
            let mut guard = lock.lock().expect("progress lock");
            while self.inner.pending() > 0 {
                let (g, _) = cv
                    .wait_timeout(guard, Duration::from_millis(50))
                    .expect("progress lock");
                guard = g;
            }
        }
        let stats = self.inner.stats();
        // The backlog is drained; make its completion records durable
        // before tearing anything down.
        if let Some(plane) = &self.inner.wal {
            plane.sync();
        }

        // Stop the accept loop (one last self-connection unblocks it) and
        // the connection readers (they poll `stop` on their read timeout).
        self.inner.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.conns.lock().expect("conns lock").drain(..) {
            let _ = t.join();
        }
        // The router exits once `stop` is set and no job is pending.
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
        stats
        // Dropping `inner` (last Arc) drops the PreemptiveHandle, which
        // shuts down and joins the now-idle pool workers.
    }
}

/// Cap on one request line; a line that exceeds it earns a protocol error
/// (64 MiB comfortably fits the largest legal kernel + input).
const MAX_LINE_BYTES: usize = 64 << 20;

/// One connection: reader side. Parses request lines, answers through the
/// writer channel, and exits on EOF, socket error, or server stop.
fn connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    inner.metrics.connections.inc();

    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("scratch-serve-write".to_owned())
        .spawn(move || {
            let mut stream = write_half;
            while let Ok(line) = rx.recv() {
                if stream.write_all(line.as_bytes()).is_err()
                    || stream.write_all(b"\n").is_err()
                    || stream.flush().is_err()
                {
                    break; // client gone; drain silently until senders drop
                }
            }
        })
        .expect("spawn writer thread");

    // Jobs this connection admitted whose Done has not been sent yet —
    // the idle-timeout gate (a silently waiting client is not idle).
    let conn_pending = Arc::new(AtomicU64::new(0));
    read_loop(inner, stream, &tx, &conn_pending);

    inner.metrics.connections.dec();
    drop(tx);
    // The writer exits once every sender is gone — ours just dropped, and
    // job closures drop theirs at completion (a drain has already waited
    // for those by the time the server joins us).
    let _ = writer.join();
}

/// Read request lines, tolerating arbitrarily short reads, and dispatch
/// them. Malformed lines answer [`Response::Error`] and keep the
/// connection open. With [`ServeConfig::idle_timeout`] set, a connection
/// that goes silent with nothing in flight is shed with
/// [`RejectReason::IdleTimeout`] and closed, so abandoned sockets stop
/// pinning reader/writer threads forever.
fn read_loop(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    tx: &Sender<String>,
    conn_pending: &Arc<AtomicU64>,
) {
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut last_activity = Instant::now();
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if conn_pending.load(Ordering::Acquire) > 0 {
                    // Awaiting a Done: legitimately silent, not idle.
                    last_activity = Instant::now();
                } else if let Some(idle) = inner.config.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        inner.metrics.shed(RejectReason::IdleTimeout).inc();
                        respond(
                            tx,
                            &Response::Rejected(Rejection {
                                reason: RejectReason::IdleTimeout,
                                tenant: String::new(),
                                retry_after_ms: None,
                                message: format!(
                                    "connection idle past the {} ms timeout",
                                    idle.as_millis()
                                ),
                            }),
                        );
                        return;
                    }
                }
                continue;
            }
            Err(_) => return,
        };
        last_activity = Instant::now();
        acc.extend_from_slice(&chunk[..n]);
        if acc.len() > MAX_LINE_BYTES {
            respond(
                tx,
                &Response::Error {
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                },
            );
            return;
        }
        // Process every complete line in the accumulator.
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=pos).collect();
            let line = &line[..line.len() - 1]; // strip the newline
            let line = std::str::from_utf8(line).unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let response = match serde_json::from_str::<Request>(line) {
                Ok(req) => inner.dispatch(req, tx, conn_pending),
                Err(e) => Response::Error {
                    message: format!("malformed request: {e}"),
                },
            };
            respond(tx, &response);
        }
    }
}

fn respond(tx: &Sender<String>, response: &Response) {
    let line = serde_json::to_string(response).expect("responses always serialize");
    let _ = tx.send(line);
}
