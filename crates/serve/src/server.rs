//! The daemon: TCP accept loop, per-connection protocol handling,
//! admission control, engine execution, and graceful drain.
//!
//! ## Threading model
//!
//! One accept thread; two threads per connection (a reader that parses
//! request lines and makes admission decisions, and a writer that owns
//! the socket's send side, fed by an mpsc channel); one shared
//! `scratch-engine` pool executing the admitted jobs. A job's completion
//! closure serializes its own [`Response::Done`] into the originating
//! connection's channel, so results stream back without any central
//! router — and a disconnected client simply makes the send a no-op
//! (the job itself always runs to completion; accepted work is never
//! dropped).
//!
//! ## Admission control
//!
//! A submission passes four gates, in order: the server is not draining;
//! the request is well-formed and within size limits; the shared engine
//! queue has room (`queue_cap`) and the tenant is below its own bound
//! (`tenant_cap`); and the tenant's token bucket has a token. Each gate
//! sheds with its own typed [`RejectReason`] so clients can tell "back
//! off" from "give up".

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scratch_engine::{Engine, EngineHandle};
use scratch_metrics::{Counter, Gauge, Histogram, Registry};
use scratch_system::{CuError, System, SystemConfig, SystemError};

use crate::protocol::{
    fnv1a, JobDone, RejectReason, Rejection, Request, Response, StatsReply, SubmitRequest,
    TenantStats,
};
use crate::quota::TokenBucket;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine pool workers (`0` = one per available core).
    pub workers: usize,
    /// Maximum jobs waiting in the shared engine queue; beyond this every
    /// tenant is shed with [`RejectReason::Overloaded`].
    pub queue_cap: usize,
    /// Maximum jobs one tenant may have queued or running; beyond it the
    /// tenant is shed with [`RejectReason::TenantQueueFull`].
    pub tenant_cap: usize,
    /// Token-bucket refill rate per tenant, jobs/second (`0` disables
    /// rate limiting).
    pub rate: f64,
    /// Token-bucket capacity per tenant (burst allowance).
    pub burst: f64,
    /// Per-job simulated-cycle budget; a kernel that exceeds it resolves
    /// to a failed [`JobDone`] instead of wedging a worker.
    pub watchdog_cycles: u64,
    /// Largest accepted input buffer, in words.
    pub max_input_words: usize,
    /// Largest accepted output allocation, in bytes.
    pub max_out_bytes: u64,
    /// Registry the serving metrics publish into (`None` = the
    /// process-global registry).
    pub registry: Option<Registry>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_cap: 256,
            tenant_cap: 64,
            rate: 0.0,
            burst: 32.0,
            watchdog_cycles: scratch_engine::DEFAULT_WATCHDOG_CYCLES,
            max_input_words: 1 << 20,
            max_out_bytes: 64 << 20,
            registry: None,
        }
    }
}

/// Registry handles for the serving layer's counters.
struct ServeMetrics {
    submitted: Counter,
    accepted: Counter,
    completed: Counter,
    failed: Counter,
    shed: [(RejectReason, Counter); 6],
    queue_depth: Gauge,
    in_flight: Gauge,
    connections: Gauge,
    queue_us: Histogram,
}

impl ServeMetrics {
    fn new(r: &Registry) -> ServeMetrics {
        let shed_counter = |reason: RejectReason| {
            (
                reason,
                r.counter_with(
                    "scratch_serve_shed_total",
                    "Submissions shed by admission control",
                    &[("reason", reason.name())],
                ),
            )
        };
        ServeMetrics {
            submitted: r.counter(
                "scratch_serve_submitted_total",
                "Submissions received (admitted + shed)",
            ),
            accepted: r.counter(
                "scratch_serve_accepted_total",
                "Submissions admitted to the engine queue",
            ),
            completed: r.counter(
                "scratch_serve_completed_total",
                "Accepted jobs that produced a Done (ok or failed)",
            ),
            failed: r.counter(
                "scratch_serve_failed_total",
                "Completed jobs whose run failed (simulator error or watchdog)",
            ),
            shed: [
                shed_counter(RejectReason::RateLimited),
                shed_counter(RejectReason::TenantQueueFull),
                shed_counter(RejectReason::Overloaded),
                shed_counter(RejectReason::Draining),
                shed_counter(RejectReason::TooLarge),
                shed_counter(RejectReason::Invalid),
            ],
            queue_depth: r.gauge(
                "scratch_serve_queue_depth",
                "Admitted jobs waiting for an engine worker",
            ),
            in_flight: r.gauge(
                "scratch_serve_in_flight",
                "Admitted jobs executing right now",
            ),
            connections: r.gauge("scratch_serve_connections", "Open client connections"),
            queue_us: r.histogram(
                "scratch_serve_queue_micros",
                "Microseconds admitted jobs waited for an engine worker",
            ),
        }
    }

    fn shed(&self, reason: RejectReason) -> &Counter {
        &self
            .shed
            .iter()
            .find(|(r, _)| *r == reason)
            .expect("every reason has a counter")
            .1
    }
}

/// Per-tenant serving state. The registry handles double as the stats
/// source, so counters exist in exactly one place.
struct Tenant {
    bucket: TokenBucket,
    /// Jobs queued or running (the `tenant_cap` gate).
    in_flight: Arc<AtomicU64>,
    accepted: Counter,
    completed: Counter,
    shed: Counter,
    /// End-to-end latency, admission → Done, in microseconds.
    latency_us: Histogram,
}

/// State shared by the accept loop, connection threads and job closures.
struct Inner {
    config: ServeConfig,
    registry: Registry,
    engine: EngineHandle<()>,
    metrics: ServeMetrics,
    tenants: Mutex<BTreeMap<String, Tenant>>,
    jobs: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
    /// Signalled on every job completion and on drain requests; the value
    /// is `true` once a drain has been requested.
    progress: (Mutex<bool>, Condvar),
}

impl Inner {
    fn tenant_metrics(&self, registry: &Registry, name: &str) -> Tenant {
        Tenant {
            bucket: TokenBucket::new(self.config.rate, self.config.burst, Instant::now()),
            in_flight: Arc::new(AtomicU64::new(0)),
            accepted: registry.counter_with(
                "scratch_serve_tenant_accepted_total",
                "Submissions admitted, per tenant",
                &[("tenant", name)],
            ),
            completed: registry.counter_with(
                "scratch_serve_tenant_completed_total",
                "Jobs completed, per tenant",
                &[("tenant", name)],
            ),
            shed: registry.counter_with(
                "scratch_serve_tenant_shed_total",
                "Submissions shed, per tenant",
                &[("tenant", name)],
            ),
            latency_us: registry.histogram_with(
                "scratch_serve_latency_micros",
                "End-to-end job latency (admission to completion), per tenant",
                &[("tenant", name)],
            ),
        }
    }

    /// Update the backlog gauges from engine introspection.
    fn publish_backlog(&self) {
        self.metrics
            .queue_depth
            .set(self.engine.queue_depth() as f64);
        self.metrics.in_flight.set(self.engine.in_flight() as f64);
    }

    /// Opportunistically drain the engine's (unused) outcome channel so
    /// records never accumulate: the serving layer routes results through
    /// the job closures themselves.
    fn reap_outcomes(&self) {
        while self.engine.try_recv().is_some() {}
    }

    /// Jobs admitted but not yet completed.
    fn pending(&self) -> u64 {
        self.metrics.accepted.get() - self.metrics.completed.get()
    }

    /// The admission decision for one submission. Returns the response to
    /// send immediately; on acceptance the job has already been queued
    /// (its `Done` will follow through `tx`).
    fn admit(self: &Arc<Inner>, req: SubmitRequest, tx: &Sender<String>) -> Response {
        self.metrics.submitted.inc();
        self.reap_outcomes();
        if self.draining.load(Ordering::Acquire) {
            return self.reject(
                &req.tenant,
                RejectReason::Draining,
                None,
                "server is draining",
            );
        }
        let kind = match req.system_kind() {
            Ok(kind) => kind,
            Err(msg) => return self.reject(&req.tenant, RejectReason::Invalid, None, &msg),
        };
        if req.input.len() > self.config.max_input_words {
            let msg = format!(
                "input of {} words exceeds the {}-word limit",
                req.input.len(),
                self.config.max_input_words
            );
            return self.reject(&req.tenant, RejectReason::TooLarge, None, &msg);
        }
        if req.out_bytes > self.config.max_out_bytes {
            let msg = format!(
                "out_bytes {} exceeds the {}-byte limit",
                req.out_bytes, self.config.max_out_bytes
            );
            return self.reject(&req.tenant, RejectReason::TooLarge, None, &msg);
        }

        // Tenant-table gates. The lock covers the bucket mutation and the
        // in-flight reservation, so two racing submissions cannot both
        // squeeze through the last slot.
        let (tenant_in_flight, tenant_completed, tenant_latency) = {
            let mut tenants = self.tenants.lock().expect("tenant table lock");
            if !tenants.contains_key(&req.tenant) {
                let t = self.tenant_metrics(&self.registry, &req.tenant);
                tenants.insert(req.tenant.clone(), t);
            }
            let t = tenants.get_mut(&req.tenant).expect("just inserted");

            if t.in_flight.load(Ordering::Acquire) >= self.config.tenant_cap as u64 {
                t.shed.inc();
                let msg = format!(
                    "tenant has {} jobs queued or running (cap {})",
                    t.in_flight.load(Ordering::Acquire),
                    self.config.tenant_cap
                );
                return self.reject(&req.tenant, RejectReason::TenantQueueFull, None, &msg);
            }
            if self.engine.queue_depth() >= self.config.queue_cap {
                t.shed.inc();
                let msg = format!("engine queue at capacity ({} jobs)", self.config.queue_cap);
                return self.reject(&req.tenant, RejectReason::Overloaded, None, &msg);
            }
            if let Err(wait) = t.bucket.try_take(Instant::now()) {
                t.shed.inc();
                let ms = wait.as_millis().try_into().unwrap_or(u64::MAX).max(1);
                let msg = format!("tenant over its {}/s rate quota", self.config.rate);
                return self.reject(&req.tenant, RejectReason::RateLimited, Some(ms), &msg);
            }

            t.in_flight.fetch_add(1, Ordering::AcqRel);
            t.accepted.inc();
            (
                Arc::clone(&t.in_flight),
                t.completed.clone(),
                t.latency_us.clone(),
            )
        };

        let job = self.jobs.fetch_add(1, Ordering::AcqRel);
        self.metrics.accepted.inc();

        let inner = Arc::clone(self);
        let tx = tx.clone();
        let admitted = Instant::now();
        let label = format!("{}/{}", req.tenant, req.label);
        self.engine.submit(label, move || {
            let queue_us = micros(admitted.elapsed());
            inner.metrics.queue_us.observe(queue_us);
            inner.publish_backlog();
            let exec_start = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                execute(&req, kind, &inner.registry, inner.config.watchdog_cycles)
            }))
            .unwrap_or_else(|_| Err("job panicked inside the simulator".to_owned()));
            let exec_us = micros(exec_start.elapsed());

            let done = match run {
                Ok((report_cycles, instructions, words)) => JobDone {
                    job,
                    tenant: req.tenant.clone(),
                    label: req.label.clone(),
                    ok: true,
                    error: None,
                    cycles: report_cycles,
                    instructions,
                    digest: fnv1a(&words),
                    output: req.return_output.then_some(words),
                    queue_us,
                    exec_us,
                },
                Err(msg) => JobDone {
                    job,
                    tenant: req.tenant.clone(),
                    label: req.label.clone(),
                    ok: false,
                    error: Some(msg),
                    cycles: 0,
                    instructions: 0,
                    digest: fnv1a(&[]),
                    output: None,
                    queue_us,
                    exec_us,
                },
            };
            let failed = !done.ok;

            // Route the result. A gone client makes this a no-op; the
            // accounting below still runs, so drains never wedge and the
            // job is never "accepted then dropped" server-side.
            let line =
                serde_json::to_string(&Response::Done(done)).expect("JobDone always serializes");
            let _ = tx.send(line);

            tenant_latency.observe(micros(admitted.elapsed()));
            tenant_completed.inc();
            tenant_in_flight.fetch_sub(1, Ordering::AcqRel);
            inner.metrics.completed.inc();
            if failed {
                inner.metrics.failed.inc();
            }
            inner.publish_backlog();
            // Wake anyone waiting on drain progress.
            let (lock, cv) = &inner.progress;
            let _guard = lock.lock().expect("progress lock");
            cv.notify_all();
            Ok(())
        });
        self.publish_backlog();
        Response::Accepted { job }
    }

    fn reject(
        &self,
        tenant: &str,
        reason: RejectReason,
        retry_after_ms: Option<u64>,
        message: &str,
    ) -> Response {
        self.metrics.shed(reason).inc();
        Response::Rejected(Rejection {
            reason,
            tenant: tenant.to_owned(),
            retry_after_ms,
            message: message.to_owned(),
        })
    }

    fn stats(&self) -> StatsReply {
        let tenants = self.tenants.lock().expect("tenant table lock");
        let mut out = Vec::with_capacity(tenants.len());
        for (name, t) in tenants.iter() {
            let snap = t.latency_us.snapshot();
            let q = |p: f64| snap.quantile(p).unwrap_or(0);
            out.push(TenantStats {
                tenant: name.clone(),
                accepted: t.accepted.get(),
                shed: t.shed.get(),
                completed: t.completed.get(),
                in_flight: t.in_flight.load(Ordering::Acquire),
                latency_us: [q(0.50), q(0.95), q(0.99)],
            });
        }
        let m = &self.metrics;
        StatsReply {
            submitted: m.submitted.get(),
            accepted: m.accepted.get(),
            shed: m.shed.iter().map(|(_, c)| c.get()).sum(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            queue_depth: self.engine.queue_depth() as u64,
            in_flight: self.engine.in_flight() as u64,
            connections: m.connections.get() as u64,
            draining: self.draining.load(Ordering::Acquire),
            tenants: out,
        }
    }

    /// Handle one parsed request; returns the immediate response.
    fn dispatch(self: &Arc<Inner>, req: Request, tx: &Sender<String>) -> Response {
        match req {
            Request::Submit(submit) => self.admit(submit, tx),
            Request::Stats => Response::Stats(self.stats()),
            Request::Ping => Response::Pong,
            Request::Drain => {
                self.draining.store(true, Ordering::Release);
                let (lock, cv) = &self.progress;
                let mut requested = lock.lock().expect("progress lock");
                *requested = true;
                cv.notify_all();
                Response::Draining {
                    pending: self.pending(),
                }
            }
        }
    }
}

fn micros(d: Duration) -> u64 {
    d.as_micros().try_into().unwrap_or(u64::MAX)
}

/// Execute one admitted submission on the calling engine worker. Mirrors
/// a direct `scratch-system` run exactly (same allocation order, same
/// argument convention), which is what makes served results bit-identical
/// to offline execution.
fn execute(
    req: &SubmitRequest,
    kind: scratch_system::SystemKind,
    registry: &Registry,
    watchdog: u64,
) -> Result<(u64, u64, Vec<u32>), String> {
    let mut config = SystemConfig::preset(kind).with_registry(registry.clone());
    config.cu.cycle_limit = config.cu.cycle_limit.min(watchdog.max(1));
    let mut sys = System::new(config, &req.kernel).map_err(|e| e.to_string())?;
    let out = sys.alloc(req.out_bytes.max(4));
    let mut args = vec![u32::try_from(out).unwrap_or(0)];
    if !req.input.is_empty() {
        let inp = sys.alloc_words(&req.input);
        args.push(u32::try_from(inp).unwrap_or(0));
    }
    sys.set_args(&args);
    sys.dispatch(req.grid).map_err(|e| match e {
        SystemError::Cu(CuError::CycleLimit { .. }) => {
            format!("watchdog: job exceeded its {watchdog}-cycle budget")
        }
        other => other.to_string(),
    })?;
    let report = sys.report();
    let words = sys.read_words(out, usize::try_from(req.out_bytes.max(4) / 4).unwrap_or(0));
    Ok((report.cu_cycles, report.instructions(), words))
}

/// A running serve daemon. [`Server::shutdown`] (or a client's
/// [`Request::Drain`] followed by [`Server::wait_drain`] +
/// [`Server::shutdown`]) drains gracefully: admission stops, every
/// accepted job completes and is answered, then the listener and all
/// threads wind down.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| scratch_metrics::global().clone());
        let engine = Engine::new(config.workers)
            .with_registry(registry.clone())
            .with_watchdog(config.watchdog_cycles)
            .start();
        let inner = Arc::new(Inner {
            metrics: ServeMetrics::new(&registry),
            config,
            registry,
            engine,
            tenants: Mutex::new(BTreeMap::new()),
            jobs: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            progress: (Mutex::new(false), Condvar::new()),
        });
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept_inner = Arc::clone(&inner);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("scratch-serve-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_inner = Arc::clone(&accept_inner);
                    let handle = std::thread::Builder::new()
                        .name("scratch-serve-conn".to_owned())
                        .spawn(move || connection(&conn_inner, stream))
                        .expect("spawn connection thread");
                    accept_conns.lock().expect("conns lock").push(handle);
                }
            })
            .expect("spawn accept thread");
        Ok(Server {
            inner,
            addr,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving statistics.
    #[must_use]
    pub fn stats(&self) -> StatsReply {
        self.inner.stats()
    }

    /// Block until some client requests a drain ([`Request::Drain`]).
    /// The daemon's main loop parks here, then calls [`Server::shutdown`].
    pub fn wait_drain(&self) {
        let (lock, cv) = &self.inner.progress;
        let mut requested = lock.lock().expect("progress lock");
        while !*requested {
            requested = cv.wait(requested).expect("progress lock");
        }
    }

    /// Drain and stop: reject new submissions, wait for every accepted
    /// job to complete and be answered, then tear the listener, the
    /// connection threads and the engine pool down. Returns the final
    /// statistics.
    pub fn shutdown(mut self) -> StatsReply {
        self.inner.draining.store(true, Ordering::Release);
        // Wait for the backlog to drain. Completion closures signal the
        // condvar; the timeout makes the loop robust to missed wakeups.
        {
            let (lock, cv) = &self.inner.progress;
            let mut guard = lock.lock().expect("progress lock");
            while self.inner.pending() > 0 {
                let (g, _) = cv
                    .wait_timeout(guard, Duration::from_millis(50))
                    .expect("progress lock");
                guard = g;
            }
        }
        let stats = self.inner.stats();

        // Stop the accept loop (one last self-connection unblocks it) and
        // the connection readers (they poll `stop` on their read timeout).
        self.inner.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.conns.lock().expect("conns lock").drain(..) {
            let _ = t.join();
        }
        self.inner.reap_outcomes();
        stats
        // Dropping `inner` (last Arc) drops the EngineHandle, which joins
        // the now-idle pool workers.
    }
}

/// Cap on one request line; a line that exceeds it earns a protocol error
/// (64 MiB comfortably fits the largest legal kernel + input).
const MAX_LINE_BYTES: usize = 64 << 20;

/// One connection: reader side. Parses request lines, answers through the
/// writer channel, and exits on EOF, socket error, or server stop.
fn connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    inner.metrics.connections.inc();

    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("scratch-serve-write".to_owned())
        .spawn(move || {
            let mut stream = write_half;
            while let Ok(line) = rx.recv() {
                if stream.write_all(line.as_bytes()).is_err()
                    || stream.write_all(b"\n").is_err()
                    || stream.flush().is_err()
                {
                    break; // client gone; drain silently until senders drop
                }
            }
        })
        .expect("spawn writer thread");

    read_loop(inner, stream, &tx);

    inner.metrics.connections.dec();
    drop(tx);
    // The writer exits once every sender is gone — ours just dropped, and
    // job closures drop theirs at completion (a drain has already waited
    // for those by the time the server joins us).
    let _ = writer.join();
}

/// Read request lines, tolerating arbitrarily short reads, and dispatch
/// them. Malformed lines answer [`Response::Error`] and keep the
/// connection open.
fn read_loop(inner: &Arc<Inner>, mut stream: TcpStream, tx: &Sender<String>) {
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => return,
        };
        acc.extend_from_slice(&chunk[..n]);
        if acc.len() > MAX_LINE_BYTES {
            respond(
                tx,
                &Response::Error {
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                },
            );
            return;
        }
        // Process every complete line in the accumulator.
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=pos).collect();
            let line = &line[..line.len() - 1]; // strip the newline
            let line = std::str::from_utf8(line).unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let response = match serde_json::from_str::<Request>(line) {
                Ok(req) => inner.dispatch(req, tx),
                Err(e) => Response::Error {
                    message: format!("malformed request: {e}"),
                },
            };
            respond(tx, &response);
        }
    }
}

fn respond(tx: &Sender<String>, response: &Response) {
    let line = serde_json::to_string(response).expect("responses always serialize");
    let _ = tx.send(line);
}
