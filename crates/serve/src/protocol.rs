//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every line the client sends is one serialized [`Request`]; every line
//! the server sends back is one serialized [`Response`]. Messages use
//! serde's externally-tagged enum shape, so a submit line looks like
//!
//! ```json
//! {"Submit": {"tenant": "acme", "label": "job-1", "kernel": {…},
//!             "input": [1, 2, 3], "grid": [2, 1, 1], "out_bytes": 16384,
//!             "system": "dcdpm", "return_output": true}}
//! ```
//!
//! and is answered *immediately* with `{"Accepted": {…}}` or
//! `{"Rejected": {…}}` — the admission decision — and *later*, once the
//! job has run on the engine pool, with `{"Done": {…}}` on the same
//! connection. Accepted jobs always produce exactly one `Done`; rejected
//! submissions never do. Responses to different jobs may interleave in
//! completion order.

use serde::{Deserialize, Serialize};

use scratch_asm::Kernel;
use scratch_system::{ExecMode, SystemKind};

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a kernel for execution.
    Submit(SubmitRequest),
    /// Ask for the server's live statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain: stop admitting, finish every accepted
    /// job, then shut down. The daemon's `serve` loop exits afterwards.
    Drain,
    /// Request cancellation of a previously accepted job. Best-effort:
    /// a queued job is reaped before it starts, a running one stops at
    /// its next preemption quantum boundary. The job's [`Response::Done`]
    /// still arrives (with `ok: false` and error `"cancelled"`), so
    /// accepted jobs always produce exactly one `Done` either way.
    Cancel {
        /// The job id from the matching [`Response::Accepted`].
        job: u64,
    },
    /// Ask for the live SLO/queue introspection view (`scratch-tool ctl
    /// top`): per-tenant queue depths, rolling latency quantiles, shed
    /// ratio, error-budget burn, and the aggregated instruction-usage
    /// profile.
    Top,
}

/// The payload of a [`Request::Submit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tenant this job bills against (quotas and queues are per-tenant).
    pub tenant: String,
    /// Free-form label echoed back in the [`JobDone`].
    pub label: String,
    /// The assembled kernel to execute.
    pub kernel: Kernel,
    /// Input words copied into a fresh buffer; its base address becomes
    /// the second kernel argument. Empty = no input buffer (the kernel
    /// gets only the output base as argument 0).
    pub input: Vec<u32>,
    /// Grid in workgroups, `[x, y, z]`.
    pub grid: [u32; 3],
    /// Bytes of output buffer to allocate; its base address is kernel
    /// argument 0.
    pub out_bytes: u64,
    /// System preset: `"original"`, `"dcd"` or `"dcdpm"` (`None` =
    /// `"dcdpm"`, the paper's baseline).
    pub system: Option<String>,
    /// `true` to ship the full output buffer back in the [`JobDone`];
    /// `false` returns only its [FNV-1a digest](fnv1a) (load-test mode —
    /// the digest still proves bit-identity cheaply).
    pub return_output: bool,
    /// Execution tier: `"cycle"` (cycle-accurate pipeline, the default),
    /// `"fast"` (block-compiled functional tier — jobs that don't read
    /// cycle counts skip the cycle scheduler and report zero cycles), or
    /// `"fast-timing"` (both tiers, cross-checked byte for byte).
    pub exec: Option<String>,
}

impl SubmitRequest {
    /// Resolve the requested system preset.
    ///
    /// # Errors
    ///
    /// An unknown preset name.
    pub fn system_kind(&self) -> Result<SystemKind, String> {
        match self.system.as_deref() {
            None | Some("dcdpm") => Ok(SystemKind::DcdPm),
            Some("dcd") => Ok(SystemKind::Dcd),
            Some("original") => Ok(SystemKind::Original),
            Some(other) => Err(format!("unknown system preset `{other}`")),
        }
    }

    /// Resolve the requested execution tier.
    ///
    /// # Errors
    ///
    /// An unknown tier name.
    pub fn exec_mode(&self) -> Result<ExecMode, String> {
        match self.exec.as_deref() {
            None | Some("cycle") => Ok(ExecMode::Cycle),
            Some("fast") => Ok(ExecMode::Fast),
            Some("fast-timing") => Ok(ExecMode::FastWithTiming),
            Some(other) => Err(format!("unknown exec mode `{other}`")),
        }
    }
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission passed admission control; a [`Response::Done`] with
    /// the same job id will follow.
    Accepted {
        /// Server-assigned job id, unique per server lifetime.
        job: u64,
    },
    /// The submission was shed by admission control — the typed
    /// `429`-style outcome. No job was queued; nothing will follow.
    Rejected(Rejection),
    /// A previously accepted job finished (successfully or not).
    Done(JobDone),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::Drain`]: the server stopped admitting and
    /// will exit once `pending` jobs have completed.
    Draining {
        /// Jobs still queued or running at the time of the request.
        pending: u64,
    },
    /// Answer to [`Request::Cancel`].
    Cancelled {
        /// The job id the cancellation targeted.
        job: u64,
        /// `true` if the job was still live and cancellation was
        /// delivered; `false` when the id is unknown or the job already
        /// completed (its `Done` was produced — too late to cancel).
        cancelled: bool,
    },
    /// Answer to [`Request::Top`].
    Top(TopReply),
    /// The request line could not be parsed or violated the protocol.
    /// The connection stays open.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// One tenant's row in a [`TopReply`]: live backlog plus rolling-window
/// SLO telemetry (last 60 s) and the profiler's aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTop {
    /// Tenant name.
    pub tenant: String,
    /// Jobs parked in this tenant's engine queue right now (waiting for
    /// a first or next slice).
    pub queued: u64,
    /// Jobs queued or running right now.
    pub in_flight: u64,
    /// Completions inside the rolling window.
    pub completed: u64,
    /// Sheds inside the rolling window.
    pub shed: u64,
    /// Rolling median end-to-end latency, µs.
    pub p50_us: u64,
    /// Rolling 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Rolling 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Shed fraction inside the window, 0..=1.
    pub shed_ratio: f64,
    /// Error-budget burn rate (1.0 = burning exactly the allowed rate).
    pub budget_burn: f64,
    /// Dynamic instructions folded into the tenant's aggregated
    /// instruction-usage signature (0 when profiling is off).
    pub instructions: u64,
    /// Name of the minimal trim preset covering the tenant's observed
    /// traffic (`-` until the profiler has seen an instruction).
    pub preset: String,
}

/// Answer to [`Request::Top`]: the live introspection view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopReply {
    /// Jobs waiting in tenant queues right now.
    pub queue_depth: u64,
    /// Jobs executing on engine workers right now.
    pub in_flight: u64,
    /// `true` once a drain has been requested.
    pub draining: bool,
    /// Per-tenant rows, sorted by tenant name.
    pub tenants: Vec<TenantTop>,
}

/// Why a submission was shed, and what the client should do about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// The typed shed reason.
    pub reason: RejectReason,
    /// Tenant the decision applied to.
    pub tenant: String,
    /// For rate-limited tenants: how long until the token bucket refills
    /// enough to admit one job.
    pub retry_after_ms: Option<u64>,
    /// Human-readable detail.
    pub message: String,
}

/// The typed shed reasons (the protocol's `429` taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The tenant's token bucket is empty (sustained request rate above
    /// its quota). Retry after `retry_after_ms`.
    RateLimited,
    /// The tenant already has its maximum number of jobs queued or
    /// running. Retry after one of them completes.
    TenantQueueFull,
    /// The shared engine queue is at capacity — the server as a whole is
    /// overloaded and sheds regardless of tenant.
    Overloaded,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
    /// The request itself is oversized (kernel or input beyond the
    /// configured limits). Retrying is pointless.
    TooLarge,
    /// The request was malformed (e.g. unknown system preset). Retrying
    /// the same request is pointless.
    Invalid,
    /// The connection sat idle (no request line, no job in flight) past
    /// the server's idle timeout and is being closed. Sent once, best
    /// effort, just before the server drops the connection.
    IdleTimeout,
}

impl RejectReason {
    /// Stable lowercase name (used as the `reason` metrics label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::RateLimited => "rate_limited",
            RejectReason::TenantQueueFull => "tenant_queue_full",
            RejectReason::Overloaded => "overloaded",
            RejectReason::Draining => "draining",
            RejectReason::TooLarge => "too_large",
            RejectReason::Invalid => "invalid",
            RejectReason::IdleTimeout => "idle_timeout",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Completion record of one accepted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobDone {
    /// The id from the matching [`Response::Accepted`].
    pub job: u64,
    /// Tenant the job billed against.
    pub tenant: String,
    /// Label from the submission.
    pub label: String,
    /// `true` if the kernel ran to completion.
    pub ok: bool,
    /// Failure description when `ok` is `false` (simulator error,
    /// watchdog trip, …).
    pub error: Option<String>,
    /// Simulated CU cycles of the run (0 on failure).
    pub cycles: u64,
    /// Instructions the run retired (0 on failure).
    pub instructions: u64,
    /// [FNV-1a](fnv1a) digest of the output buffer words.
    pub digest: u64,
    /// The output buffer, present when `return_output` was set.
    pub output: Option<Vec<u32>>,
    /// Microseconds the job waited for a worker after admission.
    pub queue_us: u64,
    /// Microseconds the job spent executing.
    pub exec_us: u64,
    /// Of `exec_us`, the microseconds spent on the checkpoint plane:
    /// capturing + serializing state at quantum expiries and decoding +
    /// restoring it at slice entries. `exec_us - snap_us` is pure run
    /// time.
    pub snap_us: u64,
    /// Execution slices the job took (1 = never preempted).
    pub slices: u64,
    /// `true` when this completion was produced by write-ahead-log
    /// recovery rather than the admitting connection's lifetime: the job
    /// was re-admitted (or its completion re-derived) after a server
    /// restart. Live completions always carry `false`.
    pub redelivered: bool,
}

/// Per-tenant slice of a [`StatsReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions shed (all reasons).
    pub shed: u64,
    /// Jobs completed (ok and failed).
    pub completed: u64,
    /// Jobs queued or running right now.
    pub in_flight: u64,
    /// End-to-end latency quantiles in microseconds (admission → done),
    /// `[p50, p95, p99]`; zeros until the first completion.
    pub latency_us: [u64; 3],
}

/// Answer to [`Request::Stats`]: the serving counters at a point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Total submissions received (admitted + shed).
    pub submitted: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions shed (all reasons).
    pub shed: u64,
    /// Jobs completed, successfully or not.
    pub completed: u64,
    /// Completed jobs that failed (simulator error or watchdog).
    pub failed: u64,
    /// Completed jobs that ended via [`Request::Cancel`] (a subset of
    /// `failed`).
    pub cancelled: u64,
    /// Jobs waiting in the engine queue right now.
    pub queue_depth: u64,
    /// Jobs executing on engine workers right now.
    pub in_flight: u64,
    /// Open client connections.
    pub connections: u64,
    /// `true` once a drain has been requested.
    pub draining: bool,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

/// FNV-1a over the little-endian bytes of `words` — the digest `Done`
/// carries so clients can check bit-identity without shipping the buffer.
#[must_use]
pub fn fnv1a(words: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_order_sensitive() {
        assert_ne!(fnv1a(&[1, 2]), fnv1a(&[2, 1]));
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
    }
}
