//! # scratch-bench
//!
//! The experiment harness: one module per table/figure of the SCRATCH
//! paper's evaluation (§4), regenerating the same rows and series from the
//! simulator + resource/power model.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`] | Fig. 4 — instruction-mix characterisation |
//! | [`fig6`] | Fig. 6 — resource utilisation, trimming savings, power, parallelism |
//! | [`sec41`] | §4.1.2 — DCD / DCD+PM speedups and energy-efficiency |
//! | [`fig7`] | Fig. 7 — multi-core / multi-thread parallelism sweeps |
//! | [`headline`] | Abstract — aggregate speedup / IPJ gains |
//! | [`ablation`] | Design-choice studies: occupancy, VALU scaling, prefetch capacity, bit-width, per-kernel reconfiguration (§4.3) |
//! | [`stalls`] | Cycle-attribution profiles from the `scratch-trace` subsystem |
//! | [`util`] | Per-kernel utilisation (IPC, FU occupancy, memory pressure) from the metrics plane |
//! | [`profile`] | Per-kernel instruction signatures and minimal covering trim presets from the execution profiler |
//! | [`recovery`] | Crash-recovery latency and replayed/resumed/deduped splits from the `scratch-wal` durability layer |
//!
//! The `experiments` binary prints each as an aligned text table and can
//! emit JSON for regeneration of `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod headline;
pub mod profile;
pub mod recovery;
pub mod resilience;
pub mod runner;
pub mod sec41;
pub mod stalls;
pub mod util;

pub use runner::{engine_map, Scale};
