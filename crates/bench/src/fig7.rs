//! Fig. 7 — throughput and energy-efficiency gains from reinvesting the
//! trimmed area into multi-core (A) or multi-thread (B) parallelism,
//! across the paper's per-benchmark parameter sweeps.

use serde::{Deserialize, Serialize};

use scratch_core::Scratch;
use scratch_fpga::{allocate_multicore_bits, Device, ParallelPlan};
use scratch_kernels::{
    bitonic::BitonicSort,
    cnn::Cnn,
    conv2d::Conv2d,
    gaussian::Gaussian,
    kmeans::KMeans,
    matmul::MatrixMul,
    nin::Nin,
    pooling::{Mode, Pooling},
    transpose::Transpose,
    vec_ops::MatrixAdd,
    BenchError, Benchmark,
};
use scratch_system::SystemKind;

use crate::runner::{engine_map, full_plan, run_summary, trim_of, Scale};

/// Gains of one parallel configuration against the two references.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GainSet {
    /// Speedup vs the original MIAOW system.
    pub speedup_vs_original: f64,
    /// Speedup vs the DCD+PM baseline.
    pub speedup_vs_baseline: f64,
    /// IPJ gain vs the original system.
    pub ipj_vs_original: f64,
    /// IPJ gain vs the baseline.
    pub ipj_vs_baseline: f64,
}

/// One sweep point of Fig. 7 (both panels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Benchmark family (Fig. 7 column).
    pub family: String,
    /// Swept parameter, e.g. `"block=512"`.
    pub param: String,
    /// Uses floating point.
    pub fp: bool,
    /// Multi-core plan and gains (panel A).
    pub multicore_plan: ParallelPlan,
    /// Gains of the multi-core configuration.
    pub multicore: GainSet,
    /// Multi-thread plan and gains (panel B).
    pub multithread_plan: ParallelPlan,
    /// Gains of the multi-thread configuration.
    pub multithread: GainSet,
}

struct SweepEntry {
    family: &'static str,
    param: String,
    bench: Box<dyn Benchmark>,
    /// INT8 datapath (NIN variant).
    int8: bool,
}

fn entry(family: &'static str, param: String, bench: Box<dyn Benchmark>) -> SweepEntry {
    SweepEntry {
        family,
        param,
        bench,
        int8: false,
    }
}

#[allow(clippy::vec_init_then_push)]
fn sweep_entries(scale: Scale) -> Vec<SweepEntry> {
    let s = scale;
    let mut v: Vec<SweepEntry> = Vec::new();

    for n in match s {
        Scale::Quick => vec![32],
        Scale::Paper => vec![128, 256, 512],
    } {
        v.push(entry(
            "Matrix Add",
            format!("block={n}"),
            Box::new(MatrixAdd::new(n, false)),
        ));
        v.push(entry(
            "Matrix Add",
            format!("block={n} fp"),
            Box::new(MatrixAdd::new(n, true)),
        ));
    }
    for n in match s {
        Scale::Quick => vec![64],
        Scale::Paper => vec![64, 128, 256],
    } {
        v.push(entry(
            "Matrix Multiply",
            format!("block={n}"),
            Box::new(MatrixMul::new(n, false)),
        ));
        v.push(entry(
            "Matrix Multiply",
            format!("block={n} fp"),
            Box::new(MatrixMul::new(n, true)),
        ));
    }
    for n in match s {
        Scale::Quick => vec![64],
        Scale::Paper => vec![128, 256, 512],
    } {
        v.push(entry(
            "Matrix Transpose",
            format!("block={n}"),
            Box::new(Transpose::new(n)),
        ));
    }
    for n in match s {
        Scale::Quick => vec![128],
        Scale::Paper => vec![64, 512, 2048],
    } {
        v.push(entry(
            "Bitonic Sort",
            format!("chunk={n}"),
            Box::new(BitonicSort::new(n)),
        ));
    }
    for n in match s {
        Scale::Quick => vec![8],
        Scale::Paper => vec![16, 64, 128],
    } {
        v.push(entry(
            "Gaussian Elimination",
            format!("size={n}"),
            Box::new(Gaussian::new(n)),
        ));
    }
    for k in [5u32, 10] {
        v.push(entry(
            "K-Means",
            format!("clusters={k}"),
            Box::new(KMeans::new(512, k, s.pick(2, 4))),
        ));
    }
    for b in match s {
        Scale::Quick => vec![16],
        Scale::Paper => vec![32, 128, 512],
    } {
        v.push(entry(
            "2D Conv (K=5)",
            format!("block={b}"),
            Box::new(Conv2d::new(b, 5, false)),
        ));
    }
    for k in match s {
        Scale::Quick => vec![3],
        Scale::Paper => vec![3, 5, 7, 15],
    } {
        let b = s.pick(16, 512);
        v.push(entry(
            "2D Conv (B=512)",
            format!("kernel={k}"),
            Box::new(Conv2d::new(b, k, false)),
        ));
    }
    // "image" is the pooling *input* dimension; the output is image/2.
    for img in match s {
        Scale::Quick => vec![128],
        Scale::Paper => vec![128, 256, 512],
    } {
        v.push(entry(
            "2x2 Pooling",
            format!("max image={img}"),
            Box::new(Pooling::new(img / 2, Mode::Max)),
        ));
    }
    v.push(entry(
        "2x2 Pooling",
        format!("median image={}", s.pick(128, 256)),
        Box::new(Pooling::new(s.pick(64, 128), Mode::Median)),
    ));
    v.push(entry(
        "2x2 Pooling",
        format!("avg image={}", s.pick(128, 256)),
        Box::new(Pooling::new(s.pick(64, 128), Mode::Average)),
    ));
    for size in match s {
        Scale::Quick => vec![16],
        Scale::Paper => vec![32, 64, 128],
    } {
        v.push(entry(
            "CNN",
            format!("image={size}"),
            Box::new(Cnn::new(size, false)),
        ));
    }
    v.push(entry(
        "CNN",
        format!("image={} fp", s.pick(16, 32)),
        Box::new(Cnn::new(s.pick(16, 32), true)),
    ));
    for layers in match s {
        Scale::Quick => vec![3],
        Scale::Paper => vec![3, 7, 15],
    } {
        v.push(entry(
            "CNN",
            format!("layers={layers}"),
            Box::new(Cnn::new(s.pick(16, 32), false).with_layers(layers)),
        ));
    }
    for maps in match s {
        Scale::Quick => vec![4],
        Scale::Paper => vec![4, 16, 64],
    } {
        v.push(entry(
            "NiN",
            format!("features={maps}"),
            Box::new(Nin::new(s.pick(16, 32), 32).with_maps(maps)),
        ));
    }
    v.push(SweepEntry {
        family: "NiN",
        param: "features=16 int8".to_string(),
        bench: Box::new(Nin::new(s.pick(16, 32), 8)),
        int8: true,
    });
    v
}

/// Measure one sweep point: four configured runs plus the trim study.
fn sweep_point(e: SweepEntry) -> Result<Fig7Point, BenchError> {
    let scratch = Scratch::new();
    let bench = e.bench.as_ref();
    let trim = trim_of(bench)?;

    let orig = run_summary(bench, SystemKind::Original, full_plan(), None)?;
    let base = run_summary(bench, SystemKind::DcdPm, full_plan(), None)?;

    let mc_plan = if e.int8 {
        allocate_multicore_bits(&Device::XC7VX690T, &trim.kept_opcodes(), 4, 8)
    } else {
        scratch.plan_multicore(&trim, 3)
    };
    let mt_plan = scratch.plan_multithread(&trim, 4);

    let mc = run_summary(bench, SystemKind::DcdPm, mc_plan, Some(&trim))?;
    let mt = run_summary(bench, SystemKind::DcdPm, mt_plan, Some(&trim))?;

    let gains = |s: &scratch_core::RunSummary| GainSet {
        speedup_vs_original: s.speedup_vs(&orig),
        speedup_vs_baseline: s.speedup_vs(&base),
        ipj_vs_original: s.ipj_gain_vs(&orig),
        ipj_vs_baseline: s.ipj_gain_vs(&base),
    };

    Ok(Fig7Point {
        family: e.family.to_string(),
        param: e.param,
        fp: bench.uses_fp(),
        multicore_plan: mc_plan,
        multicore: gains(&mc),
        multithread_plan: mt_plan,
        multithread: gains(&mt),
    })
}

/// Run the Fig. 7 sweeps serially (both panels share the reference runs).
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn sweep(scale: Scale) -> Result<Vec<Fig7Point>, BenchError> {
    sweep_with_jobs(scale, 1)
}

/// Run the Fig. 7 sweeps with `jobs` engine workers, each sweep point one
/// job (`0` = one per core). The points come back in sweep order and are
/// bit-identical for any job count — every point is an independent
/// simulation.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn sweep_with_jobs(scale: Scale, jobs: usize) -> Result<Vec<Fig7Point>, BenchError> {
    engine_map(
        jobs,
        sweep_entries(scale)
            .into_iter()
            .map(|e| (format!("fig7 {} {}", e.family, e.param), e)),
        sweep_point,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes() {
        let points = sweep(Scale::Quick).expect("fig7");
        assert!(points.len() >= 15);
        let mut winners = 0;
        for p in &points {
            // Small workloads may cross below 1x (one wavefront per CU
            // cannot hide memory latency) — that crossover is part of the
            // paper's shape; big losses are not.
            assert!(
                p.multicore.speedup_vs_baseline > 0.7,
                "{} {}: MC {:.2}",
                p.family,
                p.param,
                p.multicore.speedup_vs_baseline
            );
            assert!(
                p.multicore.speedup_vs_baseline < 4.5,
                "{} {}: MC {:.2} too large",
                p.family,
                p.param,
                p.multicore.speedup_vs_baseline
            );
            assert!(
                p.multithread.speedup_vs_baseline > 0.7,
                "{} {}: MT {:.2}",
                p.family,
                p.param,
                p.multithread.speedup_vs_baseline
            );
            // vs-original gains are large (memory path + parallelism).
            assert!(
                p.multicore.speedup_vs_original > 3.0,
                "{} {}: vs orig {:.1}",
                p.family,
                p.param,
                p.multicore.speedup_vs_original
            );
            if p.multicore
                .speedup_vs_baseline
                .max(p.multithread.speedup_vs_baseline)
                > 1.3
            {
                winners += 1;
            }
        }
        assert!(
            winners * 2 >= points.len(),
            "parallelism should win clearly on most workloads ({winners}/{})",
            points.len()
        );
        // At least one point in the hundreds-x regime vs original.
        let max = points
            .iter()
            .map(|p| p.multicore.speedup_vs_original)
            .fold(0.0, f64::max);
        assert!(max > 30.0, "peak vs-original speedup {max:.0}");
    }
}
