//! Ablation studies of the design choices the paper motivates but does not
//! sweep directly: wavefront occupancy (latency hiding), VALU scaling,
//! prefetch-capacity behaviour, datapath bit-width, and the §4.3
//! per-kernel-trimming / partial-reconfiguration trade-off.

use serde::{Deserialize, Serialize};

use scratch_core::{
    analyze_per_kernel, configure, trim_kernels, PerKernelAnalysis, ReconfigModel, Scratch,
};
use scratch_cu::CuConfig;
use scratch_fpga::{allocate_multicore_bits, cu_resources, power, CuShape, Device, SystemProfile};
use scratch_kernels::{
    cnn::Cnn,
    matmul::MatrixMul,
    nin::Nin,
    pooling::{Mode, Pooling},
    BenchError, Benchmark,
};
use scratch_system::{SystemConfig, SystemKind};

use crate::runner::Scale;

/// One point of the wavefront-occupancy ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OccupancyPoint {
    /// Maximum resident wavefronts.
    pub max_wavefronts: u8,
    /// Cycles for the workload.
    pub cycles: u64,
    /// Speedup relative to the single-wavefront configuration.
    pub speedup_vs_one: f64,
}

/// Latency hiding: the same matmul with 1..40 resident wavefronts.
/// MIAOW's 40-deep fetch controller is what makes the slow FPGA memory
/// tolerable at all.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn wavefront_occupancy(scale: Scale) -> Result<Vec<OccupancyPoint>, BenchError> {
    let bench = MatrixMul::new(64, false);
    let mut out = Vec::new();
    let mut one = None;
    for max in [1u8, 2, 4, 8, 16, 40] {
        let cu = CuConfig {
            max_wavefronts: max,
            ..CuConfig::default()
        };
        let config = SystemConfig::preset(SystemKind::DcdPm).with_cu_config(cu);
        let report = bench.run(config)?;
        let cycles = report.cu_cycles;
        let base = *one.get_or_insert(cycles);
        out.push(OccupancyPoint {
            max_wavefronts: max,
            cycles,
            speedup_vs_one: base as f64 / cycles as f64,
        });
    }
    let _ = scale;
    Ok(out)
}

/// One point of the VALU-scaling ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValuPoint {
    /// Integer VALUs in the CU.
    pub valus: u8,
    /// Cycles for the workload.
    pub cycles: u64,
    /// Speedup relative to one VALU.
    pub speedup_vs_one: f64,
}

/// Multi-thread scaling curve: 1..4 integer VALUs on the conv workload
/// (Fig. 7B shows the endpoints; this is the whole curve).
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn valu_scaling(scale: Scale) -> Result<Vec<ValuPoint>, BenchError> {
    let bench = scratch_kernels::conv2d::Conv2d::new(scale.pick(16, 64), 5, false);
    let mut out = Vec::new();
    let mut one = None;
    for valus in 1u8..=4 {
        let cu = CuConfig {
            int_valus: valus,
            ..CuConfig::default()
        };
        let config = SystemConfig::preset(SystemKind::DcdPm).with_cu_config(cu);
        let report = bench.run(config)?;
        let cycles = report.cu_cycles;
        let base = *one.get_or_insert(cycles);
        out.push(ValuPoint {
            valus,
            cycles,
            speedup_vs_one: base as f64 / cycles as f64,
        });
    }
    Ok(out)
}

/// One point of the prefetch-capacity ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchPoint {
    /// Input image dimension (bytes grow quadratically).
    pub image: u32,
    /// Input bytes.
    pub input_bytes: u64,
    /// Prefetch hit count.
    pub hits: u64,
    /// Global (miss) access count.
    pub misses: u64,
    /// DCD+PM speedup over DCD (collapses once data outgrows the buffer).
    pub pm_speedup: f64,
}

/// The prefetch-capacity cliff: 2×2 pooling over growing images. Once the
/// input exceeds the ~3.8 MB of BRAM dedicated to the prefetch memory,
/// the surplus spills to the MicroBlaze path and the PM advantage fades —
/// the behaviour §4.1.1 alludes to when distributing BRAMs across CUs.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn prefetch_capacity(scale: Scale) -> Result<Vec<PrefetchPoint>, BenchError> {
    let images: &[u32] = match scale {
        Scale::Quick => &[128, 512],
        Scale::Paper => &[256, 512, 1024, 1536],
    };
    let mut out = Vec::new();
    for &image in images {
        let bench = Pooling::new(image / 2, Mode::Max);
        let pm = bench.run(SystemConfig::preset(SystemKind::DcdPm))?;
        let dcd = bench.run(SystemConfig::preset(SystemKind::Dcd))?;
        out.push(PrefetchPoint {
            image,
            input_bytes: u64::from(image) * u64::from(image) * 4,
            hits: pm.prefetch_hits,
            misses: pm.global_accesses,
            pm_speedup: dcd.seconds / pm.seconds,
        });
    }
    Ok(out)
}

/// One point of the datapath bit-width ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitwidthPoint {
    /// Vector datapath width in bits.
    pub bits: u8,
    /// Trimmed CU flip-flops.
    pub cu_ff: u64,
    /// CUs the routable area fits.
    pub cus: u8,
    /// Board power of the multi-core configuration (W).
    pub power_w: f64,
}

/// Datapath bit-width vs parallelism: the intro's "adjust the bitwidth of
/// the datapath" and §4.2's INT8 NIN, swept over 8/16/24/32 bits.
///
/// # Errors
///
/// Propagates kernel-construction failures.
pub fn datapath_bits(scale: Scale) -> Result<Vec<BitwidthPoint>, BenchError> {
    let nin = Nin::new(scale.pick(8, 32), 32);
    let trim = trim_kernels(&nin.kernels()?)?;
    let kept = trim.kept_opcodes();
    let mut out = Vec::new();
    for bits in [8u8, 16, 24, 32] {
        let plan = allocate_multicore_bits(&Device::XC7VX690T, &kept, 4, bits);
        let shape = CuShape {
            kept: kept.clone(),
            int_valus: plan.int_valus,
            fp_valus: plan.fp_valus,
            datapath_bits: bits,
        };
        out.push(BitwidthPoint {
            bits,
            cu_ff: cu_resources(&shape).ff,
            cus: plan.cus,
            power_w: power(SystemProfile::DCD_PM, &shape, plan.cus).total_w(),
        });
    }
    Ok(out)
}

/// The §4.3 per-kernel trimming study over the multi-kernel AI workloads.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn per_kernel_trimming(scale: Scale) -> Result<Vec<PerKernelAnalysis>, BenchError> {
    let apps: Vec<(String, Vec<scratch_asm::Kernel>, Box<dyn Benchmark>)> = vec![
        {
            let cnn = Cnn::new(scale.pick(8, 32), false);
            (
                "CNN (INT32)".into(),
                cnn.kernels()?,
                Box::new(cnn) as Box<dyn Benchmark>,
            )
        },
        {
            let nin = Nin::new(scale.pick(8, 32), 32);
            ("NiN (INT32)".into(), nin.kernels()?, Box::new(nin))
        },
    ];
    let scratch = Scratch::new();
    let mut out = Vec::new();
    for (name, kernels, bench) in apps {
        let trim = trim_kernels(&kernels)?;
        let plan = scratch.plan_multicore(&trim, 3);
        let report = bench.run(configure(SystemKind::DcdPm, plan, Some(&trim)))?;
        out.push(analyze_per_kernel(
            &name,
            &kernels,
            &report,
            plan,
            &ReconfigModel::default(),
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_monotonically_hides_latency() {
        let points = wavefront_occupancy(Scale::Quick).expect("occupancy");
        assert_eq!(points.len(), 6);
        for w in points.windows(2) {
            assert!(
                w[1].cycles <= w[0].cycles,
                "more wavefronts must never slow the CU down"
            );
        }
        let last = points.last().unwrap();
        assert!(
            last.speedup_vs_one > 2.0,
            "occupancy should hide a solid share of latency ({:.1}x)",
            last.speedup_vs_one
        );
        // The benefit saturates: most of the 40-wave gain is reached by 8.
        let at_8 = points.iter().find(|p| p.max_wavefronts == 8).unwrap();
        assert!(at_8.speedup_vs_one > last.speedup_vs_one * 0.7);
    }

    #[test]
    fn valu_scaling_saturates() {
        let points = valu_scaling(Scale::Quick).expect("valus");
        assert!(points[1].speedup_vs_one > 1.2, "2 VALUs help");
        assert!(points[3].speedup_vs_one > points[1].speedup_vs_one);
        assert!(
            points[3].speedup_vs_one < 4.0,
            "frontend bounds the scaling below ideal"
        );
    }

    #[test]
    fn prefetch_capacity_cliff_appears() {
        let points = prefetch_capacity(Scale::Quick).expect("prefetch");
        // Small image: everything hits; large: still hits at quick scale.
        assert!(points[0].misses == 0);
        assert!(points[0].pm_speedup > 3.0);
    }

    #[test]
    fn narrower_datapaths_fit_more_cus() {
        let points = datapath_bits(Scale::Quick).expect("bits");
        assert_eq!(points.len(), 4);
        assert!(points[0].cu_ff < points[3].cu_ff);
        assert!(
            points[0].cus >= points[3].cus,
            "8-bit should never fit fewer CUs"
        );
        assert_eq!(points[0].cus, 4, "INT8 fits the paper's 4th CU");
    }

    #[test]
    fn per_kernel_trimming_reports_crossover() {
        let rows = per_kernel_trimming(Scale::Quick).expect("per-kernel");
        for a in &rows {
            assert!(
                a.reconfigurations > 0,
                "{}: AI apps alternate kernels",
                a.name
            );
            assert!(a.union_kept >= *a.per_kernel_kept.iter().max().unwrap());
            assert!(a.per_kernel_seconds >= a.union_seconds);
        }
    }
}
