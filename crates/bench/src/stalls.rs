//! Cycle-attribution study: where do wavefront-cycles go under each system
//! preset?
//!
//! Runs the Matrix Add kernels (INT32 and SP FP) with summary-mode tracing
//! and collects the stall taxonomy per preset. The profile makes the
//! paper's §4.1 memory-system argument directly visible: under the
//! `Original` single-clock system almost every wavefront-cycle is parked on
//! `s_waitcnt` waiting for the serialised MicroBlaze memory path, while
//! DCD+PM shifts the bottleneck back onto the compute pipeline.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use scratch_kernels::{vec_ops::MatrixAdd, BenchError, Benchmark};
use scratch_system::{StallReason, SystemConfig, SystemKind, TraceMode};

use crate::Scale;

/// Stall profile of one benchmark under one system preset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StallRow {
    /// Benchmark name.
    pub name: String,
    /// System preset label.
    pub system: String,
    /// CU cycles of the run.
    pub cycles: u64,
    /// Wavefront-cycles that issued an instruction.
    pub issued_cycles: u64,
    /// Fraction of resident wavefront-cycles that issued, in percent.
    pub issue_occupancy_percent: f64,
    /// Attributed wavefront-cycles per stall reason (kebab-case labels).
    pub stalls: BTreeMap<String, u64>,
}

impl StallRow {
    /// Attributed wavefront-cycles for `reason` (0 when absent).
    #[must_use]
    pub fn stall_cycles(&self, reason: StallReason) -> u64 {
        self.stalls.get(reason.label()).copied().unwrap_or(0)
    }
}

/// Trace Matrix Add (INT32 and SP FP) under every system preset.
///
/// # Errors
///
/// Propagates kernel-construction and simulation failures.
pub fn stall_profiles(scale: Scale) -> Result<Vec<StallRow>, BenchError> {
    let n = scale.pick(16, 128);
    let mut rows = Vec::new();
    for fp in [false, true] {
        let bench = MatrixAdd::new(n, fp);
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            let config = SystemConfig::preset(kind).with_trace(TraceMode::Summary);
            let report = bench.run(config)?;
            let trace = report
                .trace
                .expect("summary tracing was requested on this run");
            trace
                .check_invariant()
                .expect("stall attribution must tile residency");
            rows.push(StallRow {
                name: bench.name(),
                system: kind.label().to_owned(),
                cycles: trace.cycles,
                issued_cycles: trace.issued_cycles,
                issue_occupancy_percent: trace.issue_occupancy() * 100.0,
                stalls: trace
                    .stalls
                    .iter()
                    .map(|(&r, &c)| (r.label().to_owned(), c))
                    .collect(),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_both_kernels_under_every_preset() {
        let rows = stall_profiles(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 6);
        // The Original system is memory-bound: s_waitcnt on vector memory
        // dominates all compute-side stalls.
        let orig = &rows[0];
        assert!(orig.system.contains("Original"));
        assert!(
            orig.stall_cycles(StallReason::WaitcntVm)
                > orig.stall_cycles(StallReason::ScoreboardRaw)
        );
        // DCD+PM prefetching removes server queueing entirely.
        let pm = &rows[2];
        assert!(
            pm.stall_cycles(StallReason::MemoryQueue) < orig.stall_cycles(StallReason::MemoryQueue)
        );
    }
}
