//! The abstract's headline numbers: average speedup and energy-efficiency
//! of the trimmed + parallelised designs against the original MIAOW and
//! against the untrimmed baseline.

use serde::{Deserialize, Serialize};

use crate::fig7::Fig7Point;

/// Aggregate gains across the benchmark sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Average speedup vs the original MIAOW system (paper: 140×).
    pub avg_speedup_vs_original: f64,
    /// Average IPJ gain vs the original system (paper: 115×).
    pub avg_ipj_vs_original: f64,
    /// Average speedup vs the DCD+PM baseline (paper: 2.4×).
    pub avg_speedup_vs_baseline: f64,
    /// Average IPJ gain vs the baseline (paper: 2.1×).
    pub avg_ipj_vs_baseline: f64,
    /// Peak speedup vs the baseline (paper: 3.0× multi-core / 3.5×
    /// multi-thread).
    pub peak_speedup_vs_baseline: f64,
    /// Peak IPJ gain vs the original (paper: up to 252×).
    pub peak_ipj_vs_original: f64,
    /// Points aggregated.
    pub points: usize,
}

/// Aggregate the Fig. 7 sweep, taking each point's better parallel mode
/// (as the paper's per-application designs do).
#[must_use]
pub fn compute(points: &[Fig7Point]) -> Headline {
    let n = points.len().max(1) as f64;
    let best = |p: &Fig7Point| {
        if p.multicore.speedup_vs_baseline >= p.multithread.speedup_vs_baseline {
            p.multicore
        } else {
            p.multithread
        }
    };
    let sum = |f: &dyn Fn(&Fig7Point) -> f64| points.iter().map(f).sum::<f64>();
    let max = |f: &dyn Fn(&Fig7Point) -> f64| points.iter().map(f).fold(0.0, f64::max);
    Headline {
        avg_speedup_vs_original: sum(&|p| best(p).speedup_vs_original) / n,
        avg_ipj_vs_original: sum(&|p| best(p).ipj_vs_original) / n,
        avg_speedup_vs_baseline: sum(&|p| best(p).speedup_vs_baseline) / n,
        avg_ipj_vs_baseline: sum(&|p| best(p).ipj_vs_baseline) / n,
        peak_speedup_vs_baseline: max(&|p| best(p).speedup_vs_baseline),
        peak_ipj_vs_original: max(&|p| best(p).ipj_vs_original),
        points: points.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig7::sweep;
    use crate::Scale;

    #[test]
    fn headline_shape() {
        let points = sweep(Scale::Quick).expect("sweep");
        let h = compute(&points);
        assert_eq!(h.points, points.len());
        // Shapes from the abstract: tens-to-hundreds x vs original,
        // a couple of x vs baseline.
        assert!(
            h.avg_speedup_vs_original > 10.0,
            "avg vs original {:.1}",
            h.avg_speedup_vs_original
        );
        assert!(
            (1.2..=4.0).contains(&h.avg_speedup_vs_baseline),
            "avg vs baseline {:.2}",
            h.avg_speedup_vs_baseline
        );
        assert!(
            h.avg_ipj_vs_baseline > 1.0,
            "avg IPJ vs baseline {:.2}",
            h.avg_ipj_vs_baseline
        );
        assert!(h.peak_speedup_vs_baseline <= 4.5);
    }
}
