//! Per-kernel utilisation report: IPC, functional-unit occupancy and
//! memory pressure of every evaluated benchmark under the paper's DCD+PM
//! baseline.
//!
//! This is the table the always-on metrics plane summarises one run at a
//! time (`scratch-tool run --metrics`); here the same aggregates are
//! collected for the whole Fig. 6/7 benchmark set so utilisation can be
//! compared across kernels — the application-awareness argument of the
//! paper in instrument form: kernels that never touch a unit (occupancy
//! 0%) are exactly the trimming opportunities of §3.
//!
//! The occupancy denominator counts every instance of a unit class
//! (`cycles × instances`), so a 4-iVALU configuration at 25% has the same
//! busy-cycle volume as a 1-iVALU configuration at 100%.

use serde::{Deserialize, Serialize};

use scratch_isa::FuncUnit;
use scratch_kernels::BenchError;
use scratch_system::{CuStats, SystemConfig, SystemKind};

use crate::runner::{fig6_set, Scale};

/// Utilisation of one benchmark under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilRow {
    /// Benchmark name.
    pub name: String,
    /// CU cycles of the run.
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub instructions: u64,
    /// Instructions per cycle (wavefront granularity).
    pub ipc: f64,
    /// Memory operations (vector + scalar) per cycle.
    pub mem_ops_per_cycle: f64,
    /// Busy percentage per functional-unit class, in [`FuncUnit::ALL`]
    /// order, over all instances of the class.
    pub occupancy_percent: Vec<f64>,
}

impl UtilRow {
    /// Occupancy percentage of `unit` (0 when the class was never busy).
    #[must_use]
    pub fn occupancy(&self, unit: FuncUnit) -> f64 {
        let idx = FuncUnit::ALL
            .iter()
            .position(|&u| u == unit)
            .expect("FuncUnit::ALL is exhaustive");
        self.occupancy_percent.get(idx).copied().unwrap_or(0.0)
    }
}

/// Busy percentage of every unit class from merged statistics, given the
/// configuration that produced them (for the instance counts).
#[must_use]
pub fn occupancy_percent(stats: &CuStats, config: &SystemConfig) -> Vec<f64> {
    FuncUnit::ALL
        .iter()
        .map(|&u| {
            let per_cu = match u {
                FuncUnit::Simd => u64::from(config.cu.int_valus),
                FuncUnit::Simf => u64::from(config.cu.fp_valus),
                FuncUnit::Salu | FuncUnit::Lsu | FuncUnit::Branch => 1,
            };
            let denom = stats.cycles * per_cu * u64::from(config.cus);
            let busy = stats.fu_busy.get(&u).copied().unwrap_or(0);
            if denom == 0 {
                0.0
            } else {
                busy as f64 / denom as f64 * 100.0
            }
        })
        .collect()
}

/// Run every Fig. 6 benchmark under the DCD+PM baseline and report its
/// utilisation.
///
/// # Errors
///
/// Propagates kernel-construction and simulation failures.
pub fn utilization(scale: Scale) -> Result<Vec<UtilRow>, BenchError> {
    let benches = fig6_set(scale);
    let mut rows = Vec::with_capacity(benches.len());
    for bench in &benches {
        let config = SystemConfig::preset(SystemKind::DcdPm);
        let report = bench.run(config.clone())?;
        rows.push(UtilRow {
            name: bench.name(),
            cycles: report.stats.cycles,
            instructions: report.stats.instructions,
            ipc: report.stats.ipc(),
            mem_ops_per_cycle: report.stats.mem_ops_per_cycle(),
            occupancy_percent: occupancy_percent(&report.stats, &config),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_covers_the_fig6_set() {
        let rows = utilization(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 17);
        for row in &rows {
            assert!(row.cycles > 0, "{}", row.name);
            assert!(
                row.ipc > 0.0 && row.ipc <= 4.0,
                "{}: ipc {}",
                row.name,
                row.ipc
            );
            assert_eq!(row.occupancy_percent.len(), FuncUnit::ALL.len());
            for (&u, &p) in FuncUnit::ALL.iter().zip(&row.occupancy_percent) {
                assert!(
                    (0.0..=100.0).contains(&p),
                    "{}: {} occupancy {p}%",
                    row.name,
                    u.label()
                );
            }
            // Every kernel at least fetches and retires through the branch
            // unit (s_endpgm) and issues some work.
            assert!(row.instructions > 0, "{}", row.name);
        }
        // The integer Matrix Add never touches the FP pipeline — a
        // trimming opportunity the occupancy column makes visible.
        let int_add = rows
            .iter()
            .find(|r| r.name.contains("Matrix Add") && r.name.contains("INT32"))
            .expect("the fig6 set contains the INT32 Matrix Add");
        assert_eq!(int_add.occupancy(FuncUnit::Simf), 0.0);
        assert!(int_add.occupancy(FuncUnit::Simd) > 0.0);
    }
}
