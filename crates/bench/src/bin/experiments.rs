//! Regenerate the SCRATCH paper's tables and figures.
//!
//! ```text
//! experiments [fig4|fig6-baseline|fig6-trim|sec41|fig7a|fig7b|headline|util|profile|resilience|recovery|ablations|all]
//!             [--quick] [--jobs N] [--json <path>]
//! experiments trace [--quick] [--json <path>]
//! ```
//!
//! `--quick` runs CI-sized workloads; the default reproduces the paper's
//! sizes. `--jobs N` fans the §4.1.2 and Fig. 7 batch sweeps out over N
//! `scratch-engine` workers (default: one per core; the tables are
//! bit-identical for any N). `--json` additionally dumps every table as
//! JSON (used to regenerate `EXPERIMENTS.md`). `trace` (not part of
//! `all`) prints the stall-attribution profile of Matrix Add under each
//! system preset.

use std::fmt::Write as _;

use scratch_bench::{
    ablation, fig4, fig6, fig7, headline, profile, recovery, resilience, sec41, stalls, util, Scale,
};
use scratch_isa::Category;

const USAGE: &str = "\
usage: experiments [fig4|fig6-baseline|fig6-trim|sec41|fig7a|fig7b|headline|util|profile|resilience|recovery|trace|ablations|all]
                   [--quick] [--jobs N] [--json <path>]

  --quick        CI-sized workloads (default: the paper's sizes)
  --jobs N       run the sec41 and fig7 sweeps on N scratch-engine workers
                 (default: one per available core; 1 = serial; every table
                 is bit-identical regardless of N)
  --json <path>  additionally dump every table as JSON";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_path = flag_value("--json");
    let jobs = match flag_value("--jobs").as_deref() {
        None => 0, // engine default: one worker per core
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects a worker count, got `{v}`\n{USAGE}");
            std::process::exit(2);
        }),
    };
    let flag_values = [json_path.clone(), flag_value("--jobs")];
    let what = args
        .iter()
        .find(|a| !a.starts_with("--") && !flag_values.contains(&Some((*a).clone())))
        .map_or("all", String::as_str);

    let mut json = serde_json::Map::new();

    let run = |name: &str| what == "all" || what == name;

    if run("fig4") {
        match fig4::characterize(scale) {
            Ok(rows) => {
                print_fig4(&rows);
                json.insert("fig4".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("fig4 failed: {e}"),
        }
    }
    if run("fig6-baseline") {
        let rows = fig6::baseline_systems();
        print_fig6_baseline(&rows);
        json.insert("fig6_baseline".into(), serde_json::to_value(&rows).unwrap());
    }
    if run("fig6-trim") {
        match fig6::trimming_rows(scale) {
            Ok(rows) => {
                print_fig6_trim(&rows);
                json.insert("fig6_trim".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("fig6-trim failed: {e}"),
        }
    }
    if run("sec41") {
        match sec41::speedups_with_jobs(scale, jobs) {
            Ok(rows) => {
                print_sec41(&rows);
                json.insert("sec41".into(), serde_json::to_value(&rows).unwrap());
                let agg = sec41::aggregates(&rows);
                json.insert(
                    "sec41_aggregates".into(),
                    serde_json::to_value(&agg).unwrap(),
                );
            }
            Err(e) => eprintln!("sec41 failed: {e}"),
        }
    }
    if run("fig7a") || run("fig7b") || run("headline") {
        match fig7::sweep_with_jobs(scale, jobs) {
            Ok(points) => {
                if run("fig7a") {
                    print_fig7(&points, true);
                }
                if run("fig7b") {
                    print_fig7(&points, false);
                }
                json.insert("fig7".into(), serde_json::to_value(&points).unwrap());
                if run("headline") {
                    let h = headline::compute(&points);
                    print_headline(&h);
                    json.insert("headline".into(), serde_json::to_value(&h).unwrap());
                }
            }
            Err(e) => eprintln!("fig7 failed: {e}"),
        }
    }

    if run("util") {
        match util::utilization(scale) {
            Ok(rows) => {
                print_util(&rows);
                json.insert("util".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("util failed: {e}"),
        }
    }

    if run("profile") {
        match profile::signatures(scale) {
            Ok(rows) => {
                print_profile(&rows);
                json.insert("profile".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("profile failed: {e}"),
        }
    }

    if run("resilience") {
        match resilience::campaign_table(scale, jobs) {
            Ok(rows) => {
                print_resilience(&rows);
                json.insert("resilience".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("resilience failed: {e}"),
        }
    }

    if run("recovery") {
        match recovery::recovery_latency(quick) {
            Ok(rows) => {
                print_recovery(&rows);
                json.insert("recovery".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("recovery failed: {e}"),
        }
    }

    // Opt-in study (not part of `all`): cycle attribution per preset.
    if what == "trace" {
        match stalls::stall_profiles(scale) {
            Ok(rows) => {
                print_stalls(&rows);
                json.insert("trace".into(), serde_json::to_value(&rows).unwrap());
            }
            Err(e) => eprintln!("trace failed: {e}"),
        }
    }

    if run("ablations") {
        match ablation_tables(scale) {
            Ok(value) => {
                json.insert("ablations".into(), value);
            }
            Err(e) => eprintln!("ablations failed: {e}"),
        }
    }

    if let Some(path) = json_path {
        let value = serde_json::Value::Object(json);
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
        println!("\nJSON written to {path}");
    }
}

fn ablation_tables(scale: Scale) -> Result<serde_json::Value, scratch_kernels::BenchError> {
    let mut map = serde_json::Map::new();

    let occ = ablation::wavefront_occupancy(scale)?;
    hr("Ablation — wavefront occupancy (latency hiding)");
    println!("{:>12} {:>12} {:>10}", "wavefronts", "cycles", "speedup");
    for p in &occ {
        println!(
            "{:>12} {:>12} {:>10.2}",
            p.max_wavefronts, p.cycles, p.speedup_vs_one
        );
    }
    map.insert("occupancy".into(), serde_json::to_value(&occ).unwrap());

    let valus = ablation::valu_scaling(scale)?;
    hr("Ablation — integer VALU scaling (multi-thread curve)");
    println!("{:>8} {:>12} {:>10}", "VALUs", "cycles", "speedup");
    for p in &valus {
        println!("{:>8} {:>12} {:>10.2}", p.valus, p.cycles, p.speedup_vs_one);
    }
    map.insert("valu_scaling".into(), serde_json::to_value(&valus).unwrap());

    let pf = ablation::prefetch_capacity(scale)?;
    hr("Ablation — prefetch-capacity cliff (2x2 max pooling)");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12}",
        "image", "input B", "hits", "misses", "PM speedup"
    );
    for p in &pf {
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>12.2}",
            p.image, p.input_bytes, p.hits, p.misses, p.pm_speedup
        );
    }
    map.insert("prefetch".into(), serde_json::to_value(&pf).unwrap());

    let bits = ablation::datapath_bits(scale)?;
    hr("Ablation — vector datapath bit-width (NiN)");
    println!(
        "{:>6} {:>12} {:>6} {:>10}",
        "bits", "CU FF", "CUs", "power W"
    );
    for p in &bits {
        println!(
            "{:>6} {:>12} {:>6} {:>10.2}",
            p.bits, p.cu_ff, p.cus, p.power_w
        );
    }
    map.insert("datapath_bits".into(), serde_json::to_value(&bits).unwrap());

    let pk = ablation::per_kernel_trimming(scale)?;
    hr("Ablation — per-kernel trimming + partial reconfiguration (§4.3)");
    println!(
        "{:30} {:>10} {:>14} {:>12} {:>12} {:>12} {:>14}",
        "application",
        "reconfigs",
        "reconfig (ms)",
        "union (mJ)",
        "per-k (mJ)",
        "winner",
        "breakeven(ms)"
    );
    for a in &pk {
        println!(
            "{:30} {:>10} {:>14.3} {:>12.3} {:>12.3} {:>12} {:>14.3}",
            a.name,
            a.reconfigurations,
            a.reconfig_seconds * 1e3,
            a.union_energy_j * 1e3,
            a.per_kernel_energy_j * 1e3,
            if a.per_kernel_wins() {
                "per-kernel"
            } else {
                "union"
            },
            a.breakeven_reconfig_s.unwrap_or(0.0) * 1e3,
        );
    }
    map.insert("per_kernel".into(), serde_json::to_value(&pk).unwrap());

    Ok(serde_json::Value::Object(map))
}

fn hr(title: &str) {
    println!("\n=== {title} ===");
}

fn print_recovery(rows: &[recovery::RecoveryRow]) {
    hr("Crash recovery — WAL scan latency and replay split");
    println!(
        "{:>9} {:>9} {:>10} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9}",
        "jobs", "frames", "log KiB", "replayed", "resumed", "deduped", "torn", "open ms", "MiB/s"
    );
    for r in rows {
        println!(
            "{:>9} {:>9} {:>10} {:>9} {:>9} {:>9} {:>6} {:>9.2} {:>9.1}",
            r.jobs,
            r.frames,
            r.log_bytes / 1024,
            r.replayed,
            r.resumed,
            r.deduped,
            r.torn_bytes,
            r.open_ms,
            r.mib_per_sec
        );
    }
}

fn print_resilience(rows: &[resilience::ResilienceRow]) {
    hr("Resilience — seeded fault campaigns per detection mode");
    println!(
        "{:6} {:6} {:>8} {:>7} {:>9} {:>10} {:>7} {:>9} {:>9}",
        "mode",
        "class",
        "injected",
        "masked",
        "detected",
        "recovered",
        "silent",
        "coverage",
        "overhead"
    );
    for row in rows {
        println!(
            "{:6} {:6} {:>8} {:>7} {:>9} {:>10} {:>7} {:>8.1}% {:>8.2}x",
            row.mode,
            row.class,
            row.stats.injected,
            row.stats.masked,
            row.stats.detected,
            row.stats.recovered,
            row.stats.silent,
            row.coverage_pct,
            row.overhead
        );
    }
}

fn print_stalls(rows: &[stalls::StallRow]) {
    use scratch_system::StallReason;
    hr("Cycle attribution — where wavefront-cycles go per system preset");
    let mut head = format!(
        "{:22} {:10} {:>9} {:>7}",
        "benchmark", "system", "cycles", "occ%"
    );
    for r in StallReason::ALL {
        write!(head, "{:>15}", r.label()).unwrap();
    }
    println!("{head}");
    for row in rows {
        let mut line = format!(
            "{:22} {:10} {:>9} {:>7.1}",
            row.name, row.system, row.cycles, row.issue_occupancy_percent
        );
        for r in StallReason::ALL {
            write!(line, "{:>15}", row.stall_cycles(r)).unwrap();
        }
        println!("{line}");
    }
}

fn print_util(rows: &[util::UtilRow]) {
    use scratch_isa::FuncUnit;
    hr("Per-kernel utilisation — DCD+PM baseline (metrics-plane aggregates)");
    let mut head = format!(
        "{:30} {:>10} {:>12} {:>7} {:>8}",
        "benchmark", "cycles", "instrs", "IPC", "mem/cyc"
    );
    for u in FuncUnit::ALL {
        write!(head, "{:>8}%", u.label()).unwrap();
    }
    println!("{head}");
    for row in rows {
        let mut line = format!(
            "{:30} {:>10} {:>12} {:>7.3} {:>8.4}",
            row.name, row.cycles, row.instructions, row.ipc, row.mem_ops_per_cycle
        );
        for p in &row.occupancy_percent {
            write!(line, "{p:>9.1}").unwrap();
        }
        println!("{line}");
    }
}

fn print_profile(rows: &[profile::SignatureRow]) {
    hr("Instruction signatures — per-PC retire profile and minimal covering trim preset");
    println!(
        "{:30} {:>12} {:>8} {:24} {:>22} {:>7} {:>9}  preset",
        "benchmark", "instrs", "opcodes", "units", "top class", "top %", "kept/all"
    );
    for r in rows {
        println!(
            "{:30} {:>12} {:>8} {:24} {:>22} {:>7.1} {:>5}/{:<3}  {}",
            r.name,
            r.instructions,
            r.distinct_opcodes,
            r.units,
            r.top_class,
            r.top_class_percent,
            r.kept_opcodes,
            r.total_opcodes,
            r.preset
        );
    }
}

fn print_fig4(rows: &[fig4::MixRow]) {
    hr("Fig. 4 — instruction mix per benchmark (% of executed instructions)");
    let mut head = format!("{:38}", "benchmark");
    for c in Category::ALL {
        write!(head, "{:>9}", c.label()).unwrap();
    }
    println!("{head}{:>8}", "FP%");
    for r in rows {
        let mut line = format!("{:38}", r.name);
        for p in &r.percent {
            write!(line, "{p:>9.1}").unwrap();
        }
        println!("{line}{:>8.1}", r.fp_percent);
    }
}

fn print_fig6_baseline(rows: &[fig6::BaselineRow]) {
    hr("Fig. 6 (left) — base-system resource utilisation and power");
    println!(
        "{:10} {:>10} {:>10} {:>7} {:>7} {:>9} {:>9}",
        "system", "FF", "LUT", "DSP48", "BRAM", "static W", "dynamic W"
    );
    for r in rows {
        println!(
            "{:10} {:>10} {:>10} {:>7} {:>7} {:>9.2} {:>9.2}",
            r.label,
            r.resources.ff,
            r.resources.lut,
            r.resources.dsp,
            r.resources.bram,
            r.static_w,
            r.dynamic_w
        );
    }
}

fn print_fig6_trim(rows: &[fig6::TrimRow]) {
    hr("Fig. 6 (right) — per-benchmark trimming and parallelism");
    println!(
        "{:30} {:>24} {:>26} {:>13} {:>9} {:>9} {:>8}",
        "benchmark",
        "usage% SALU/iV/fpV/LSU",
        "savings% FF/LUT/DSP/BRAM",
        "power W s+d",
        "MC plan",
        "MT plan",
        "totW MC"
    );
    for r in rows {
        println!(
            "{:30} {:>5.0} {:>5.0} {:>5.0} {:>5.0}  {:>6.0} {:>6.0} {:>6.0} {:>5.0} {:>6.2}+{:<5.2} {:>3}c/{}i/{}f {:>3}c/{}i/{}f {:>8.2}",
            r.name,
            r.usage[0],
            r.usage[1],
            r.usage[2],
            r.usage[3],
            r.savings[0],
            r.savings[1],
            r.savings[2],
            r.savings[3],
            r.power_w.0,
            r.power_w.1,
            r.multicore.cus,
            r.multicore.int_valus,
            r.multicore.fp_valus,
            r.multithread.cus,
            r.multithread.int_valus,
            r.multithread.fp_valus,
            r.multicore_power_w,
        );
    }
    let avg = fig6::average_savings(rows);
    println!(
        "{:30} {:>24} {:>6.0} {:>6.0} {:>6.0} {:>5.0}",
        "AVERAGE", "", avg[0], avg[1], avg[2], avg[3]
    );
}

fn print_sec41(rows: &[sec41::SpeedupRow]) {
    hr("§4.1.2 — speedup and energy-efficiency of DCD / DCD+PM / trimming");
    println!(
        "{:30} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "DCD x", "DCD+PM x", "DCD IPJ", "PM IPJ", "trim IPJ"
    );
    for r in rows {
        println!(
            "{:30} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.3}",
            r.name, r.dcd_speedup, r.pm_speedup, r.dcd_ipj_gain, r.pm_ipj_gain, r.trim_ipj_gain
        );
    }
    let agg = sec41::aggregates(rows);
    println!(
        "min DCD {:.2}x | min PM {:.2}x | max PM {:.2}x | avg DCD IPJ {:.2}x | avg PM IPJ {:.2}x | trim IPJ {:.2}-{:.2}x",
        agg.min_dcd_speedup,
        agg.min_pm_speedup,
        agg.max_pm_speedup,
        agg.avg_dcd_ipj,
        agg.avg_pm_ipj,
        agg.trim_ipj_range.0,
        agg.trim_ipj_range.1
    );
}

fn print_fig7(points: &[fig7::Fig7Point], multicore: bool) {
    hr(if multicore {
        "Fig. 7A — multi-core parallelism (several CUs, 1 VALU each)"
    } else {
        "Fig. 7B — multi-thread parallelism (1 CU, multiple VALUs)"
    });
    println!(
        "{:22} {:20} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "family", "param", "plan", "x vs orig", "x vs base", "IPJ orig", "IPJ base"
    );
    for p in points {
        let (plan, g) = if multicore {
            (p.multicore_plan, p.multicore)
        } else {
            (p.multithread_plan, p.multithread)
        };
        println!(
            "{:22} {:20} {:>4}c/{}i/{}f {:>10.1} {:>10.2} {:>10.1} {:>10.2}",
            p.family,
            p.param,
            plan.cus,
            plan.int_valus,
            plan.fp_valus,
            g.speedup_vs_original,
            g.speedup_vs_baseline,
            g.ipj_vs_original,
            g.ipj_vs_baseline
        );
    }
}

fn print_headline(h: &headline::Headline) {
    hr("Headline aggregates (abstract)");
    println!(
        "avg speedup vs original MIAOW : {:>8.1}x   (paper: 140x)",
        h.avg_speedup_vs_original
    );
    println!(
        "avg IPJ gain vs original      : {:>8.1}x   (paper: 115x)",
        h.avg_ipj_vs_original
    );
    println!(
        "avg speedup vs baseline       : {:>8.2}x   (paper: 2.4x)",
        h.avg_speedup_vs_baseline
    );
    println!(
        "avg IPJ gain vs baseline      : {:>8.2}x   (paper: 2.1x)",
        h.avg_ipj_vs_baseline
    );
    println!(
        "peak speedup vs baseline      : {:>8.2}x   (paper: 3.0-3.5x)",
        h.peak_speedup_vs_baseline
    );
    println!(
        "peak IPJ gain vs original     : {:>8.1}x   (paper: up to 252x)",
        h.peak_ipj_vs_original
    );
    println!("aggregated over {} sweep points", h.points);
}
