//! §4.1.2 — throughput and energy-efficiency gains of the architectural
//! improvements (DCD, DCD+PM) and of trimming alone.

use serde::{Deserialize, Serialize};

use scratch_fpga::ParallelPlan;
use scratch_kernels::{BenchError, Benchmark};
use scratch_system::SystemKind;

use crate::runner::{engine_map, fig6_set, full_plan, run_summary, trim_of, Scale};

/// One benchmark's configuration comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: String,
    /// DCD speedup over the original system.
    pub dcd_speedup: f64,
    /// DCD+PM (baseline) speedup over the original system.
    pub pm_speedup: f64,
    /// DCD energy-efficiency (IPJ) gain over the original.
    pub dcd_ipj_gain: f64,
    /// DCD+PM energy-efficiency gain over the original.
    pub pm_ipj_gain: f64,
    /// Energy-efficiency gain of trimming alone (same cycles, lower power)
    /// over the untrimmed DCD+PM baseline.
    pub trim_ipj_gain: f64,
    /// Whether the application uses floating point (trim gains are smaller
    /// for FP kernels, §4.1.2).
    pub fp: bool,
}

/// Measure one benchmark's row: four configured runs plus the trim study.
fn speedup_row(bench: Box<dyn Benchmark>) -> Result<SpeedupRow, BenchError> {
    let orig = run_summary(bench.as_ref(), SystemKind::Original, full_plan(), None)?;
    let dcd = run_summary(bench.as_ref(), SystemKind::Dcd, full_plan(), None)?;
    let pm = run_summary(bench.as_ref(), SystemKind::DcdPm, full_plan(), None)?;

    let trim = trim_of(bench.as_ref())?;
    let trimmed = run_summary(
        bench.as_ref(),
        SystemKind::DcdPm,
        ParallelPlan::baseline(trim.uses_fp),
        Some(&trim),
    )?;

    Ok(SpeedupRow {
        name: bench.name(),
        dcd_speedup: dcd.speedup_vs(&orig),
        pm_speedup: pm.speedup_vs(&orig),
        dcd_ipj_gain: dcd.ipj_gain_vs(&orig),
        pm_ipj_gain: pm.ipj_gain_vs(&orig),
        trim_ipj_gain: trimmed.ipj_gain_vs(&pm),
        fp: bench.uses_fp(),
    })
}

/// Run the configuration study serially across the benchmark suite.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn speedups(scale: Scale) -> Result<Vec<SpeedupRow>, BenchError> {
    speedups_with_jobs(scale, 1)
}

/// Run the configuration study with `jobs` engine workers, one benchmark
/// per job (`0` = one per core). Rows come back in Fig. 6 column order
/// and are bit-identical for any job count.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn speedups_with_jobs(scale: Scale, jobs: usize) -> Result<Vec<SpeedupRow>, BenchError> {
    engine_map(
        jobs,
        fig6_set(scale)
            .into_iter()
            .map(|b| (format!("sec41 {}", b.name()), b)),
        speedup_row,
    )
}

/// Aggregates quoted in §4.1.2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec41Aggregates {
    /// Minimum DCD speedup (paper: 1.17×, integer 2D conv).
    pub min_dcd_speedup: f64,
    /// Minimum DCD+PM speedup (paper: 4.27×).
    pub min_pm_speedup: f64,
    /// Maximum DCD+PM speedup (paper: 95.79×).
    pub max_pm_speedup: f64,
    /// Average DCD energy-efficiency gain (paper: 1.17×).
    pub avg_dcd_ipj: f64,
    /// Average DCD+PM energy-efficiency gain (paper: 55.87×).
    pub avg_pm_ipj: f64,
    /// Trim-only IPJ gain range (paper: 1.02–1.23×).
    pub trim_ipj_range: (f64, f64),
}

/// Compute the §4.1.2 aggregates from the per-benchmark rows.
#[must_use]
pub fn aggregates(rows: &[SpeedupRow]) -> Sec41Aggregates {
    let min = |f: fn(&SpeedupRow) -> f64| rows.iter().map(f).fold(f64::INFINITY, f64::min);
    let max = |f: fn(&SpeedupRow) -> f64| rows.iter().map(f).fold(0.0, f64::max);
    let avg =
        |f: fn(&SpeedupRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    Sec41Aggregates {
        min_dcd_speedup: min(|r| r.dcd_speedup),
        min_pm_speedup: min(|r| r.pm_speedup),
        max_pm_speedup: max(|r| r.pm_speedup),
        avg_dcd_ipj: avg(|r| r.dcd_ipj_gain),
        avg_pm_ipj: avg(|r| r.pm_ipj_gain),
        trim_ipj_range: (min(|r| r.trim_ipj_gain), max(|r| r.trim_ipj_gain)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shapes_match_paper() {
        let rows = speedups(Scale::Quick).expect("sec41");
        let agg = aggregates(&rows);

        // Every benchmark gains from each improvement.
        for r in &rows {
            assert!(r.dcd_speedup > 1.0, "{}: DCD {:.2}", r.name, r.dcd_speedup);
            assert!(
                r.pm_speedup > r.dcd_speedup,
                "{}: PM {:.2} vs DCD {:.2}",
                r.name,
                r.pm_speedup,
                r.dcd_speedup
            );
            assert!(
                r.trim_ipj_gain > 1.0,
                "{}: trim {:.3}",
                r.name,
                r.trim_ipj_gain
            );
        }

        // Paper bands (shape, not absolutes): min DCD ≈ 1.17x, min PM ≈
        // 4.27x, max PM within tens of x, trim gains ≈ 1.02–1.25x.
        assert!(
            (1.02..=1.6).contains(&agg.min_dcd_speedup),
            "min DCD {:.2}",
            agg.min_dcd_speedup
        );
        assert!(
            agg.min_pm_speedup > 2.5,
            "min PM speedup {:.2}",
            agg.min_pm_speedup
        );
        assert!(
            agg.max_pm_speedup > 20.0,
            "max PM speedup {:.2}",
            agg.max_pm_speedup
        );
        assert!(
            agg.trim_ipj_range.1 < 1.6,
            "trim gains stay modest ({:.2})",
            agg.trim_ipj_range.1
        );

        // Integer kernels gain more from trimming than FP ones on average
        // (the SIMF survives in FP kernels).
        let avg_of = |fp: bool| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.fp == fp)
                .map(|r| r.trim_ipj_gain)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            avg_of(false) > avg_of(true),
            "int trim gain {:.3} vs fp {:.3}",
            avg_of(false),
            avg_of(true)
        );
    }
}
