//! Fig. 6 — resource utilisation and power of the three base systems
//! (left panel) and, per benchmark: instruction usage, trimming savings,
//! trimmed-system power and the freed-area parallelism plans.

use serde::{Deserialize, Serialize};

use scratch_core::Scratch;
use scratch_fpga::{allocate_multicore_bits, Device, ParallelPlan, Resources};
use scratch_isa::FuncUnit;
use scratch_kernels::BenchError;
use scratch_system::SystemKind;

use crate::runner::{fig6_set, full_plan, trim_of, Scale};

/// One row of the left panel: a base-system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Configuration label.
    pub label: String,
    /// Occupied resources.
    pub resources: Resources,
    /// Utilisation % of the XC7VX690T, `[ff, lut, dsp, bram]`.
    pub utilization: [f64; 4],
    /// Static power (W).
    pub static_w: f64,
    /// Dynamic power (W).
    pub dynamic_w: f64,
}

/// The left panel of Fig. 6.
#[must_use]
pub fn baseline_systems() -> Vec<BaselineRow> {
    let scratch = Scratch::new();
    [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm]
        .into_iter()
        .map(|kind| {
            let synth = scratch.synthesize(kind, None, full_plan());
            BaselineRow {
                label: kind.label().to_string(),
                resources: synth.resources,
                utilization: synth.utilization_percent,
                static_w: synth.power.static_w,
                dynamic_w: synth.power.dynamic_w(),
            }
        })
        .collect()
}

/// One benchmark column of the right panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrimRow {
    /// Benchmark name.
    pub name: String,
    /// Instruction usage % per unit `[SALU, iVALU, fpVALU, LSU]`.
    pub usage: [f64; 4],
    /// CU resource savings % over the baseline CU, `[ff, lut, dsp, bram]`.
    pub savings: [f64; 4],
    /// Trimmed single-CU system power: (static, dynamic) in watts.
    pub power_w: (f64, f64),
    /// Multi-core plan from the freed area (Fig. 6 bottom).
    pub multicore: ParallelPlan,
    /// Multi-thread plan from the freed area.
    pub multithread: ParallelPlan,
    /// Total power of the multi-core configuration (W).
    pub multicore_power_w: f64,
    /// Retained instructions.
    pub kept: usize,
}

/// The right panel of Fig. 6 across the 17 applications.
///
/// # Errors
///
/// Propagates kernel-construction failures.
pub fn trimming_rows(scale: Scale) -> Result<Vec<TrimRow>, BenchError> {
    let scratch = Scratch::new();
    let mut rows = Vec::new();
    for bench in fig6_set(scale) {
        let trim = trim_of(bench.as_ref())?;
        let base_plan = ParallelPlan::baseline(trim.uses_fp);
        let synth = scratch.synthesize(SystemKind::DcdPm, Some(&trim), base_plan);

        // The INT8 NIN shortens the vector datapath, fitting a 4th CU.
        let is_int8 = bench.name().contains("INT8");
        let multicore = if is_int8 {
            allocate_multicore_bits(&Device::XC7VX690T, &trim.kept_opcodes(), 4, 8)
        } else {
            scratch.plan_multicore(&trim, 3)
        };
        let multithread = scratch.plan_multithread(&trim, 4);
        let mc_synth = scratch.synthesize(SystemKind::DcdPm, Some(&trim), multicore);

        rows.push(TrimRow {
            name: bench.name(),
            usage: [
                trim.usage_percent[&FuncUnit::Salu],
                trim.usage_percent[&FuncUnit::Simd],
                trim.usage_percent[&FuncUnit::Simf],
                trim.usage_percent[&FuncUnit::Lsu],
            ],
            savings: trim.cu_savings_percent(1, u8::from(trim.uses_fp)),
            power_w: (synth.power.static_w, synth.power.dynamic_w()),
            multicore,
            multithread,
            multicore_power_w: mc_synth.power.total_w(),
            kept: trim.kept_count(),
        });
    }
    Ok(rows)
}

/// The paper's headline savings averages (41 % FF / 36 % LUT across the
/// benchmarks).
#[must_use]
pub fn average_savings(rows: &[TrimRow]) -> [f64; 4] {
    let n = rows.len().max(1) as f64;
    let mut avg = [0.0; 4];
    for row in rows {
        for (a, s) in avg.iter_mut().zip(row.savings) {
            *a += s / n;
        }
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rows_match_paper_shape() {
        let rows = baseline_systems();
        assert_eq!(rows.len(), 3);
        // DCD adds nearly nothing; PM adds the BRAMs.
        assert_eq!(rows[2].resources.bram, 1_151);
        assert_eq!(rows[0].resources.bram, 223);
        assert!(rows[2].dynamic_w > rows[0].dynamic_w);
        for r in &rows {
            for u in r.utilization {
                assert!(u < 100.0);
            }
        }
    }

    #[test]
    fn trimming_rows_have_paper_shape() {
        let rows = trimming_rows(Scale::Quick).expect("fig6 rows");
        assert_eq!(rows.len(), 17);

        let avg = average_savings(&rows);
        // Paper: average 41% FF and 36% LUT savings.
        assert!(
            (25.0..=60.0).contains(&avg[0]),
            "avg FF savings {:.0}% out of band",
            avg[0]
        );
        assert!(
            (25.0..=55.0).contains(&avg[1]),
            "avg LUT savings {:.0}% out of band",
            avg[1]
        );

        // Transpose and the poolings save the most FF; FP conv the least.
        let ff = |name: &str| {
            rows.iter()
                .find(|r| r.name.contains(name))
                .unwrap_or_else(|| panic!("{name} missing"))
                .savings[0]
        };
        assert!(
            ff("Transpose") > 55.0,
            "transpose FF {:.0}%",
            ff("Transpose")
        );
        assert!(ff("Max Pooling") > 55.0);
        // FP benchmarks keep their SIMF sub-units, so they save less than
        // the integer ones on average, and the minimum savings belongs to
        // an FP application (the paper's minimum is the SP-FP 2D conv).
        let avg_of = |fp: bool| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| (r.usage[2] > 0.0) == fp)
                .map(|r| r.savings[0])
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            avg_of(false) > avg_of(true) + 10.0,
            "INT avg FF savings {:.0}% vs FP {:.0}%",
            avg_of(false),
            avg_of(true)
        );
        let min_row = rows
            .iter()
            .min_by(|a, b| a.savings[0].total_cmp(&b.savings[0]))
            .unwrap();
        assert!(
            min_row.usage[2] > 0.0,
            "minimum savings should be an FP benchmark, got {}",
            min_row.name
        );

        // Parallelism plans: integers reach 3 CUs / 4 VALUs, FP 2 CUs /
        // 1+3 VALUs, INT8 NIN 4 CUs.
        for row in &rows {
            if row.name.contains("INT8") {
                assert_eq!(row.multicore.cus, 4, "{}", row.name);
            } else if row.name.contains("INT32") {
                assert_eq!(row.multicore.cus, 3, "{}", row.name);
                assert_eq!(row.multithread.int_valus, 4, "{}", row.name);
            } else {
                assert_eq!(row.multicore.cus, 2, "{}", row.name);
                assert_eq!(row.multithread.fp_valus, 3, "{}", row.name);
            }
            assert!(row.multicore_power_w > row.power_w.0 + row.power_w.1);
            assert!(row.multicore_power_w < 6.5);
        }
    }
}
