//! Per-application instruction signatures: what each evaluated benchmark
//! *actually executes*, measured by the cycle tier's per-PC retire
//! profiler, and the minimal trim preset covering it.
//!
//! Where [`util`](crate::util) asks how busy each functional unit was,
//! this table asks which opcodes ran at all — the signature is the
//! observed-traffic key the trimming tool needs: a kernel whose signature
//! never touches a unit can run on a soft-GPGPU with that unit removed,
//! and two kernels with the same signature can share one trimmed bitstream
//! (the trim-cache argument of the online-reconfiguration roadmap item).

use serde::{Deserialize, Serialize};

use scratch_fastpath::translate;
use scratch_isa::Opcode;
use scratch_kernels::BenchError;
use scratch_profile::InstrSignature;
use scratch_system::{SystemConfig, SystemKind};

use crate::runner::{fig6_set, Scale};

/// One benchmark's measured instruction signature, condensed to a row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureRow {
    /// Benchmark name.
    pub name: String,
    /// Dynamic instructions the profiler attributed (all kernels).
    pub instructions: u64,
    /// Distinct opcodes that retired at least once.
    pub distinct_opcodes: u64,
    /// Functional-unit classes the signature touches, `+`-joined.
    pub units: String,
    /// Dominant opcode class (`unit/category/type`) and its share.
    pub top_class: String,
    /// Share of `instructions` in the dominant class, percent.
    pub top_class_percent: f64,
    /// Minimal covering trim preset (`full` when every unit is used).
    pub preset: String,
    /// Opcodes the minimal preset keeps.
    pub kept_opcodes: u64,
    /// Total opcodes in the ISA model.
    pub total_opcodes: u64,
}

/// Profile every Fig. 6 benchmark under the DCD+PM baseline and condense
/// each aggregated [`InstrSignature`] to a table row.
///
/// # Errors
///
/// Kernel construction, simulation, or block-translation failures.
pub fn signatures(scale: Scale) -> Result<Vec<SignatureRow>, BenchError> {
    let benches = fig6_set(scale);
    let mut rows = Vec::with_capacity(benches.len());
    for bench in &benches {
        let config = SystemConfig::preset(SystemKind::DcdPm).with_profile(true);
        let report = bench.run(config.clone())?;
        let kernels = bench.kernels().map_err(BenchError::Asm)?;
        let mut sig = InstrSignature::default();
        for (idx, kernel) in kernels.iter().enumerate() {
            let prog = translate(kernel, &config.cu).map_err(|e| {
                BenchError::Engine(format!("{}: block translation: {e}", bench.name()))
            })?;
            let counts = report.pc_profiles.get(idx).map_or(&[][..], Vec::as_slice);
            sig.merge(&InstrSignature::from_pc_counts(
                kernel.name(),
                &prog.block_profiles(),
                counts,
            ));
        }
        let (preset, trim) = sig.minimal_preset();
        let instructions = sig.instructions();
        let (top_class, top_count) = sig
            .classes()
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .unwrap_or_default();
        let units: Vec<&str> = sig.units_used().iter().map(|u| u.label()).collect();
        rows.push(SignatureRow {
            name: bench.name(),
            instructions,
            distinct_opcodes: sig.opcodes.len() as u64,
            units: units.join("+"),
            top_class,
            top_class_percent: if instructions == 0 {
                0.0
            } else {
                top_count as f64 / instructions as f64 * 100.0
            },
            preset,
            kept_opcodes: trim.len() as u64,
            total_opcodes: Opcode::ALL.len() as u64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_cover_the_fig6_set() {
        let rows = signatures(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 17);
        for row in &rows {
            assert!(row.instructions > 0, "{}", row.name);
            assert!(row.distinct_opcodes > 0, "{}", row.name);
            assert!(!row.units.is_empty(), "{}", row.name);
            assert!(!row.preset.is_empty(), "{}", row.name);
            assert!(
                row.kept_opcodes <= row.total_opcodes,
                "{}: kept {} of {}",
                row.name,
                row.kept_opcodes,
                row.total_opcodes
            );
            // A covering preset keeps at least the distinct opcodes seen.
            assert!(
                row.kept_opcodes >= row.distinct_opcodes,
                "{}: preset keeps {} < {} observed",
                row.name,
                row.kept_opcodes,
                row.distinct_opcodes
            );
        }
        // Integer-only benchmarks never need the FP VALU, so at least one
        // row must trim below `full` — the application-awareness argument.
        assert!(
            rows.iter().any(|r| r.preset != "full"),
            "no benchmark produced a sub-full covering preset"
        );
    }
}
