//! Fig. 4 — characterisation of the executed instructions per benchmark:
//! percentage per computational category, split into scalar/vector usage
//! and integer vs single-precision floating point.
//!
//! The paper runs 25 AMD APP SDK benchmarks through Multi2Sim; we
//! characterise our implemented suite (the 17 evaluated applications plus
//! the extra characterisation kernels) through the simulator's dynamic
//! histograms — the substitution recorded in DESIGN.md.

use serde::{Deserialize, Serialize};

use scratch_core::DynamicMix;
use scratch_isa::{Category, DataType};
use scratch_kernels::{characterization_benchmarks, BenchError};
use scratch_system::{SystemConfig, SystemKind};

use crate::runner::{fig6_set, Scale};

/// One row (benchmark) of the Fig. 4 characterisation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixRow {
    /// Benchmark name.
    pub name: String,
    /// `%` of executed instructions per category, in [`Category::ALL`]
    /// order.
    pub percent: Vec<f64>,
    /// `(uses_scalar, uses_vector)` per category.
    pub usage: Vec<(bool, bool)>,
    /// `%` of executed instructions that are SP-FP arithmetic.
    pub fp_percent: f64,
    /// Total dynamic instructions.
    pub instructions: u64,
}

/// Run the characterisation study.
///
/// # Errors
///
/// Propagates benchmark failures.
pub fn characterize(scale: Scale) -> Result<Vec<MixRow>, BenchError> {
    let mut benches = fig6_set(scale);
    benches.extend(characterization_benchmarks());
    let mut rows = Vec::with_capacity(benches.len());
    for bench in &benches {
        let report = bench.run(SystemConfig::preset(SystemKind::DcdPm))?;
        let mix = DynamicMix::of(&report.stats);
        let percent: Vec<f64> = Category::ALL.iter().map(|&c| mix.percent(c)).collect();
        let usage: Vec<(bool, bool)> = Category::ALL
            .iter()
            .map(|&c| mix.scalar_vector_use(c))
            .collect();
        let fp_percent: f64 = Category::ALL
            .iter()
            .map(|&c| mix.percent_typed(c, DataType::Fp32))
            .sum();
        rows.push(MixRow {
            name: bench.name(),
            percent,
            usage,
            fp_percent,
            instructions: report.instructions(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_rows_are_consistent() {
        let rows = characterize(Scale::Quick).expect("fig4");
        assert!(rows.len() >= 17);
        for row in &rows {
            let total: f64 = row.percent.iter().sum();
            assert!(
                (total - 100.0).abs() < 1e-6,
                "{}: categories sum to {total}",
                row.name
            );
            assert!(row.instructions > 0);
            // FP arithmetic appears exactly in the FP benchmarks.
            let is_fp_bench = row.name.contains("SP FP")
                || row.name.contains("K-Means")
                || row.name.contains("Black-Scholes");
            assert_eq!(
                row.fp_percent > 0.0,
                is_fp_bench,
                "{}: fp {}%",
                row.name,
                row.fp_percent
            );
        }
    }
}
