//! Resilience experiment: seeded fault-injection campaigns under each
//! detection mode, aggregated per fault class.
//!
//! This is the deployment-facing counterpart of the paper's trimming
//! argument: a trimmed soft-GPGPU on real FPGA fabric faces upsets, so
//! the table reports — for the same seeded fault population — how much
//! corruption each detection mode catches and what the recovery overhead
//! costs. `Plain` rows measure the silent-corruption rate the detectors
//! eliminate; in `Crc` and `Dmr` rows the silent column is asserted zero
//! by the campaign driver.

use serde::{Deserialize, Serialize};

use scratch_fault::{run_campaign, CampaignConfig, CellStats, FaultClass, FaultError, Mode};

use crate::Scale;

/// Campaign seed shared by every mode, so all three tables inject the
/// identical fault population.
const SEED: u64 = 2017;

/// One row of the resilience table: a fault class under a detection
/// mode, aggregated across all campaign kernels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Detection mode the campaign ran under.
    pub mode: String,
    /// Fault class.
    pub class: String,
    /// Outcome counts summed over kernels.
    pub stats: CellStats,
    /// Detection coverage of non-masked faults, percent.
    pub coverage_pct: f64,
    /// Mean extra simulator runs per injected fault.
    pub overhead: f64,
}

/// Run the three campaigns (CRC, DMR, plain) over the same seeded fault
/// population and aggregate per (mode, class).
///
/// # Errors
///
/// Propagates campaign failures (golden-output construction, worker
/// faults).
pub fn campaign_table(scale: Scale, jobs: usize) -> Result<Vec<ResilienceRow>, FaultError> {
    // Paper scale satisfies the subsystem's acceptance floor: ≥500 faults
    // across all 6 classes × 8 kernels.
    let (kernels, per_cell) = match scale {
        Scale::Quick => (3, 2),
        Scale::Paper => (8, 12),
    };
    let mut rows = Vec::new();
    for mode in [Mode::Crc, Mode::Dmr, Mode::Plain] {
        let report = run_campaign(&CampaignConfig {
            seed: SEED,
            kernels,
            classes: FaultClass::ALL.to_vec(),
            per_cell,
            mode,
            jobs: jobs.max(1),
        })?;
        for class in FaultClass::ALL {
            let mut stats = CellStats::default();
            for row in report.rows.iter().filter(|r| r.class == class) {
                stats.merge(&row.stats);
            }
            rows.push(ResilienceRow {
                mode: mode.name().to_owned(),
                class: class.name().to_owned(),
                stats,
                coverage_pct: stats.coverage() * 100.0,
                overhead: stats.overhead(),
            });
        }
    }
    Ok(rows)
}
