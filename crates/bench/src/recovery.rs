//! Crash-recovery latency: how long a restarted daemon spends scanning
//! its write-ahead log before it can serve again, and how the work splits
//! between *replayed* jobs (re-run from scratch), *resumed* jobs
//! (continued from a durable mid-kernel checkpoint) and *deduped* jobs
//! (completion already logged, nothing to do).
//!
//! The logs are synthetic but shaped like the serving layer's: JSON-sized
//! admission payloads, kilobyte-scale checkpoint snapshots, and a torn
//! final frame — the signature a `kill -9` mid-`write(2)` leaves behind.

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use scratch_wal::{FsyncPolicy, Record, Wal, WalConfig, WalError};

/// One log size's recovery measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// Jobs admitted into the log.
    pub jobs: u64,
    /// Valid frames the recovery scan accepted.
    pub frames: u64,
    /// Log size on disk, bytes.
    pub log_bytes: u64,
    /// Unfinished jobs recovery re-admits, total.
    pub replayed: u64,
    /// Of those, jobs that resume from a durable checkpoint.
    pub resumed: u64,
    /// Completed jobs recovery suppresses.
    pub deduped: u64,
    /// Torn bytes truncated from the damaged tail.
    pub torn_bytes: u64,
    /// Wall-clock milliseconds for the full recovery scan + repair
    /// (measured around [`Wal::open`]).
    pub open_ms: f64,
    /// Scan throughput, MiB of log per second.
    pub mib_per_sec: f64,
}

/// splitmix64.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn blob(rng: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| (mix(rng) & 0xff) as u8).collect()
}

/// Build a serving-shaped log of `jobs` admissions in `dir`: ~60%
/// completed, ~25% checkpointed-but-unfinished, the rest admitted only —
/// then tear the tail mid-frame, as a crash would.
fn build_log(dir: &PathBuf, jobs: u64, seed: u64) -> Result<(), WalError> {
    let _ = std::fs::remove_dir_all(dir);
    let (mut wal, _) = Wal::open(WalConfig {
        fsync: FsyncPolicy::Never,
        ..WalConfig::new(dir)
    })?;
    let mut rng = seed;
    for id in 0..jobs {
        // A small-kernel SubmitRequest serialized as JSON runs a few
        // hundred bytes.
        let payload_len = 200 + (mix(&mut rng) % 200) as usize;
        wal.append(&Record::Admitted {
            id,
            tenant: format!("t{}", id % 4),
            label: format!("job-{id}"),
            payload: blob(&mut rng, payload_len),
        })?;
        match mix(&mut rng) % 100 {
            0..=59 => {
                wal.append(&Record::Completed {
                    id,
                    ok: true,
                    digest: mix(&mut rng),
                    cycles: mix(&mut rng) % 100_000,
                    instructions: mix(&mut rng) % 10_000,
                    error: String::new(),
                })?;
            }
            60..=84 => {
                // Quantum-boundary checkpoints are kilobyte-scale.
                wal.append(&Record::Checkpoint {
                    id,
                    out_addr: 64,
                    snap: blob(&mut rng, 2048),
                })?;
            }
            _ => {}
        }
    }
    drop(wal);
    // Tear the newest segment mid-frame: drop the last 7 bytes.
    let mut segments: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    segments.sort();
    if let Some(last) = segments.last() {
        let bytes = std::fs::read(last)?;
        if bytes.len() > 7 {
            std::fs::write(last, &bytes[..bytes.len() - 7])?;
        }
    }
    Ok(())
}

fn dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Measure recovery at three log sizes (`quick`: 100 / 1 000 / 5 000
/// jobs; paper scale: 1 000 / 10 000 / 100 000).
///
/// # Errors
///
/// Log construction or recovery I/O failures.
pub fn recovery_latency(quick: bool) -> Result<Vec<RecoveryRow>, WalError> {
    let sizes: &[u64] = if quick {
        &[100, 1_000, 5_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let dir = std::env::temp_dir().join(format!("scratch-bench-recovery-{}", std::process::id()));
    let mut rows = Vec::with_capacity(sizes.len());
    for &jobs in sizes {
        build_log(&dir, jobs, 0xace0_f00d ^ jobs)?;
        let log_bytes = dir_bytes(&dir);
        let started = Instant::now();
        let (wal, recovery) = Wal::open(WalConfig::new(&dir))?;
        let open_ms = started.elapsed().as_secs_f64() * 1_000.0;
        drop(wal);
        let r = &recovery.report;
        rows.push(RecoveryRow {
            jobs,
            frames: r.frames,
            log_bytes,
            replayed: r.replayed,
            resumed: r.resumed,
            deduped: r.deduped,
            torn_bytes: r.torn_bytes,
            open_ms,
            mib_per_sec: if open_ms > 0.0 {
                (log_bytes as f64 / (1 << 20) as f64) / (open_ms / 1_000.0)
            } else {
                f64::INFINITY
            },
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_rows_split_replayed_resumed_deduped() {
        let rows = recovery_latency(true).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // Every surviving admission is either replayed or deduped;
            // the torn tail may have eaten the last job's only record.
            let classified = row.replayed + row.deduped;
            assert!(
                classified == row.jobs || classified == row.jobs - 1,
                "{} jobs but {} classified",
                row.jobs,
                classified
            );
            assert!(row.resumed > 0, "{} jobs: some resume", row.jobs);
            assert!(row.resumed <= row.replayed, "{} jobs", row.jobs);
            assert!(row.torn_bytes > 0, "{} jobs: the tail was torn", row.jobs);
            assert!(row.frames > 0 && row.log_bytes > 0);
        }
        // Recovery work grows with the log.
        assert!(rows[2].frames > rows[0].frames);
    }
}
