//! Shared experiment plumbing: benchmark sets, trimming, configured runs.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use scratch_core::{configure, trim_kernels, RunSummary, Scratch, TrimReport};
use scratch_engine::Engine;
use scratch_fpga::ParallelPlan;
use scratch_kernels::{
    bitonic::BitonicSort,
    cnn::Cnn,
    conv2d::Conv2d,
    gaussian::Gaussian,
    kmeans::KMeans,
    matmul::MatrixMul,
    nin::Nin,
    pooling::{Mode, Pooling},
    transpose::Transpose,
    vec_ops::MatrixAdd,
    BenchError, Benchmark,
};
use scratch_system::SystemKind;

/// Workload scale: `Quick` for CI-sized runs, `Paper` for the evaluation
/// sizes (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small inputs, seconds of wall time.
    Quick,
    /// Paper-sized inputs.
    Paper,
}

impl Scale {
    /// Pick `q` under Quick, `p` under Paper.
    #[must_use]
    pub fn pick(self, q: u32, p: u32) -> u32 {
        match self {
            Scale::Quick => q,
            Scale::Paper => p,
        }
    }
}

/// The Fig. 6 benchmark columns (17 applications) at the given scale.
#[must_use]
pub fn fig6_set(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    let s = scale;
    vec![
        Box::new(Conv2d::new(s.pick(32, 128), 5, false)) as Box<dyn Benchmark>,
        Box::new(BitonicSort::new(s.pick(256, 2048))),
        Box::new(Conv2d::new(s.pick(32, 128), 5, true)),
        Box::new(Transpose::new(s.pick(64, 256))),
        Box::new(MatrixMul::new(s.pick(64, 128), true)),
        Box::new(Gaussian::new(s.pick(16, 64))),
        Box::new(MatrixAdd::new(s.pick(32, 256), true)),
        Box::new(MatrixAdd::new(s.pick(32, 256), false)),
        Box::new(MatrixMul::new(s.pick(64, 128), false)),
        Box::new(Pooling::new(s.pick(64, 256), Mode::Average)),
        Box::new(Pooling::new(s.pick(64, 256), Mode::Max)),
        Box::new(Pooling::new(s.pick(64, 256), Mode::Median)),
        Box::new(KMeans::new(512, 5, 4)),
        Box::new(Cnn::new(s.pick(16, 32), false)),
        Box::new(Cnn::new(s.pick(16, 32), true)),
        Box::new(Nin::new(s.pick(16, 32), 32)),
        Box::new(Nin::new(s.pick(16, 32), 8)),
    ]
}

/// Application-level trim report (union over the benchmark's kernels).
///
/// # Errors
///
/// Propagates kernel-construction failures.
pub fn trim_of(bench: &dyn Benchmark) -> Result<TrimReport, BenchError> {
    let kernels = bench.kernels()?;
    Ok(trim_kernels(&kernels)?)
}

/// Run `bench` under a full configuration and summarise time/power/energy.
///
/// # Errors
///
/// Propagates simulation and validation failures.
pub fn run_summary(
    bench: &dyn Benchmark,
    kind: SystemKind,
    plan: ParallelPlan,
    trim: Option<&TrimReport>,
) -> Result<RunSummary, BenchError> {
    let config = configure(kind, plan, trim);
    let report = bench.run(config)?;
    Ok(Scratch::new().summarize(kind, trim, plan, &report))
}

/// Fan a batch of independent experiment legs out over a `scratch-engine`
/// pool and collect their results in submission order — the output is
/// identical for any job count. `jobs == 1` runs the legs serially on one
/// pool worker; `jobs == 0` means one worker per available core.
///
/// # Errors
///
/// The first failing leg's error (in submission order). A leg lost to a
/// worker panic surfaces as [`BenchError::Engine`].
pub fn engine_map<I, T, F>(
    jobs: usize,
    items: impl IntoIterator<Item = (String, I)>,
    work: F,
) -> Result<Vec<T>, BenchError>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(I) -> Result<T, BenchError> + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let outcomes = Engine::new(jobs).run_batch(items.into_iter().map(|(label, item)| {
        let work = Arc::clone(&work);
        // The job itself always "succeeds"; the leg's own `BenchError`
        // travels inside the payload so its structure survives the pool.
        (label, move || Ok(work(item)))
    }));
    outcomes
        .into_iter()
        .map(|o| match o.result {
            Ok(leg) => leg,
            Err(e) => Err(BenchError::Engine(format!("{}: {e}", o.label))),
        })
        .collect()
}

/// The untrimmed single-CU plan used as the paper's "Original"/"Baseline"
/// reference architecture (one SIMD + one SIMF).
#[must_use]
pub fn full_plan() -> ParallelPlan {
    ParallelPlan {
        cus: 1,
        int_valus: 1,
        fp_valus: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_set_has_17_columns() {
        assert_eq!(fig6_set(Scale::Quick).len(), 17);
    }

    #[test]
    fn trim_union_covers_multi_kernel_apps() {
        let cnn = Cnn::new(8, false);
        let t = trim_of(&cnn).unwrap();
        // Union must include both the conv kernel's and the pool kernel's
        // instructions.
        assert!(t.kept.contains(scratch_isa::Opcode::VMulLoI32));
        assert!(t.kept.contains(scratch_isa::Opcode::VMax3I32));
    }

    #[test]
    fn engine_map_returns_results_in_item_order() {
        let out = engine_map(
            4,
            (0..8u32).map(|i| (format!("item-{i}"), i)),
            |i| Ok(i * 3),
        )
        .expect("all legs succeed");
        assert_eq!(out, vec![0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    fn engine_map_surfaces_panics_as_engine_errors() {
        let err = engine_map(
            2,
            [("fine".to_string(), 1u32), ("doomed".to_string(), 2)],
            |i| {
                assert!(i != 2, "leg exploded");
                Ok(i)
            },
        )
        .expect_err("the panicking leg fails the batch");
        match err {
            BenchError::Engine(msg) => {
                assert!(msg.contains("doomed"), "{msg}");
                assert!(msg.contains("leg exploded"), "{msg}");
            }
            other => panic!("expected an engine error, got {other:?}"),
        }
    }

    #[test]
    fn engine_map_keeps_leg_error_structure() {
        let err = engine_map(2, [("bad".to_string(), ())], |()| {
            Err::<u32, _>(BenchError::Mismatch {
                bench: "probe".into(),
                index: 7,
                expected: 1,
                got: 2,
            })
        })
        .expect_err("the failing leg fails the batch");
        assert!(
            matches!(err, BenchError::Mismatch { index: 7, .. }),
            "leg errors must cross the pool intact, got {err:?}"
        );
    }

    #[test]
    fn run_summary_produces_energy() {
        let bench = MatrixAdd::new(16, false);
        let s = run_summary(&bench, SystemKind::DcdPm, full_plan(), None).unwrap();
        assert!(s.energy_j > 0.0);
        assert!(s.ipj > 0.0);
    }
}
