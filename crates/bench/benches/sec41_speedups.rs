//! Criterion wrapper for §4.1.2: the same workload on the Original, DCD
//! and DCD+PM systems (the measured quantity is simulated time; criterion
//! tracks harness wall time and the assertions keep the speedup shape).

use criterion::{criterion_group, criterion_main, Criterion};

use scratch_kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch_system::{SystemConfig, SystemKind};

fn configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec41_speedups");
    group.sample_size(10);
    let bench = MatrixAdd::new(32, false);
    let mut seconds = std::collections::HashMap::new();
    for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = bench.run(SystemConfig::preset(kind)).expect("run");
                seconds.insert(kind.label(), r.seconds);
                r.cu_cycles
            });
        });
    }
    group.finish();
    let orig = seconds["Original"];
    let dcd = seconds["DCD"];
    let pm = seconds["DCD+PM"];
    assert!(orig > dcd && dcd > pm, "paper ordering must hold");
    assert!(orig / pm > 4.0, "PM speedup {:.1}", orig / pm);
}

criterion_group!(benches, configurations);
criterion_main!(benches);
