//! Microbenchmarks of the substrates themselves: instruction
//! encode/decode, text assembly, and raw compute-unit issue throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_asm::{assemble, KernelBuilder};
use scratch_cu::{ComputeUnit, CuConfig, FixedLatencyMemory, NullTracer, WaveInit};
use scratch_isa::{Instruction, Opcode, Operand};

fn isa_codec(c: &mut Criterion) {
    // A representative word stream.
    let mut b = KernelBuilder::new("codec");
    for i in 0..32u8 {
        b.vop2(Opcode::VAddI32, i % 8, Operand::Sgpr(i % 16), i % 8)
            .unwrap();
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(i % 16),
            Operand::Sgpr((i + 1) % 16),
            Operand::Literal(u32::from(i) * 1000),
        )
        .unwrap();
        b.mubuf(Opcode::BufferLoadDword, 1, 2, 4, Operand::Sgpr(20), 16)
            .unwrap();
    }
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();
    let words = kernel.words().to_vec();

    let mut group = c.benchmark_group("isa_codec");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("decode_stream", |b| {
        b.iter(|| Instruction::decode_all(&words).unwrap());
    });
    let insts: Vec<Instruction> = Instruction::decode_all(&words)
        .unwrap()
        .into_iter()
        .map(|(_, i)| i)
        .collect();
    group.bench_function("encode_stream", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(words.len());
            for inst in &insts {
                out.extend(inst.encode().unwrap());
            }
            out
        });
    });
    group.finish();
}

fn assembler(c: &mut Criterion) {
    let mut b = KernelBuilder::new("asm");
    for i in 0..64u8 {
        b.vop2(
            Opcode::VAddI32,
            i % 8,
            Operand::IntConst((i % 32) as i8),
            i % 8,
        )
        .unwrap();
    }
    b.endpgm().unwrap();
    let text = b.finish().unwrap().disassemble().unwrap();
    c.bench_function("assemble_65_instructions", |b| {
        b.iter(|| assemble(&text).unwrap());
    });
}

fn cu_issue_throughput(c: &mut Criterion) {
    // A pure-ALU kernel: measures the scheduler, scoreboard and executor.
    let mut b = KernelBuilder::new("alu");
    b.vgprs(8).sgprs(8);
    for _ in 0..64 {
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(1), 0).unwrap();
        b.vop2(Opcode::VXorB32, 2, Operand::Vgpr(1), 2).unwrap();
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(0),
            Operand::Sgpr(0),
            Operand::IntConst(1),
        )
        .unwrap();
    }
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let mut group = c.benchmark_group("cu_pipeline");
    group.throughput(Throughput::Elements(64 * 3 * 16));
    group.bench_function("issue_16_waves", |b| {
        b.iter(|| {
            let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
            let wg = cu.add_workgroup();
            for _ in 0..16 {
                cu.start_wave(WaveInit {
                    workgroup: wg,
                    exec: u64::MAX,
                    sgprs: vec![],
                    vgprs: vec![(0, (0..64).collect())],
                })
                .unwrap();
            }
            let mut mem = FixedLatencyMemory::new(0, 0);
            cu.run_to_completion(&mut mem).unwrap()
        });
    });
    // The tracing acceptance bar: a NullTracer sink must stay within noise
    // (<2%) of the untraced run above.
    group.bench_function("issue_16_waves_null_tracer", |b| {
        b.iter(|| {
            let mut cu = ComputeUnit::new(CuConfig::default(), &kernel).unwrap();
            cu.set_tracer(0, Box::new(NullTracer));
            let wg = cu.add_workgroup();
            for _ in 0..16 {
                cu.start_wave(WaveInit {
                    workgroup: wg,
                    exec: u64::MAX,
                    sgprs: vec![],
                    vgprs: vec![(0, (0..64).collect())],
                })
                .unwrap();
            }
            let mut mem = FixedLatencyMemory::new(0, 0);
            cu.run_to_completion(&mut mem).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, isa_codec, assembler, cu_issue_throughput);
criterion_main!(benches);
