//! Criterion wrapper for Fig. 7: the trimmed multi-core and multi-thread
//! designs against the baseline on the 2-D convolution workload.

use criterion::{criterion_group, criterion_main, Criterion};

use scratch_core::{configure, trim_kernels, Scratch};
use scratch_fpga::ParallelPlan;
use scratch_kernels::{conv2d::Conv2d, Benchmark};
use scratch_system::SystemKind;

fn parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_parallelism");
    group.sample_size(10);
    let bench = Conv2d::new(32, 5, false);
    let scratch = Scratch::new();
    let trim = trim_kernels(&bench.kernels().unwrap()).unwrap();

    let configs = [
        (
            "baseline_1cu",
            configure(SystemKind::DcdPm, ParallelPlan::baseline(true), None),
        ),
        (
            "multicore_3cu",
            configure(
                SystemKind::DcdPm,
                scratch.plan_multicore(&trim, 3),
                Some(&trim),
            ),
        ),
        (
            "multithread_4valu",
            configure(
                SystemKind::DcdPm,
                scratch.plan_multithread(&trim, 4),
                Some(&trim),
            ),
        ),
    ];
    let mut cycles = std::collections::HashMap::new();
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = bench.run(config.clone()).expect("run");
                cycles.insert(name, r.cu_cycles);
                r.cu_cycles
            });
        });
    }
    group.finish();
    assert!(cycles["multicore_3cu"] < cycles["baseline_1cu"]);
    assert!(cycles["multithread_4valu"] < cycles["baseline_1cu"]);
}

criterion_group!(benches, parallelism);
criterion_main!(benches);
