//! Criterion wrapper for the Fig. 4 characterisation: dynamic
//! instruction-mix profiling of representative kernels.

use criterion::{criterion_group, criterion_main, Criterion};

use scratch_core::DynamicMix;
use scratch_kernels::{conv2d::Conv2d, micro::Reduction, vec_ops::MatrixAdd, Benchmark};
use scratch_system::{SystemConfig, SystemKind};

fn characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_characterization");
    group.sample_size(10);
    let benches: Vec<(&str, Box<dyn Benchmark>)> = vec![
        ("matrix_add_int", Box::new(MatrixAdd::new(32, false))),
        ("conv2d_int_k3", Box::new(Conv2d::new(32, 3, false))),
        ("reduction_lds", Box::new(Reduction::new(512))),
    ];
    for (name, bench) in benches {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = bench
                    .run(SystemConfig::preset(SystemKind::DcdPm))
                    .expect("benchmark");
                let mix = DynamicMix::of(&report.stats);
                assert!(mix.total > 0);
                mix
            });
        });
    }
    group.finish();
}

criterion_group!(benches, characterization);
criterion_main!(benches);
