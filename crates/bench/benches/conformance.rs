//! Throughput of the differential conformance subsystem: how many
//! random-kernel cases per second each oracle sustains, and the cost of
//! minimizing a (deliberately injected) divergence. These numbers size
//! the CI smoke campaign and the nightly long-form run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_check::{check_with_bug, minimize, GenKernel, InjectedBug, OracleKind, Outcome};

fn oracle_throughput(c: &mut Criterion) {
    // A fixed pool of pre-generated kernels, cycled per iteration, so the
    // timer sees oracle cost rather than generation cost.
    let pool: Vec<GenKernel> = (0..16).map(GenKernel::generate).collect();
    let mut group = c.benchmark_group("fuzz_oracle");
    group.throughput(Throughput::Elements(1));
    for oracle in OracleKind::ALL {
        group.bench_function(oracle.name(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let gk = &pool[i % pool.len()];
                i += 1;
                assert!(!check_with_bug(oracle, gk, InjectedBug::None).is_divergence());
            });
        });
    }
    group.finish();
}

fn generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_generator");
    group.throughput(Throughput::Elements(1));
    let mut seed = 0u64;
    group.bench_function("generate_and_assemble", |b| {
        b.iter(|| {
            seed += 1;
            GenKernel::generate(seed).build().expect("assembles")
        });
    });
    group.finish();
}

fn minimizer(c: &mut Criterion) {
    // Find a seed the injected bug diverges on, once, outside the timer.
    let bug = InjectedBug::XorFlipsBit0;
    let gk = (0..256)
        .map(GenKernel::generate)
        .find(|gk| {
            matches!(
                check_with_bug(OracleKind::Reference, gk, bug),
                Outcome::Diverge(_)
            )
        })
        .expect("injected bug never diverged in 256 seeds");
    let mut group = c.benchmark_group("fuzz_minimizer");
    group.sample_size(10);
    group.bench_function("minimize_injected_bug", |b| {
        b.iter(|| minimize(&gk, OracleKind::Reference, bug));
    });
    group.finish();
}

criterion_group!(benches, oracle_throughput, generator, minimizer);
criterion_main!(benches);
