//! Criterion benchmark for the execution tiers: the block-compiled fast
//! tier ([`ExecMode::Fast`]) against the cycle-accurate pipeline on the
//! Fig. 7 kernel set. Every run still validates its output against the
//! CPU reference, so the speedup is measured on proven-correct results.
//!
//! After the criterion groups it prints a wall-clock `instr/s` table —
//! the numbers committed as `BENCH_fastpath.json`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use scratch_kernels::{conv2d::Conv2d, matmul::MatrixMul, vec_ops::MatrixAdd, Benchmark};
use scratch_system::{ExecMode, SystemConfig, SystemKind};

fn workloads() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(MatrixAdd::new(128, false)),
        Box::new(MatrixMul::new(64, false)),
        Box::new(Conv2d::new(32, 5, false)),
    ]
}

fn config(exec: ExecMode) -> SystemConfig {
    SystemConfig::preset(SystemKind::DcdPm).with_exec(exec)
}

fn fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath");
    group.sample_size(10);
    for bench in workloads() {
        let name = bench.name().replace(' ', "_").to_lowercase();
        for (tier, exec) in [("cycle", ExecMode::Cycle), ("fast", ExecMode::Fast)] {
            group.bench_function(format!("{tier}/{name}"), |b| {
                b.iter(|| bench.run(config(exec)).expect("validated run"));
            });
        }
    }
    group.finish();

    // Wall-clock instr/s table (the BENCH_fastpath.json source). One warm
    // measurement per tier per workload keeps `--test` mode quick.
    println!("\nworkload, cycle_instr_per_s, fast_instr_per_s, speedup");
    for bench in workloads() {
        let measure = |exec: ExecMode| {
            bench.run(config(exec)).expect("warmup");
            let start = Instant::now();
            let report = bench.run(config(exec)).expect("validated run");
            report.stats.instructions as f64 / start.elapsed().as_secs_f64()
        };
        let cycle = measure(ExecMode::Cycle);
        let fast = measure(ExecMode::Fast);
        println!(
            "{}, {:.0}, {:.0}, {:.2}x",
            bench.name(),
            cycle,
            fast,
            fast / cycle
        );
    }
}

criterion_group!(benches, fastpath);
criterion_main!(benches);
