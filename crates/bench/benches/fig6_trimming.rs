//! Criterion wrapper for the Fig. 6 compile-time path: static analysis,
//! trimming (Algorithm 1), the synthesis resource/power model, and the
//! freed-area allocators.

use criterion::{criterion_group, criterion_main, Criterion};

use scratch_core::{trim_kernels, Scratch};
use scratch_fpga::ParallelPlan;
use scratch_kernels::{cnn::Cnn, conv2d::Conv2d, transpose::Transpose, Benchmark};
use scratch_system::SystemKind;

fn trimming_tool(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_trimming");
    let scratch = Scratch::new();
    let apps: Vec<(&str, Box<dyn Benchmark>)> = vec![
        ("conv2d_int", Box::new(Conv2d::new(64, 5, false))),
        ("transpose", Box::new(Transpose::new(64))),
        ("cnn_int_multi_kernel", Box::new(Cnn::new(8, false))),
    ];
    for (name, app) in &apps {
        let kernels = app.kernels().expect("kernels");
        group.bench_function(format!("trim/{name}"), |b| {
            b.iter(|| trim_kernels(&kernels).expect("trim"));
        });
        let trim = trim_kernels(&kernels).unwrap();
        group.bench_function(format!("synthesize/{name}"), |b| {
            b.iter(|| {
                scratch.synthesize(
                    SystemKind::DcdPm,
                    Some(&trim),
                    ParallelPlan::baseline(trim.uses_fp),
                )
            });
        });
        group.bench_function(format!("allocate/{name}"), |b| {
            b.iter(|| {
                (
                    scratch.plan_multicore(&trim, 3),
                    scratch.plan_multithread(&trim, 4),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, trimming_tool);
criterion_main!(benches);
