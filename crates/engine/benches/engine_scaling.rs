//! Engine throughput scaling: a fixed batch of simulator runs at 1/2/4/8
//! pool workers. On a multi-core host the batch wall-clock should shrink
//! roughly with the worker count until the batch width (8 jobs) or the
//! core count saturates; on a single-core host all points degenerate to
//! serial throughput (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_engine::{Engine, JobError};
use scratch_kernels::{bitonic::BitonicSort, matmul::MatrixMul, Benchmark};
use scratch_system::{SystemConfig, SystemKind};

const BATCH: u64 = 8;

fn run_batch<B: Benchmark + 'static>(workers: usize, make: fn() -> B) {
    let outcomes = Engine::new(workers).run_batch((0..BATCH).map(|i| {
        (format!("job-{i}"), move || {
            make()
                .run(SystemConfig::preset(SystemKind::DcdPm))
                .map_err(|e| JobError::Failed(e.to_string()))
        })
    }));
    assert_eq!(outcomes.len() as u64, BATCH);
    for o in &outcomes {
        assert!(o.result.is_ok(), "{}: {:?}", o.label, o.result);
    }
}

fn engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(BATCH));
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("matmul64_batch8_w{workers}"), |b| {
            b.iter(|| run_batch(workers, || MatrixMul::new(64, false)));
        });
    }
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("bitonic256_batch8_w{workers}"), |b| {
            b.iter(|| run_batch(workers, || BitonicSort::new(256)));
        });
    }
    group.finish();
}

criterion_group!(benches, engine_scaling);
criterion_main!(benches);
