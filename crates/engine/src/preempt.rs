//! The preemptive scheduling layer: jobs execute in *slices* (quanta) on a
//! small worker pool, with per-tenant round-robin between slices and
//! best-effort cancellation at quantum boundaries.
//!
//! Where [`Engine`](crate::Engine) runs each job to completion on the
//! worker that picked it, [`PreemptiveEngine`] hands a job's closure back
//! to the scheduler after every slice: a long-running job cannot monopolise
//! a worker, tenants share the pool fairly whatever their queue depths,
//! and a cancelled job stops at its next quantum boundary instead of
//! running to the end. The slice closure owns whatever state it needs to
//! continue — the serving layer's jobs carry a serialized
//! `scratch_system::SystemCheckpoint` between quanta.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scratch_metrics::{Counter, Registry};

use crate::default_workers;
use crate::queue::{JobError, JobOutcome, JobTiming};

/// What one execution slice of a preemptible job reports back.
pub enum Slice<T> {
    /// The quantum is spent but the job has more work; the scheduler will
    /// run another slice after other tenants have had their turn.
    Yield,
    /// The job finished with this result.
    Done(Result<T, JobError>),
}

type SliceFn<T> = Box<dyn FnMut(u64) -> Slice<T> + Send>;

/// A preemptible job parked between slices.
struct PJob<T> {
    id: u64,
    label: String,
    tenant: String,
    enqueued: u64,
    /// Slices run so far (the 0-based index passed to the next slice).
    slices: u64,
    /// Logical tick of the first pickup.
    started: Option<u64>,
    /// Accumulated wall-clock execution time across slices.
    wall: Duration,
    work: SliceFn<T>,
}

/// Scheduler state: one FIFO per tenant (in first-seen order) with a
/// round-robin cursor between them.
struct PSched<T> {
    queues: Vec<(String, VecDeque<PJob<T>>)>,
    rr: usize,
    /// Ids whose cancellation was requested but not yet delivered.
    cancelled: HashSet<u64>,
    /// Ids submitted whose outcome has not been produced yet.
    live: HashSet<u64>,
    shutdown: bool,
}

impl<T> PSched<T> {
    /// Pop the next runnable job, tenant round-robin: starting from the
    /// cursor, the first tenant with queued work gets one job picked, and
    /// the cursor moves past it.
    fn pick(&mut self) -> Option<PJob<T>> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if let Some(job) = self.queues[i].1.pop_front() {
                self.rr = (i + 1) % n;
                return Some(job);
            }
        }
        None
    }

    /// Queue a job at the back of its tenant's FIFO, creating the
    /// tenant's queue on first sight.
    fn enqueue(&mut self, job: PJob<T>) {
        match self.queues.iter().position(|(t, _)| *t == job.tenant) {
            Some(i) => self.queues[i].1.push_back(job),
            None => {
                let tenant = job.tenant.clone();
                self.queues.push((tenant, VecDeque::from([job])));
            }
        }
    }

    fn queued(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }
}

/// Counters of the preemptive scheduler's metrics plane.
struct PreemptMetrics {
    quanta: Counter,
    preemptions: Counter,
    cancelled: Counter,
}

impl PreemptMetrics {
    fn new(registry: &Registry) -> PreemptMetrics {
        PreemptMetrics {
            quanta: registry.counter(
                "scratch_preempt_quanta_total",
                "Execution quanta (job slices) run by the preemptive pool",
            ),
            preemptions: registry.counter(
                "scratch_preempt_preemptions_total",
                "Times a job was preempted at a quantum boundary",
            ),
            cancelled: registry.counter(
                "scratch_preempt_cancelled_total",
                "Jobs cancelled before completion (queued or mid-flight)",
            ),
        }
    }
}

struct PShared<T> {
    sched: Mutex<PSched<T>>,
    available: Condvar,
    /// Logical clock, ticking once per scheduler event (see
    /// [`JobTiming`]).
    clock: AtomicU64,
    submitted: AtomicU64,
    /// Offset added to the `submitted` counter when minting submission
    /// ids, so a restarted server can keep ids unique across process
    /// lifetimes (WAL recovery hands the floor in via
    /// [`PreemptiveEngine::with_first_id`]). `submitted` itself stays
    /// zero-based: `pending()`/`submitted_count()` count this pool's own
    /// jobs regardless of where the id space starts.
    id_base: u64,
    completed: AtomicU64,
    /// Jobs currently executing a slice on some worker.
    in_flight: AtomicUsize,
    metrics: Option<PreemptMetrics>,
}

impl<T> PShared<T> {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Produce a job's outcome: clear its cancellation/liveness bookkeeping,
/// send the outcome, then bump the completion counter — ordered so that
/// `completed == submitted` implies every outcome was also routed (the
/// drain invariant the serving layer waits on).
fn finish<T>(
    shared: &PShared<T>,
    results: &Sender<JobOutcome<T>>,
    job: PJob<T>,
    result: Result<T, JobError>,
) {
    let finished_tick = shared.tick();
    {
        let mut st = shared.sched.lock().expect("preemptive sched lock");
        st.cancelled.remove(&job.id);
        st.live.remove(&job.id);
    }
    if let Some(m) = &shared.metrics {
        if matches!(result, Err(JobError::Cancelled)) {
            m.cancelled.inc();
        }
    }
    let _ = results.send(JobOutcome {
        id: job.id,
        label: job.label,
        result,
        wall: job.wall,
        timing: JobTiming {
            enqueued: job.enqueued,
            started: job.started.unwrap_or(finished_tick),
            finished: finished_tick,
        },
    });
    shared.completed.fetch_add(1, Ordering::Release);
}

fn preemptive_worker<T>(shared: &PShared<T>, results: &Sender<JobOutcome<T>>) {
    loop {
        // Pick the next slice to run; `was_cancelled` covers jobs whose
        // cancellation arrived while they sat queued.
        let (mut job, was_cancelled) = {
            let mut st = shared.sched.lock().expect("preemptive sched lock");
            loop {
                if let Some(job) = st.pick() {
                    let cancelled = st.cancelled.contains(&job.id);
                    break (job, cancelled);
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).expect("preemptive sched lock");
            }
        };
        if was_cancelled {
            finish(shared, results, job, Err(JobError::Cancelled));
            continue;
        }
        if job.started.is_none() {
            job.started = Some(shared.tick());
        }
        shared.in_flight.fetch_add(1, Ordering::Release);
        let slice_start = Instant::now();
        let index = job.slices;
        let slice = catch_unwind(AssertUnwindSafe(|| (job.work)(index)));
        job.wall += slice_start.elapsed();
        job.slices += 1;
        shared.in_flight.fetch_sub(1, Ordering::Release);
        if let Some(m) = &shared.metrics {
            m.quanta.inc();
        }
        match slice {
            Err(payload) => {
                finish(
                    shared,
                    results,
                    job,
                    Err(JobError::Panicked(panic_message(payload))),
                );
            }
            Ok(Slice::Done(result)) => finish(shared, results, job, result),
            Ok(Slice::Yield) => {
                if let Some(m) = &shared.metrics {
                    m.preemptions.inc();
                }
                // Cancellation requested while the slice ran wins over
                // requeueing: the job stops at this quantum boundary.
                let cancelled = {
                    let st = shared.sched.lock().expect("preemptive sched lock");
                    st.cancelled.contains(&job.id)
                };
                if cancelled {
                    finish(shared, results, job, Err(JobError::Cancelled));
                } else {
                    let mut st = shared.sched.lock().expect("preemptive sched lock");
                    st.enqueue(job);
                    drop(st);
                    shared.available.notify_one();
                }
            }
        }
    }
}

/// Configuration of a preemptive worker pool (see the module docs).
#[derive(Debug, Clone)]
pub struct PreemptiveEngine {
    workers: usize,
    metrics: bool,
    registry: Option<Registry>,
    first_id: u64,
}

impl PreemptiveEngine {
    /// An engine with `workers` pool threads; `0` means one per available
    /// core. The metrics plane is on, publishing to the process-global
    /// registry.
    #[must_use]
    pub fn new(workers: usize) -> PreemptiveEngine {
        PreemptiveEngine {
            workers: if workers == 0 {
                default_workers()
            } else {
                workers
            },
            metrics: true,
            registry: None,
            first_id: 0,
        }
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Builder-style switch for the scheduler's metrics (quantum,
    /// preemption and cancellation counters). On by default.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> PreemptiveEngine {
        self.metrics = metrics;
        self
    }

    /// Publish into `registry` instead of the process-global
    /// [`scratch_metrics::global`] registry (hermetic tests).
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> PreemptiveEngine {
        self.registry = Some(registry);
        self
    }

    /// Mint submission ids starting at `first_id` instead of 0. A server
    /// recovering a write-ahead log passes one past the largest id the
    /// log ever issued, so restarted processes never reuse an id a client
    /// (or a completion record) has already seen.
    #[must_use]
    pub fn with_first_id(mut self, first_id: u64) -> PreemptiveEngine {
        self.first_id = first_id;
        self
    }

    /// Spin up the pool and return the submission handle.
    #[must_use]
    pub fn start<T: Send + 'static>(&self) -> PreemptiveHandle<T> {
        let metrics = self.metrics.then(|| {
            let registry = self
                .registry
                .clone()
                .unwrap_or_else(|| scratch_metrics::global().clone());
            PreemptMetrics::new(&registry)
        });
        let shared = Arc::new(PShared {
            sched: Mutex::new(PSched {
                queues: Vec::new(),
                rr: 0,
                cancelled: HashSet::new(),
                live: HashSet::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            clock: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            id_base: self.first_id,
            completed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            metrics,
        });
        let (tx, rx) = channel();
        let threads = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("scratch-preempt-{i}"))
                    .spawn(move || preemptive_worker(&shared, &tx))
                    .expect("spawn preemptive worker")
            })
            .collect();
        PreemptiveHandle {
            shared,
            threads,
            results: Mutex::new(rx),
            received: AtomicU64::new(0),
        }
    }
}

impl Default for PreemptiveEngine {
    /// One worker per available core.
    fn default() -> PreemptiveEngine {
        PreemptiveEngine::new(0)
    }
}

/// A running preemptive pool: submit sliced jobs under a tenant, cancel
/// them, stream their outcomes.
///
/// Dropping the handle shuts the pool down gracefully: already-queued
/// jobs still run (slice by slice) and the workers are joined. A job that
/// yields forever would hang that shutdown — slice closures are expected
/// to bound their own total work, as the serving layer's watchdog-limited
/// checkpoint slices do.
pub struct PreemptiveHandle<T> {
    shared: Arc<PShared<T>>,
    threads: Vec<JoinHandle<()>>,
    results: Mutex<Receiver<JobOutcome<T>>>,
    received: AtomicU64,
}

impl<T: Send + 'static> PreemptiveHandle<T> {
    /// Queue a preemptible job under `tenant`; returns its submission id.
    ///
    /// `work` is called once per quantum with the 0-based slice index; it
    /// returns [`Slice::Yield`] to be rescheduled after other tenants'
    /// turns, or [`Slice::Done`] with the job's result.
    pub fn submit<F>(&self, tenant: impl Into<String>, label: impl Into<String>, mut work: F) -> u64
    where
        F: FnMut(u64) -> Slice<T> + Send + 'static,
    {
        self.submit_with_id(tenant, label, move |_id, slice| work(slice))
    }

    /// [`submit`](Self::submit), but `work` also receives the job's own
    /// submission id as its first argument — the correlation key a slice
    /// needs to stamp downstream artifacts (trace events, span timelines)
    /// before the submit call has even returned the id to the caller.
    pub fn submit_with_id<F>(
        &self,
        tenant: impl Into<String>,
        label: impl Into<String>,
        mut work: F,
    ) -> u64
    where
        F: FnMut(u64, u64) -> Slice<T> + Send + 'static,
    {
        let id = self.shared.id_base + self.shared.submitted.fetch_add(1, Ordering::AcqRel);
        let enqueued = self.shared.tick();
        {
            let mut st = self.shared.sched.lock().expect("preemptive sched lock");
            st.live.insert(id);
            st.enqueue(PJob {
                id,
                label: label.into(),
                tenant: tenant.into(),
                enqueued,
                slices: 0,
                started: None,
                wall: Duration::ZERO,
                work: Box::new(move |slice| work(id, slice)),
            });
        }
        self.shared.available.notify_one();
        id
    }

    /// Request cancellation of job `id`. Best-effort and asynchronous:
    /// a queued job is reaped at its next pickup, a running job at its
    /// next quantum boundary; either way its outcome arrives as
    /// [`JobError::Cancelled`]. Returns `false` when the job is unknown
    /// or its outcome was already produced (too late to cancel).
    pub fn cancel(&self, id: u64) -> bool {
        let live = {
            let mut st = self.shared.sched.lock().expect("preemptive sched lock");
            if !st.live.contains(&id) {
                return false;
            }
            st.cancelled.insert(id);
            true
        };
        // Wake the pool so idle workers reap queued cancellations promptly.
        self.shared.available.notify_all();
        live
    }

    /// Receive the next completed outcome, blocking until one is ready.
    /// Returns `None` once every submitted job's outcome was received.
    pub fn recv(&mut self) -> Option<JobOutcome<T>> {
        let rx = self.results.lock().expect("preemptive results lock");
        if self.received.load(Ordering::Acquire) >= self.submitted_count() {
            return None;
        }
        let outcome = rx.recv().expect("preemptive workers outlive the handle");
        self.received.fetch_add(1, Ordering::AcqRel);
        Some(outcome)
    }

    /// Receive the next completed outcome, waiting at most `timeout`.
    /// Returns `None` on timeout (or if another thread holds the receive
    /// side) — the router-loop primitive of the serving layer.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<JobOutcome<T>> {
        let rx = self.results.try_lock().ok()?;
        let outcome = rx.recv_timeout(timeout).ok()?;
        self.received.fetch_add(1, Ordering::AcqRel);
        Some(outcome)
    }

    /// Receive the next completed outcome if one is already waiting,
    /// without blocking.
    pub fn try_recv(&self) -> Option<JobOutcome<T>> {
        let rx = self.results.try_lock().ok()?;
        let outcome = rx.try_recv().ok()?;
        self.received.fetch_add(1, Ordering::AcqRel);
        Some(outcome)
    }

    /// Jobs submitted whose outcomes have not been received yet.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted_count() - self.received.load(Ordering::Acquire)
    }

    /// Total jobs submitted to the pool so far.
    #[must_use]
    pub fn submitted_count(&self) -> u64 {
        self.shared.submitted.load(Ordering::Acquire)
    }

    /// Outcomes the pool has produced so far (successes, failures and
    /// cancellations alike). Once this equals
    /// [`submitted_count`](Self::submitted_count), every outcome has also
    /// been routed — the drain invariant.
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Jobs parked in tenant queues right now (between slices or not yet
    /// started).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .sched
            .lock()
            .expect("preemptive sched lock")
            .queued()
    }

    /// Jobs currently executing a slice on some worker.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Parked jobs per tenant queue, in first-seen tenant order — the
    /// live-introspection feed behind `scratch-tool ctl top`. Tenants
    /// whose queue is currently empty still appear (with 0).
    #[must_use]
    pub fn tenant_queue_depths(&self) -> Vec<(String, usize)> {
        let sched = self.shared.sched.lock().expect("preemptive sched lock");
        sched
            .queues
            .iter()
            .map(|(tenant, q)| (tenant.clone(), q.len()))
            .collect()
    }

    /// Drain every outstanding outcome, shut the pool down, and return
    /// all collected outcomes sorted by submission id.
    #[must_use]
    pub fn join(mut self) -> Vec<JobOutcome<T>> {
        let mut out = Vec::with_capacity(usize::try_from(self.pending()).unwrap_or(0));
        while let Some(o) = self.recv() {
            out.push(o);
        }
        out.sort_by_key(|o| o.id);
        out
    }
}

impl<T> Drop for PreemptiveHandle<T> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.sched.lock() {
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn slices_interleave_tenants_round_robin() {
        // One worker, two tenants. Both jobs idle-yield until released,
        // then log three real slices each: the scheduler must alternate
        // tenants strictly once both are queued.
        let engine = PreemptiveEngine::new(1).with_metrics(false);
        let handle: PreemptiveHandle<Vec<&'static str>> = engine.start();
        let go = Arc::new(AtomicBool::new(false));
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        for tenant in ["alice", "bob"] {
            let go = Arc::clone(&go);
            let log = Arc::clone(&log);
            let mut ran = 0u32;
            handle.submit(tenant, tenant, move |_| {
                if !go.load(Ordering::Acquire) {
                    return Slice::Yield;
                }
                log.lock().unwrap().push(tenant);
                ran += 1;
                if ran < 3 {
                    Slice::Yield
                } else {
                    Slice::Done(Ok(Vec::new()))
                }
            });
        }
        go.store(true, Ordering::Release);
        let outcomes = handle.join();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.result.is_ok(), "{:?}", o.result);
        }
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 6);
        assert_eq!(log.iter().filter(|t| **t == "alice").count(), 3);
        // Collapse the log into maximal same-tenant runs. Strict
        // alternation holds in the middle; the edges may legitimately
        // run twice — the release can land between a pick made while
        // only one tenant was queued and that slice's gate check, and
        // once one job completes the survivor runs back-to-back.
        let mut runs: Vec<(&str, usize)> = Vec::new();
        for t in log.iter() {
            match runs.last_mut() {
                Some((last, n)) if last == t => *n += 1,
                _ => runs.push((t, 1)),
            }
        }
        let (first, rest) = runs.split_first().expect("non-empty log");
        assert!(first.1 <= 2, "first run too long: {log:?}");
        let (last, middle) = rest.split_last().unwrap_or((first, &[]));
        assert!(last.1 <= 2, "last run too long: {log:?}");
        for (_, n) in middle {
            assert_eq!(*n, 1, "tenants must alternate mid-stream: {log:?}");
        }
    }

    #[test]
    fn first_id_offsets_minted_ids_without_breaking_counts() {
        let engine = PreemptiveEngine::new(1)
            .with_metrics(false)
            .with_first_id(1000);
        let mut handle: PreemptiveHandle<u64> = engine.start();
        let a = handle.submit("t", "a", |_| Slice::Done(Ok(1)));
        let b = handle.submit("t", "b", |_| Slice::Done(Ok(2)));
        assert_eq!(a, 1000, "ids start at the recovered floor");
        assert_eq!(b, 1001);
        assert_eq!(handle.submitted_count(), 2, "counts stay zero-based");
        let mut seen = Vec::new();
        while let Some(o) = handle.recv() {
            seen.push(o.id);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1000, 1001]);
    }

    #[test]
    fn cancel_reaps_queued_and_running_jobs() {
        let engine = PreemptiveEngine::new(1).with_metrics(false);
        let handle: PreemptiveHandle<u32> = engine.start();
        // A long job that yields at every quantum (bounded as a safety
        // net, far beyond what the test needs).
        let long = handle.submit("t", "long", move |i| {
            std::thread::sleep(Duration::from_millis(1));
            if i > 10_000 {
                Slice::Done(Err(JobError::Failed("ran away".into())))
            } else {
                Slice::Yield
            }
        });
        // Queued behind it on the single worker.
        let queued = handle.submit("t", "queued", |_| Slice::Done(Ok(7)));
        assert!(handle.cancel(queued), "queued job is cancellable");
        assert!(handle.cancel(long), "running job is cancellable");
        assert!(!handle.cancel(999), "unknown ids are not");
        let outcomes = handle.join();
        for o in outcomes {
            assert_eq!(
                o.result.unwrap_err(),
                JobError::Cancelled,
                "job {} must be cancelled",
                o.id
            );
            assert!(o.id == long || o.id == queued);
        }
    }

    #[test]
    fn completed_jobs_are_not_cancellable() {
        let engine = PreemptiveEngine::new(1).with_metrics(false);
        let handle: PreemptiveHandle<u32> = engine.start();
        let id = handle.submit("t", "quick", |_| Slice::Done(Ok(1)));
        while handle.completed_count() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!handle.cancel(id), "outcome already produced");
        let outcomes = handle.join();
        assert_eq!(outcomes[0].result.as_ref().unwrap(), &1);
    }

    #[test]
    fn metrics_count_quanta_preemptions_and_cancellations() {
        let registry = Registry::new();
        let engine = PreemptiveEngine::new(1).with_registry(registry.clone());
        let handle: PreemptiveHandle<u32> = engine.start();
        handle.submit("t", "three-slices", |i| {
            if i < 2 {
                Slice::Yield
            } else {
                Slice::Done(Ok(0))
            }
        });
        let victim = handle.submit("t", "victim", |_| Slice::Yield);
        assert!(handle.cancel(victim));
        let _ = handle.join();
        let quanta = registry.counter("scratch_preempt_quanta_total", "").get();
        let preemptions = registry
            .counter("scratch_preempt_preemptions_total", "")
            .get();
        let cancelled = registry
            .counter("scratch_preempt_cancelled_total", "")
            .get();
        assert!(quanta >= 3, "quanta {quanta}");
        assert!(preemptions >= 2, "preemptions {preemptions}");
        assert_eq!(cancelled, 1);
    }

    #[test]
    fn panicking_slice_is_isolated() {
        let engine = PreemptiveEngine::new(2).with_metrics(false);
        let handle: PreemptiveHandle<u32> = engine.start();
        handle.submit("t", "bad", |i| {
            if i == 1 {
                panic!("slice two exploded");
            }
            Slice::Yield
        });
        handle.submit("t", "good", |_| Slice::Done(Ok(42)));
        let outcomes = handle.join();
        assert_eq!(outcomes.len(), 2);
        assert!(
            matches!(&outcomes[0].result, Err(JobError::Panicked(m)) if m.contains("exploded"))
        );
        assert_eq!(outcomes[1].result.as_ref().unwrap(), &42);
    }
}
