//! The inter-run batching layer: a persistent worker pool consuming a job
//! queue and streaming outcomes back over a channel.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scratch_system::SystemError;

use crate::default_workers;

/// Failure of a single job. A failing — even panicking — job never kills
/// the queue: its outcome carries the error and the workers move on.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The job panicked; the payload message was captured.
    Panicked(String),
    /// The simulator refused or aborted the run.
    System(SystemError),
    /// Any other failure, stringified by the job itself.
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::System(e) => write!(f, "system: {e}"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemError> for JobError {
    fn from(e: SystemError) -> Self {
        JobError::System(e)
    }
}

/// The completed result of one job: which job it was, what it produced
/// (or how it failed), and how long it ran on its worker.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// Submission-order id (0-based), assigned by [`EngineHandle::submit`].
    pub id: u64,
    /// The label the job was submitted under.
    pub label: String,
    /// What the job produced.
    pub result: Result<T, JobError>,
    /// Wall-clock time the job spent executing on its worker.
    pub wall: Duration,
}

struct Job<T> {
    id: u64,
    label: String,
    #[allow(clippy::type_complexity)]
    work: Box<dyn FnOnce() -> Result<T, JobError> + Send>,
}

struct State<T> {
    jobs: VecDeque<Job<T>>,
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn worker_loop<T>(shared: &Shared<T>, results: &Sender<JobOutcome<T>>) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("engine state lock");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).expect("engine state lock");
            }
        };
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job.work))
            .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(payload))));
        // A send failure means the handle (and its receiver) is gone —
        // nobody wants the outcome anymore.
        let _ = results.send(JobOutcome {
            id: job.id,
            label: job.label,
            result,
            wall: started.elapsed(),
        });
    }
}

/// Engine configuration: how many OS worker threads the pool runs.
///
/// The engine provides *inter-run* parallelism — many independent
/// simulator runs at once. (Intra-run parallelism over a single dispatch's
/// CUs is the simulator's own `SystemConfig::with_workers` knob; both
/// layers are deterministic, so composing them never changes results.)
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// An engine with `workers` pool threads; `0` means one per available
    /// core ([`default_workers`]).
    #[must_use]
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: if workers == 0 {
                default_workers()
            } else {
                workers
            },
        }
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Spin up the worker pool and return the handle jobs are submitted
    /// through.
    #[must_use]
    pub fn start<T: Send + 'static>(&self) -> EngineHandle<T> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let (tx, rx) = channel();
        let threads = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("scratch-engine-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    .expect("spawn engine worker")
            })
            .collect();
        EngineHandle {
            shared,
            threads,
            results: rx,
            submitted: 0,
            received: 0,
        }
    }

    /// Run a whole batch to completion and return the outcomes sorted by
    /// submission id — deterministic output order regardless of which
    /// worker finished which job first.
    pub fn run_batch<T, F, L>(&self, jobs: impl IntoIterator<Item = (L, F)>) -> Vec<JobOutcome<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
        L: Into<String>,
    {
        let mut handle = self.start();
        for (label, work) in jobs {
            handle.submit(label, work);
        }
        handle.join()
    }
}

impl Default for Engine {
    /// One worker per available core.
    fn default() -> Engine {
        Engine::new(0)
    }
}

/// A running engine pool: submit jobs, stream their outcomes, join.
///
/// Dropping the handle shuts the pool down gracefully — already-queued
/// jobs still run, their outcomes are discarded, and the worker threads
/// are joined.
pub struct EngineHandle<T> {
    shared: Arc<Shared<T>>,
    threads: Vec<JoinHandle<()>>,
    results: Receiver<JobOutcome<T>>,
    submitted: u64,
    received: u64,
}

impl<T: Send + 'static> EngineHandle<T> {
    /// Queue a job; returns its submission id. Jobs start as soon as a
    /// worker is free.
    pub fn submit<F>(&mut self, label: impl Into<String>, work: F) -> u64
    where
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
    {
        let id = self.submitted;
        self.submitted += 1;
        {
            let mut st = self.shared.state.lock().expect("engine state lock");
            st.jobs.push_back(Job {
                id,
                label: label.into(),
                work: Box::new(work),
            });
        }
        self.shared.available.notify_one();
        id
    }

    /// Receive the next completed outcome, in completion order, blocking
    /// until one is ready. Returns `None` when every submitted job's
    /// outcome has already been received.
    pub fn recv(&mut self) -> Option<JobOutcome<T>> {
        if self.received >= self.submitted {
            return None;
        }
        let outcome = self
            .results
            .recv()
            .expect("engine workers outlive the handle");
        self.received += 1;
        Some(outcome)
    }

    /// Jobs submitted whose outcomes have not been received yet.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted - self.received
    }

    /// Drain every outstanding outcome, shut the pool down, and return
    /// all collected outcomes sorted by submission id.
    #[must_use]
    pub fn join(mut self) -> Vec<JobOutcome<T>> {
        let mut out = Vec::with_capacity(usize::try_from(self.pending()).unwrap_or(0));
        while let Some(o) = self.recv() {
            out.push(o);
        }
        out.sort_by_key(|o| o.id);
        out
        // Drop shuts the (now idle) pool down.
    }
}

impl<T> Drop for EngineHandle<T> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
