//! The inter-run batching layer: a persistent worker pool consuming a job
//! queue and streaming outcomes back over a channel.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scratch_metrics::{Counter, Gauge, Histogram, Registry};
use scratch_system::SystemError;

use crate::default_workers;

/// Failure of a single job. A failing — even panicking — job never kills
/// the queue: its outcome carries the error and the workers move on.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The job panicked; the payload message was captured.
    Panicked(String),
    /// The simulator refused or aborted the run.
    System(SystemError),
    /// The job exceeded its cycle budget and was stopped by the engine's
    /// watchdog — a non-terminating (or merely runaway) kernel resolves to
    /// this outcome instead of hanging [`EngineHandle::join`] forever.
    Watchdog {
        /// The cycle budget that was exhausted.
        budget: u64,
    },
    /// The job was cancelled — either while still queued or mid-flight at
    /// a preemption boundary ([`PreemptiveHandle::cancel`]
    /// (crate::PreemptiveHandle::cancel)).
    Cancelled,
    /// Any other failure, stringified by the job itself.
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::System(e) => write!(f, "system: {e}"),
            JobError::Watchdog { budget } => {
                write!(f, "watchdog: job exceeded its {budget}-cycle budget")
            }
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemError> for JobError {
    fn from(e: SystemError) -> Self {
        JobError::System(e)
    }
}

/// When a job passed through the pool, stamped from the engine's logical
/// clock — a shared monotonic counter that ticks once per queue event, not
/// wall time, so stamps stay meaningful under any scheduler and never make
/// batch results depend on host speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Tick at which the job was submitted to the queue.
    pub enqueued: u64,
    /// Tick at which a worker picked the job up.
    pub started: u64,
    /// Tick at which the job's work returned (or its panic was caught).
    pub finished: u64,
}

impl JobTiming {
    /// Ticks the job sat queued before a worker picked it up.
    #[must_use]
    pub fn wait_ticks(&self) -> u64 {
        self.started - self.enqueued
    }

    /// Ticks between pickup and completion (queue events that happened
    /// while the job ran — a congestion measure, not a duration).
    #[must_use]
    pub fn run_ticks(&self) -> u64 {
        self.finished - self.started
    }
}

/// The completed result of one job: which job it was, what it produced
/// (or how it failed), and how long it ran on its worker.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// Submission-order id (0-based), assigned by [`EngineHandle::submit`].
    pub id: u64,
    /// The label the job was submitted under.
    pub label: String,
    /// What the job produced.
    pub result: Result<T, JobError>,
    /// Wall-clock time the job spent executing on its worker.
    pub wall: Duration,
    /// Logical-clock stamps of the job's path through the queue.
    pub timing: JobTiming,
}

struct Job<T> {
    id: u64,
    label: String,
    enqueued: u64,
    #[allow(clippy::type_complexity)]
    work: Box<dyn FnOnce() -> Result<T, JobError> + Send>,
}

struct State<T> {
    jobs: VecDeque<Job<T>>,
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    /// The pool's logical clock: ticks once per queue event (submit,
    /// pickup, completion). See [`JobTiming`].
    clock: AtomicU64,
    /// Submission-id counter (also the total number of jobs submitted).
    submitted: AtomicU64,
    /// Outcomes produced so far (including failures).
    completed: AtomicU64,
    /// Jobs a worker has picked up but not yet finished.
    in_flight: AtomicUsize,
    /// Registry handles; `None` when the engine's metrics plane is off.
    metrics: Option<EngineMetrics>,
}

impl<T> Shared<T> {
    /// Advance the logical clock and return the new stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// The pool's handles into its metrics registry.
struct EngineMetrics {
    submitted: Counter,
    completed: Counter,
    panicked: Counter,
    watchdog: Counter,
    queue_depth: Gauge,
    busy_workers: Gauge,
    wait_ticks: Histogram,
    run_ticks: Histogram,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            submitted: registry.counter("scratch_engine_jobs_submitted_total", "Jobs queued"),
            completed: registry.counter(
                "scratch_engine_jobs_completed_total",
                "Jobs whose outcome was produced (including failures)",
            ),
            panicked: registry.counter(
                "scratch_engine_jobs_panicked_total",
                "Jobs that panicked and were isolated by the pool",
            ),
            watchdog: registry.counter(
                "scratch_engine_watchdog_trips_total",
                "Jobs stopped by the cycle-budget watchdog",
            ),
            queue_depth: registry.gauge(
                "scratch_engine_queue_depth",
                "Jobs waiting in the queue right now",
            ),
            busy_workers: registry.gauge(
                "scratch_engine_busy_workers",
                "Workers currently executing a job",
            ),
            wait_ticks: registry.histogram(
                "scratch_engine_job_wait_ticks",
                "Logical-clock ticks jobs sat queued before pickup",
            ),
            run_ticks: registry.histogram(
                "scratch_engine_job_run_ticks",
                "Logical-clock ticks between job pickup and completion",
            ),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn worker_loop<T>(shared: &Shared<T>, results: &Sender<JobOutcome<T>>) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("engine state lock");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).expect("engine state lock");
            }
        };
        let started_tick = shared.tick();
        shared.in_flight.fetch_add(1, Ordering::Release);
        if let Some(m) = &shared.metrics {
            m.queue_depth.dec();
            m.busy_workers.inc();
            m.wait_ticks.observe(started_tick - job.enqueued);
        }
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job.work))
            .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(payload))));
        let finished_tick = shared.tick();
        if let Some(m) = &shared.metrics {
            m.busy_workers.dec();
            m.completed.inc();
            if matches!(result, Err(JobError::Panicked(_))) {
                m.panicked.inc();
            }
            if matches!(result, Err(JobError::Watchdog { .. })) {
                m.watchdog.inc();
            }
            m.run_ticks.observe(finished_tick - started_tick);
        }
        // A send failure means the handle (and its receiver) is gone —
        // nobody wants the outcome anymore.
        let _ = results.send(JobOutcome {
            id: job.id,
            label: job.label,
            result,
            wall: started.elapsed(),
            timing: JobTiming {
                enqueued: job.enqueued,
                started: started_tick,
                finished: finished_tick,
            },
        });
        // Ordered after the send: once `completed_count() == submitted_count()`
        // holds, every outcome has also been routed — the invariant the
        // serving layer's graceful drain waits on.
        shared.in_flight.fetch_sub(1, Ordering::Release);
        shared.completed.fetch_add(1, Ordering::Release);
    }
}

/// Engine configuration: how many OS worker threads the pool runs.
///
/// The engine provides *inter-run* parallelism — many independent
/// simulator runs at once. (Intra-run parallelism over a single dispatch's
/// CUs is the simulator's own `SystemConfig::with_workers` knob; both
/// layers are deterministic, so composing them never changes results.)
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    metrics: bool,
    registry: Option<Registry>,
    watchdog: u64,
}

/// Default per-job cycle budget: matches `CuConfig`'s default cycle limit,
/// so a [`KernelJob`](crate::KernelJob) that would previously run (nearly)
/// forever now resolves to [`JobError::Watchdog`] instead.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 4_000_000_000;

impl Engine {
    /// An engine with `workers` pool threads; `0` means one per available
    /// core ([`default_workers`]). The metrics plane is on, publishing to
    /// the process-global registry.
    #[must_use]
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: if workers == 0 {
                default_workers()
            } else {
                workers
            },
            metrics: true,
            registry: None,
            watchdog: DEFAULT_WATCHDOG_CYCLES,
        }
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Builder-style override of the per-job cycle-budget watchdog applied
    /// to [`KernelJob`](crate::KernelJob) batches: a job whose simulation
    /// exceeds `cycles` CU cycles resolves to [`JobError::Watchdog`]
    /// instead of blocking the pool (and [`EngineHandle::join`]) forever.
    ///
    /// The budget bounds *simulated* cycles, which is what runs away on an
    /// infinite-loop kernel; closures submitted directly through
    /// [`EngineHandle::submit`] manage their own budgets.
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Engine {
        self.watchdog = cycles.max(1);
        self
    }

    /// The per-job cycle budget.
    #[must_use]
    pub fn watchdog(&self) -> u64 {
        self.watchdog
    }

    /// Builder-style switch for the pool's metrics (queue-depth and
    /// busy-worker gauges, job counters, wait/run histograms). On by
    /// default.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Engine {
        self.metrics = metrics;
        self
    }

    /// Publish into `registry` instead of the process-global
    /// [`scratch_metrics::global`] registry (hermetic tests).
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Engine {
        self.registry = Some(registry);
        self
    }

    /// Spin up the worker pool and return the handle jobs are submitted
    /// through.
    #[must_use]
    pub fn start<T: Send + 'static>(&self) -> EngineHandle<T> {
        let metrics = self.metrics.then(|| {
            let registry = self
                .registry
                .clone()
                .unwrap_or_else(|| scratch_metrics::global().clone());
            EngineMetrics::new(&registry)
        });
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            clock: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            metrics,
        });
        let (tx, rx) = channel();
        let threads = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("scratch-engine-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    .expect("spawn engine worker")
            })
            .collect();
        EngineHandle {
            shared,
            threads,
            results: Mutex::new(rx),
            received: AtomicU64::new(0),
        }
    }

    /// Run a whole batch to completion and return the outcomes sorted by
    /// submission id — deterministic output order regardless of which
    /// worker finished which job first.
    pub fn run_batch<T, F, L>(&self, jobs: impl IntoIterator<Item = (L, F)>) -> Vec<JobOutcome<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
        L: Into<String>,
    {
        let handle = self.start();
        for (label, work) in jobs {
            handle.submit(label, work);
        }
        handle.join()
    }
}

impl Default for Engine {
    /// One worker per available core.
    fn default() -> Engine {
        Engine::new(0)
    }
}

/// A running engine pool: submit jobs, stream their outcomes, join.
///
/// Submission takes `&self` and the handle is `Sync`, so many threads can
/// push jobs into one shared pool concurrently (e.g. the serving layer's
/// connection handlers); ids still come out strictly in submission order.
///
/// Dropping the handle shuts the pool down gracefully — already-queued
/// jobs still run, their outcomes are discarded, and the worker threads
/// are joined.
pub struct EngineHandle<T> {
    shared: Arc<Shared<T>>,
    threads: Vec<JoinHandle<()>>,
    results: Mutex<Receiver<JobOutcome<T>>>,
    received: AtomicU64,
}

impl<T: Send + 'static> EngineHandle<T> {
    /// Queue a job that is re-dispatched up to `attempts` times until it
    /// succeeds (bounded retry): `work` receives the 0-based attempt
    /// number, and the outcome carries the first success or the last
    /// error. Panics are not retried — a panicking job is a bug, not a
    /// transient fault.
    pub fn submit_retrying<F>(&self, label: impl Into<String>, attempts: u32, work: F) -> u64
    where
        F: Fn(u32) -> Result<T, JobError> + Send + 'static,
    {
        self.submit(label, move || {
            let mut last = None;
            for attempt in 0..attempts.max(1) {
                match work(attempt) {
                    Ok(v) => return Ok(v),
                    Err(e) => last = Some(e),
                }
            }
            Err(last.expect("at least one attempt ran"))
        })
    }

    /// Queue a job; returns its submission id. Jobs start as soon as a
    /// worker is free.
    pub fn submit<F>(&self, label: impl Into<String>, work: F) -> u64
    where
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
    {
        let id = self.shared.submitted.fetch_add(1, Ordering::AcqRel);
        let enqueued = self.shared.tick();
        if let Some(m) = &self.shared.metrics {
            m.submitted.inc();
            m.queue_depth.inc();
        }
        {
            let mut st = self.shared.state.lock().expect("engine state lock");
            st.jobs.push_back(Job {
                id,
                label: label.into(),
                enqueued,
                work: Box::new(work),
            });
        }
        self.shared.available.notify_one();
        id
    }

    /// Receive the next completed outcome, in completion order, blocking
    /// until one is ready. Returns `None` when every submitted job's
    /// outcome has already been received.
    pub fn recv(&mut self) -> Option<JobOutcome<T>> {
        let rx = self.results.lock().expect("engine results lock");
        if self.received.load(Ordering::Acquire) >= self.submitted_count() {
            return None;
        }
        let outcome = rx.recv().expect("engine workers outlive the handle");
        self.received.fetch_add(1, Ordering::AcqRel);
        Some(outcome)
    }

    /// Receive the next completed outcome if one is already waiting,
    /// without blocking (and without contending — if another thread holds
    /// the receive side, this just reports nothing ready). Lets a caller
    /// that routes results elsewhere (e.g. a serving layer whose job
    /// closures answer clients directly) drain the outcome channel
    /// opportunistically so records never pile up.
    pub fn try_recv(&self) -> Option<JobOutcome<T>> {
        let rx = self.results.try_lock().ok()?;
        let outcome = rx.try_recv().ok()?;
        self.received.fetch_add(1, Ordering::AcqRel);
        Some(outcome)
    }

    /// Jobs submitted whose outcomes have not been received yet.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted_count() - self.received.load(Ordering::Acquire)
    }

    /// Total jobs submitted to the pool so far.
    #[must_use]
    pub fn submitted_count(&self) -> u64 {
        self.shared.submitted.load(Ordering::Acquire)
    }

    /// Outcomes the pool has produced so far (successes and failures
    /// alike). Once this equals [`submitted_count`](Self::submitted_count)
    /// the pool is idle and every outcome has been routed — the invariant
    /// a graceful drain waits on.
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Jobs sitting in the queue right now, not yet picked up by a worker.
    /// Together with [`in_flight`](Self::in_flight) this is the backlog an
    /// admission controller bounds.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .jobs
            .len()
    }

    /// Jobs a worker is executing right now.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Drain every outstanding outcome, shut the pool down, and return
    /// all collected outcomes sorted by submission id.
    #[must_use]
    pub fn join(mut self) -> Vec<JobOutcome<T>> {
        let mut out = Vec::with_capacity(usize::try_from(self.pending()).unwrap_or(0));
        while let Some(o) = self.recv() {
            out.push(o);
        }
        out.sort_by_key(|o| o.id);
        out
        // Drop shuts the (now idle) pool down.
    }
}

impl<T> Drop for EngineHandle<T> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
