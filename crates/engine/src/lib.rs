//! # scratch-engine
//!
//! Parallel execution engine for the SCRATCH simulators, with
//! deterministic batch scheduling. Two independent layers:
//!
//! * **Intra-run parallelism** lives in `scratch-system`: a dispatch's CU
//!   shards run on worker threads against epoch-batched copy-on-write
//!   memory views (`SystemConfig::with_workers`), committing in CU-index
//!   order — cycle counts are bit-identical to the serial scheduler.
//! * **Inter-run batching** lives here: an [`Engine`] worker pool consumes
//!   a job queue of independent simulator runs ([`KernelJob`] or arbitrary
//!   closures), isolates per-job panics into structured [`JobError`]s, and
//!   streams [`JobOutcome`]s back as they complete. Batch results are
//!   returned in submission order, so a sweep's output never depends on
//!   scheduling.
//!
//! Both layers use only `std::thread` — no external runtime.
//!
//! # Example: a three-preset batch sweep
//!
//! ```
//! use scratch_asm::KernelBuilder;
//! use scratch_engine::{run_kernel_jobs, KernelJob};
//! use scratch_system::{SystemConfig, SystemKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = KernelBuilder::new("noop");
//! b.vgprs(4).sgprs(24).workgroup_size(64);
//! b.endpgm()?;
//! let kernel = b.finish()?;
//!
//! let jobs = [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm]
//!     .into_iter()
//!     .map(|kind| {
//!         KernelJob::new(kind.label(), kernel.clone(), SystemConfig::preset(kind), [4, 1, 1])
//!     });
//! let outcomes = run_kernel_jobs(2, jobs);
//! assert_eq!(outcomes.len(), 3);
//! assert_eq!(outcomes[1].label, "DCD"); // submission order, not completion order
//! for o in &outcomes {
//!     let report = o.result.as_ref().expect("noop runs everywhere");
//!     assert!(report.cu_cycles > 0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod preempt;
mod queue;

pub use job::{run_kernel_jobs, KernelJob};
pub use preempt::{PreemptiveEngine, PreemptiveHandle, Slice};
pub use queue::{Engine, EngineHandle, JobError, JobOutcome, JobTiming, DEFAULT_WATCHDOG_CYCLES};

/// One worker per core the OS reports as available (the `--jobs` default
/// of the CLI tools).
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
