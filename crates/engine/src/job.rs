//! Declarative simulator-run jobs: the `(kernel, config, grid)` triple the
//! engine batches.

use scratch_asm::Kernel;
use scratch_system::{CuError, ExecMode, RunReport, System, SystemConfig, SystemError};

use crate::{Engine, JobError, JobOutcome};

/// One simulator run for the engine's batching layer: build a [`System`]
/// from `(config, kernel)`, allocate an output scratch buffer whose base
/// address becomes the first kernel argument, dispatch `grid`, and report.
///
/// This is the quickstart convention for kernels written against the
/// dispatcher ABI (`out[...]` indexed from argument word 0); applications
/// with richer setup submit their own closures via
/// [`EngineHandle::submit`](crate::EngineHandle::submit) instead.
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Display label carried through to the [`JobOutcome`].
    pub label: String,
    /// The kernel binary to run.
    pub kernel: Kernel,
    /// Full system configuration (preset, CU count, trim, workers, …).
    pub config: SystemConfig,
    /// Grid in workgroups, `[x, y, z]`.
    pub grid: [u32; 3],
    /// Bytes of output scratch to allocate (256-byte aligned, default
    /// 1 MiB); its base address is passed as the first argument word.
    pub scratch_bytes: u64,
    /// Additional argument words appended after the scratch base address.
    pub extra_args: Vec<u32>,
}

impl KernelJob {
    /// A job with the default 1 MiB scratch buffer and no extra arguments.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        kernel: Kernel,
        config: SystemConfig,
        grid: [u32; 3],
    ) -> KernelJob {
        KernelJob {
            label: label.into(),
            kernel,
            config,
            grid,
            scratch_bytes: 1 << 20,
            extra_args: Vec::new(),
        }
    }

    /// Run this job on the block-compiled fast tier ([`ExecMode::Fast`]):
    /// jobs that only need output words — sweeps, conformance batches,
    /// anything not reading cycle counts — skip the cycle scheduler
    /// entirely and report zero cycles.
    #[must_use]
    pub fn functional_only(mut self) -> KernelJob {
        self.config.exec = ExecMode::Fast;
        self
    }

    /// Execute the run synchronously on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (decode errors, trim violations,
    /// invalid CU counts, …).
    pub fn run(self) -> Result<RunReport, SystemError> {
        let mut sys = System::new(self.config, &self.kernel)?;
        let out = sys.alloc(self.scratch_bytes.max(4));
        let mut args = vec![out as u32];
        args.extend(&self.extra_args);
        sys.set_args(&args);
        sys.dispatch(self.grid)?;
        Ok(sys.report())
    }

    /// Execute the run under a cycle-budget watchdog: the per-CU cycle
    /// limit is capped at `budget`, and exhausting it resolves to
    /// [`JobError::Watchdog`] — a non-terminating kernel yields a typed
    /// outcome instead of hanging its worker (and the pool's `join`).
    ///
    /// # Errors
    ///
    /// [`JobError::Watchdog`] when the budget is exhausted; any other
    /// simulator failure as [`JobError::System`].
    pub fn run_with_budget(mut self, budget: u64) -> Result<RunReport, JobError> {
        let effective = self.config.cu.cycle_limit.min(budget.max(1));
        self.config.cu.cycle_limit = effective;
        self.run().map_err(|e| match e {
            SystemError::Cu(CuError::CycleLimit { .. }) => JobError::Watchdog { budget: effective },
            other => JobError::System(other),
        })
    }
}

impl Engine {
    /// Run a batch of [`KernelJob`]s under this engine's cycle-budget
    /// watchdog ([`Engine::with_watchdog`]). Outcomes come back in
    /// submission order; every job resolves — a runaway kernel yields
    /// [`JobError::Watchdog`] instead of blocking the pool.
    pub fn run_kernel_jobs(
        &self,
        jobs: impl IntoIterator<Item = KernelJob>,
    ) -> Vec<JobOutcome<RunReport>> {
        let budget = self.watchdog();
        self.run_batch(jobs.into_iter().map(move |job| {
            let label = job.label.clone();
            (label, move || job.run_with_budget(budget))
        }))
    }
}

/// Run a batch of [`KernelJob`]s across `workers` pool threads (`0` = one
/// per core). Outcomes come back in submission order, so a sweep's output
/// is deterministic no matter how the pool scheduled it. Jobs run under
/// the engine's default watchdog
/// ([`DEFAULT_WATCHDOG_CYCLES`](crate::DEFAULT_WATCHDOG_CYCLES)).
pub fn run_kernel_jobs(
    workers: usize,
    jobs: impl IntoIterator<Item = KernelJob>,
) -> Vec<JobOutcome<RunReport>> {
    Engine::new(workers).run_kernel_jobs(jobs)
}
