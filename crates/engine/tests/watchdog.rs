//! Regression: a kernel that never terminates must come back as
//! [`JobError::Watchdog`] instead of hanging [`EngineHandle::join`]
//! forever.

use scratch_asm::{Kernel, KernelBuilder};
use scratch_engine::{Engine, JobError, KernelJob, DEFAULT_WATCHDOG_CYCLES};
use scratch_isa::Opcode;
use scratch_system::{SystemConfig, SystemKind};

/// `spin: s_branch spin` — the minimal runaway kernel.
fn infinite_loop_kernel() -> Kernel {
    let mut b = KernelBuilder::new("spin");
    b.vgprs(8).sgprs(32).workgroup_size(64);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.branch(Opcode::SBranch, top);
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn config() -> SystemConfig {
    SystemConfig::preset(SystemKind::DcdPm).with_metrics(false)
}

#[test]
fn infinite_loop_trips_the_watchdog_instead_of_hanging_join() {
    let engine = Engine::new(2).with_watchdog(50_000);
    let jobs = vec![
        KernelJob::new("spin-0", infinite_loop_kernel(), config(), [1, 1, 1]),
        KernelJob::new("spin-1", infinite_loop_kernel(), config(), [1, 1, 1]),
    ];
    let outcomes = engine.run_kernel_jobs(jobs);
    assert_eq!(outcomes.len(), 2);
    for o in outcomes {
        match o.result {
            Err(JobError::Watchdog { budget }) => assert_eq!(budget, 50_000),
            other => panic!("{}: expected watchdog trip, got {other:?}", o.label),
        }
    }
}

#[test]
fn watchdog_budget_does_not_clip_well_behaved_jobs() {
    let mut b = KernelBuilder::new("quick");
    b.vgprs(8).sgprs(32).workgroup_size(64);
    b.endpgm().unwrap();
    let kernel = b.finish().unwrap();

    let engine = Engine::new(1).with_watchdog(50_000);
    let outcomes =
        engine.run_kernel_jobs(vec![KernelJob::new("quick", kernel, config(), [1, 1, 1])]);
    assert!(outcomes[0].result.is_ok(), "{:?}", outcomes[0].result);
}

#[test]
fn default_watchdog_is_the_cycle_limit_scale() {
    // The default budget must stay at the simulator's own cycle-limit
    // magnitude so it never masks CuError::CycleLimit semantics.
    assert_eq!(Engine::new(1).watchdog(), DEFAULT_WATCHDOG_CYCLES);
    assert_eq!(Engine::new(1).with_watchdog(0).watchdog(), 1);
}

#[test]
fn watchdog_error_formats_and_chains() {
    let e = JobError::Watchdog { budget: 123 };
    assert_eq!(e.to_string(), "watchdog: job exceeded its 123-cycle budget");
    let dyn_err: &dyn std::error::Error = &e;
    assert!(dyn_err.source().is_none());
}
