//! Concurrent-submission properties: many threads pushing into one shared
//! pool must preserve batch ordering and keep the backlog introspection
//! (`queue_depth` / `in_flight` / `submitted_count` / `completed_count`)
//! coherent — the contract the serving layer's admission control builds on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use scratch_engine::Engine;

/// Submitting from eight threads at once: every submission id is unique,
/// `join` returns outcomes sorted by id, and each outcome still carries
/// the payload it was submitted with.
#[test]
fn concurrent_submission_preserves_ordering() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25;

    let handle = Engine::new(4).with_metrics(false).start::<u64>();
    let barrier = Barrier::new(THREADS as usize);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = &handle;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    let id = handle.submit(format!("t{t}-{i}"), move || Ok(t * 1000 + i));
                    // The pool assigned a fresh id (strictly monotone ids
                    // mean no two threads ever share one).
                    assert!(id < THREADS * PER_THREAD);
                }
            });
        }
    });
    assert_eq!(handle.submitted_count(), THREADS * PER_THREAD);

    let outcomes = handle.join();
    assert_eq!(outcomes.len() as u64, THREADS * PER_THREAD);
    // Sorted by id, ids dense 0..N, no duplicates.
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.id, i as u64);
    }
    // Every submitted payload came back exactly once, attached to its
    // own label.
    let mut seen = vec![false; (THREADS * PER_THREAD) as usize];
    for o in &outcomes {
        let v = *o.result.as_ref().expect("job succeeds");
        let (t, i) = (v / 1000, v % 1000);
        assert_eq!(o.label, format!("t{t}-{i}"));
        let slot = (t * PER_THREAD + i) as usize;
        assert!(!seen[slot], "payload {v} delivered twice");
        seen[slot] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

/// `run_batch` ordering holds while a second thread floods the same
/// engine through its own handle — pools are independent, and each one's
/// batch comes back in its own submission order.
#[test]
fn run_batch_ordering_holds_under_concurrent_submission() {
    let engine = Engine::new(2).with_metrics(false);
    let noise = engine.start::<u64>();
    let stop = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let stop2 = Arc::clone(&stop);
        let noise_ref = &noise;
        s.spawn(move || {
            let mut i = 0u64;
            while stop2.load(Ordering::Acquire) == 0 {
                noise_ref.submit(format!("noise-{i}"), move || Ok(i));
                i += 1;
                std::thread::yield_now();
            }
        });

        for round in 0..10u64 {
            let outcomes = engine.run_batch((0..20u64).map(|i| {
                (format!("r{round}-{i}"), move || {
                    Ok::<u64, _>(round * 100 + i)
                })
            }));
            assert_eq!(outcomes.len(), 20);
            for (i, o) in outcomes.iter().enumerate() {
                assert_eq!(o.id, i as u64, "batch ids start at 0 per pool");
                assert_eq!(o.result, Ok(round * 100 + i as u64));
            }
        }
        stop.store(1, Ordering::Release);
    });

    let outcomes = noise.join();
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.id, i as u64);
        assert_eq!(o.result, Ok(i as u64));
    }
}

/// Backlog introspection: with the pool's only worker wedged on a gate,
/// queued jobs show up in `queue_depth`, the wedged one in `in_flight`,
/// and both drain back to zero once the gate opens.
#[test]
fn queue_depth_and_in_flight_track_the_backlog() {
    let handle = Engine::new(1).with_metrics(false).start::<()>();
    let gate = Arc::new(Barrier::new(2));

    let g = Arc::clone(&gate);
    handle.submit("wedged", move || {
        g.wait(); // held until the test releases it
        Ok(())
    });
    // Wait for the worker to pick the job up.
    while handle.in_flight() == 0 {
        std::thread::yield_now();
    }
    for i in 0..5 {
        handle.submit(format!("queued-{i}"), || Ok(()));
    }
    assert_eq!(handle.queue_depth(), 5);
    assert_eq!(handle.in_flight(), 1);
    assert_eq!(handle.submitted_count(), 6);
    assert_eq!(handle.completed_count(), 0);

    gate.wait();
    let outcomes = handle.join();
    assert_eq!(outcomes.len(), 6);
}
