//! Property test: the parallel dispatch scheduler is bit-identical to the
//! serial one — over random kernels, every memory preset, and 1–4 CUs,
//! the `RunReport` and the output memory never depend on the worker count.

use proptest::prelude::*;

use scratch_asm::{Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, ExecMode, FastStats, RunReport, System, SystemConfig, SystemKind};

const WG_SIZE: u32 = 64;

const ALU_OPS: [Opcode; 8] = [
    Opcode::VAddI32,
    Opcode::VSubI32,
    Opcode::VAndB32,
    Opcode::VOrB32,
    Opcode::VXorB32,
    Opcode::VLshlrevB32,
    Opcode::VLshrrevB32,
    Opcode::VMaxU32,
];

/// A random straight-line kernel: `v2 = in[gid]`, a random ALU chain over
/// v2..v6, then `out[gid] = v2`. Loads and stores exercise the timing
/// model's global/prefetch paths; the chain varies the issue pattern.
fn build_kernel(steps: &[(u8, u8, i8, u8)]) -> Kernel {
    let mut b = KernelBuilder::new("random");
    b.vgprs(8).sgprs(32).workgroup_size(WG_SIZE);
    // s20 = in, s21 = out.
    b.smrd(
        Opcode::SBufferLoadDwordx2,
        Operand::Sgpr(20),
        abi::CONST_BUF1,
        SmrdOffset::Imm(0),
    )
    .unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    // v1 = (wg_id * wg_size + tid) * 4.
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_X),
        Operand::Literal(WG_SIZE),
    )
    .unwrap();
    b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), abi::TID_X)
        .unwrap();
    b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 1)
        .unwrap();
    b.mubuf(
        Opcode::BufferLoadDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(20),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    for &(op, dst, konst, src) in steps {
        let op = ALU_OPS[usize::from(op) % ALU_OPS.len()];
        let dst = 2 + dst % 5;
        let src = 2 + src % 5;
        b.vop2(op, dst, Operand::IntConst(konst), src).unwrap();
    }
    b.mubuf(
        Opcode::BufferStoreDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(21),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn run(
    kernel: &Kernel,
    kind: SystemKind,
    cus: u8,
    workers: usize,
    wgs: u32,
) -> (Vec<u32>, RunReport) {
    let (words, report, _) = run_exec(kernel, kind, cus, workers, wgs, ExecMode::Cycle);
    (words, report)
}

fn run_exec(
    kernel: &Kernel,
    kind: SystemKind,
    cus: u8,
    workers: usize,
    wgs: u32,
    exec: ExecMode,
) -> (Vec<u32>, RunReport, Option<FastStats>) {
    let n = wgs * WG_SIZE;
    let config = SystemConfig::preset(kind)
        .with_cus(cus)
        .unwrap()
        .with_workers(workers)
        .with_exec(exec);
    let mut sys = System::new(config, kernel).unwrap();
    let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let a_in = sys.alloc_words(&input);
    let a_out = sys.alloc(u64::from(n) * 4);
    sys.set_args(&[a_in as u32, a_out as u32]);
    sys.dispatch([wgs, 1, 1]).unwrap();
    let stats = sys.fast_stats(0).cloned();
    (sys.read_words(a_out, n as usize), sys.report(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_runs_are_bit_identical_to_serial(
        steps in prop::collection::vec(
            (any::<u8>(), 0u8..5, -16i8..=16, 0u8..5),
            0..10,
        ),
        cus in 1u8..=4,
        wgs in 1u32..=8,
    ) {
        let kernel = build_kernel(&steps);
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            let (out_serial, report_serial) = run(&kernel, kind, cus, 1, wgs);
            let (out_parallel, report_parallel) = run(&kernel, kind, cus, 4, wgs);
            prop_assert_eq!(
                &out_serial,
                &out_parallel,
                "{:?}: output memory diverged (cus={}, wgs={})",
                kind,
                cus,
                wgs
            );
            prop_assert_eq!(
                &report_serial,
                &report_parallel,
                "{:?}: RunReport diverged (cus={}, wgs={})",
                kind,
                cus,
                wgs
            );
        }
    }

    /// The block-compiled fast tier is scheduler-independent too: under
    /// `--jobs 4` it is bit-identical to serial (words, report, and
    /// per-block dispatch counts), and its output words match the cycle
    /// pipeline's.
    #[test]
    fn fast_tier_is_scheduler_independent_and_matches_cycle(
        steps in prop::collection::vec(
            (any::<u8>(), 0u8..5, -16i8..=16, 0u8..5),
            0..10,
        ),
        cus in 1u8..=4,
        wgs in 1u32..=8,
    ) {
        let kernel = build_kernel(&steps);
        let kind = SystemKind::DcdPm;
        let (fast_serial, rep_serial, stats_serial) =
            run_exec(&kernel, kind, cus, 1, wgs, ExecMode::Fast);
        let (fast_parallel, rep_parallel, stats_parallel) =
            run_exec(&kernel, kind, cus, 4, wgs, ExecMode::Fast);
        prop_assert_eq!(
            &fast_serial, &fast_parallel,
            "fast tier output diverged across schedulers (cus={}, wgs={})", cus, wgs
        );
        prop_assert_eq!(&rep_serial, &rep_parallel, "fast tier RunReport diverged");
        prop_assert_eq!(
            &stats_serial, &stats_parallel,
            "fast tier block-dispatch counts diverged across schedulers"
        );
        let (cycle, _, _) = run_exec(&kernel, kind, cus, 1, wgs, ExecMode::Cycle);
        prop_assert_eq!(&fast_serial, &cycle, "fast tier diverged from the cycle pipeline");
    }
}

/// Back-to-back dispatches (epochs chain through committed state) stay
/// bit-identical too: epoch N+1's snapshot is epoch N's committed result.
#[test]
fn chained_dispatches_stay_identical() {
    let kernel = build_kernel(&[(0, 0, 3, 0), (5, 1, 2, 0)]);
    for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
        let run_twice = |workers: usize| {
            let config = SystemConfig::preset(kind)
                .with_cus(3)
                .unwrap()
                .with_workers(workers);
            let mut sys = System::new(config, &kernel).unwrap();
            let input: Vec<u32> = (0..512).collect();
            let a_in = sys.alloc_words(&input);
            let a_out = sys.alloc(512 * 4);
            sys.set_args(&[a_in as u32, a_out as u32]);
            sys.dispatch([8, 1, 1]).unwrap();
            sys.dispatch([8, 1, 1]).unwrap();
            (sys.read_words(a_out, 512), sys.report())
        };
        assert_eq!(run_twice(1), run_twice(4), "{kind:?} chained dispatches");
    }
}
