//! Engine queue semantics: panic isolation, deterministic batch ordering,
//! and streaming outcomes.

use std::time::Duration;

use scratch_asm::KernelBuilder;
use scratch_engine::{default_workers, Engine, JobError, KernelJob};
use scratch_metrics::Registry;
use scratch_system::{SystemConfig, SystemError, SystemKind};

fn noop_kernel() -> scratch_asm::Kernel {
    let mut b = KernelBuilder::new("noop");
    b.vgprs(4).sgprs(24).workgroup_size(64);
    b.endpgm().unwrap();
    b.finish().unwrap()
}

#[test]
fn a_panicking_job_never_kills_the_queue() {
    let mut handle = Engine::new(2).start::<u32>();
    for i in 0..5u32 {
        handle.submit(format!("job-{i}"), move || {
            if i == 2 {
                panic!("poisoned job {i}");
            }
            Ok(i * 10)
        });
    }
    // The queue survives the panic: jobs submitted afterwards still run.
    handle.submit("after-the-panic", || Ok(999));
    let mut outcomes = Vec::new();
    while let Some(o) = handle.recv() {
        outcomes.push(o);
    }
    outcomes.sort_by_key(|o| o.id);
    assert_eq!(outcomes.len(), 6);
    match &outcomes[2].result {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("poisoned job 2"), "{msg}"),
        other => panic!("expected a structured panic error, got {other:?}"),
    }
    assert_eq!(outcomes[0].result, Ok(0));
    assert_eq!(outcomes[4].result, Ok(40));
    assert_eq!(outcomes[5].result, Ok(999));
}

#[test]
fn batch_outcomes_come_back_in_submission_order() {
    // Reverse-staggered sleeps: completion order is the opposite of
    // submission order, yet run_batch returns submission order.
    let outcomes = Engine::new(4).run_batch((0..4u64).map(|i| {
        (format!("sleep-{i}"), move || {
            std::thread::sleep(Duration::from_millis((4 - i) * 20));
            Ok(i)
        })
    }));
    let ids: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3]);
    let labels: Vec<&str> = outcomes.iter().map(|o| o.label.as_str()).collect();
    assert_eq!(labels, vec!["sleep-0", "sleep-1", "sleep-2", "sleep-3"]);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.result, Ok(i as u64));
    }
}

#[test]
fn outcomes_stream_as_jobs_complete() {
    let mut handle = Engine::new(1).start::<&'static str>();
    assert_eq!(handle.pending(), 0);
    assert!(handle.recv().is_none(), "no jobs, no blocking");
    handle.submit("first", || Ok("a"));
    handle.submit("second", || Ok("b"));
    assert_eq!(handle.pending(), 2);
    // One worker runs the queue FIFO, so streaming order is deterministic
    // here: results arrive one at a time as each job finishes.
    let first = handle.recv().expect("first outcome streams out");
    assert_eq!(first.result, Ok("a"));
    assert_eq!(handle.pending(), 1);
    let second = handle.recv().expect("second outcome streams out");
    assert_eq!(second.result, Ok("b"));
    assert_eq!(handle.pending(), 0);
    assert!(handle.recv().is_none(), "drained handles return None");
}

#[test]
fn kernel_jobs_surface_system_errors_as_job_errors() {
    let mut config = SystemConfig::preset(SystemKind::DcdPm);
    config.cus = 0; // unbackable CU count, rejected at System::new
    let job = KernelJob::new("bad-config", noop_kernel(), config, [1, 1, 1]);
    let outcomes = scratch_engine::run_kernel_jobs(2, [job]);
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0].result {
        Err(JobError::System(SystemError::InvalidCuCount { requested: 0, .. })) => {}
        other => panic!("expected InvalidCuCount, got {other:?}"),
    }
}

#[test]
fn zero_workers_means_one_per_core() {
    let engine = Engine::new(0);
    assert_eq!(engine.workers(), default_workers());
    assert!(engine.workers() >= 1);
    // And the pool actually runs jobs.
    let outcomes = engine.run_batch([("probe", || Ok(7u8))]);
    assert_eq!(outcomes[0].result, Ok(7));
}

#[test]
fn job_timing_stamps_are_ordered_and_distinct() {
    // One worker, FIFO queue: every job's stamps are strictly ordered on
    // the pool's logical clock, and the second job is enqueued before the
    // first finishes (it waits in the queue).
    let outcomes = Engine::new(1).run_batch((0..3u64).map(|i| (format!("t-{i}"), move || Ok(i))));
    for o in &outcomes {
        assert!(o.timing.enqueued < o.timing.started, "{:?}", o.timing);
        assert!(o.timing.started < o.timing.finished, "{:?}", o.timing);
        assert_eq!(
            o.timing.wait_ticks() + o.timing.run_ticks(),
            o.timing.finished - o.timing.enqueued
        );
    }
    // FIFO on one worker: pickup order matches submission order.
    assert!(outcomes[0].timing.started < outcomes[1].timing.started);
    assert!(outcomes[1].timing.started < outcomes[2].timing.started);
    // Jobs 1 and 2 were queued while job 0 ran, so they waited.
    assert!(outcomes[2].timing.wait_ticks() > 0);
}

#[test]
fn pool_metrics_count_jobs_and_panics() {
    let registry = Registry::new();
    let outcomes = Engine::new(2)
        .with_registry(registry.clone())
        .run_batch((0..5u32).map(|i| {
            (format!("m-{i}"), move || {
                if i == 3 {
                    panic!("boom {i}");
                }
                Ok(i)
            })
        }));
    assert_eq!(outcomes.len(), 5);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("scratch_engine_jobs_submitted_total", &[]),
        Some(5)
    );
    assert_eq!(
        snap.counter("scratch_engine_jobs_completed_total", &[]),
        Some(5)
    );
    assert_eq!(
        snap.counter("scratch_engine_jobs_panicked_total", &[]),
        Some(1)
    );
    // The batch drained: both gauges are back to zero.
    assert_eq!(snap.gauge("scratch_engine_queue_depth", &[]), Some(0.0));
    assert_eq!(snap.gauge("scratch_engine_busy_workers", &[]), Some(0.0));
    let wait = snap
        .histogram("scratch_engine_job_wait_ticks", &[])
        .expect("wait histogram registered");
    assert_eq!(wait.count(), 5);
}

#[test]
fn metrics_off_registers_nothing() {
    let registry = Registry::new();
    let outcomes = Engine::new(1)
        .with_registry(registry.clone())
        .with_metrics(false)
        .run_batch([("quiet", || Ok(1u8))]);
    assert_eq!(outcomes[0].result, Ok(1));
    assert_eq!(registry.snapshot().families.len(), 0);
}

#[test]
fn dropping_a_handle_with_queued_jobs_is_graceful() {
    let handle = Engine::new(1).start::<u8>();
    for _ in 0..8 {
        handle.submit("queued", || {
            std::thread::sleep(Duration::from_millis(5));
            Ok(1)
        });
    }
    drop(handle); // must not hang or panic; queued jobs drain or are dropped
}
