//! # scratch-fpga
//!
//! Resource, power and parallelism model of the SCRATCH FPGA implementation
//! (AlphaData ADM-PCIE-7V3, Xilinx Virtex-7 XC7VX690T, Vivado 2015.1).
//!
//! There is no synthesis tool here: instead, an *additive component model*
//! maps each architectural block of the MIAOW2.0 compute unit — fetch,
//! wavepool, issue, register files, decode entries, and the per-category
//! sub-units of the SALU/SIMD/SIMF/LSU — to slice flip-flops, LUTs, DSP48
//! slices and BRAM36 blocks. The model is calibrated against the paper's
//! published synthesis results:
//!
//! * baseline (DCD+PM) utilisation ≈ 213 k FF / 123 k LUT / 198 DSP /
//!   1,151 BRAM (Fig. 6, left);
//! * execute units hold the dominant share of CU area and power, with the
//!   SIMF ≈ 2× the SIMD (MIAOW TACO'15 breakdown cited in §3.2);
//! * fetch/issue stay below ~6 % of area and ~11 % of power;
//! * board power 3.59 W (Original) → 3.66 W (DCD) → 3.95 W (DCD+PM).
//!
//! Because trimming decisions and the freed-area parallelism allocation
//! depend only on *relative* resource deltas, this calibrated additive
//! model preserves the paper's who-saves-what behaviour (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod model;
mod power;
mod resources;

pub use allocator::{
    allocate_multicore, allocate_multicore_bits, allocate_multithread, cu_capacity_bound,
    ParallelPlan,
};
pub use model::{cu_resources, subunit, system_resources, CuShape, SubUnit, SystemProfile};
pub use power::{power, PowerBreakdown};
pub use resources::{Device, Resources};
