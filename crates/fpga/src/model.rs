//! The additive component resource model of the MIAOW2.0 CU and the
//! surrounding FPGA base system.

use serde::{Deserialize, Serialize};

use scratch_isa::{Category, Format, FuncUnit, Opcode};

use crate::Resources;

/// A trimmable hardware granule of the compute unit.
///
/// The trimming tool removes decode entries per instruction and, within
/// each functional unit, the per-category sub-unit once no retained
/// instruction needs it; an entire FU disappears when none of its
/// sub-units survive (paper Algorithm 1, second step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubUnit {
    /// An ALU sub-unit, identified by the executing unit and the
    /// computational category it implements.
    Alu(FuncUnit, Category),
    /// An LSU datapath, identified by the memory-instruction format.
    LsuPath(Format),
}

/// The sub-unit that implements `op`.
#[must_use]
pub fn subunit(op: Opcode) -> SubUnit {
    if op.unit() == FuncUnit::Lsu {
        SubUnit::LsuPath(op.format())
    } else {
        SubUnit::Alu(op.unit(), op.category())
    }
}

/// Resource cost of one decode-table entry (per retained instruction).
fn decode_entry_cost() -> Resources {
    Resources::new(58, 40, 0, 0)
}

/// Base (irreducible) cost of a functional unit, paid while any of its
/// sub-units survives.
fn fu_base_cost(unit: FuncUnit) -> Resources {
    match unit {
        FuncUnit::Salu => Resources::new(2_200, 1_300, 2, 0),
        FuncUnit::Simd => Resources::new(4_200, 2_300, 0, 0),
        FuncUnit::Simf => Resources::new(5_200, 2_900, 0, 0),
        FuncUnit::Lsu => Resources::new(6_000, 3_500, 4, 0),
        FuncUnit::Branch => Resources::new(1_600, 1_100, 0, 0),
    }
}

/// Resource cost of a sub-unit.
#[allow(clippy::match_same_arms)]
fn subunit_cost(sub: SubUnit) -> Resources {
    use Category as C;
    use FuncUnit as U;
    match sub {
        // Scalar ALU sub-units.
        SubUnit::Alu(U::Salu, C::Mov) => Resources::new(350, 220, 0, 0),
        SubUnit::Alu(U::Salu, C::Logic) => Resources::new(950, 620, 0, 0),
        SubUnit::Alu(U::Salu, C::Shift) => Resources::new(720, 460, 0, 0),
        SubUnit::Alu(U::Salu, C::Bitwise) => Resources::new(820, 520, 0, 0),
        SubUnit::Alu(U::Salu, C::Convert) => Resources::new(320, 200, 0, 0),
        SubUnit::Alu(U::Salu, C::Control) => Resources::new(450, 280, 0, 0),
        SubUnit::Alu(U::Salu, C::Add) => Resources::new(1_600, 950, 0, 0),
        SubUnit::Alu(U::Salu, C::Mul) => Resources::new(1_300, 750, 2, 0),
        SubUnit::Alu(U::Salu, _) => Resources::new(400, 250, 0, 0),
        // Branch & message path (not trimmable in practice — SOPP control).
        SubUnit::Alu(U::Branch, _) => Resources::new(400, 260, 0, 0),
        // Integer vector sub-units (16-lane datapath).
        SubUnit::Alu(U::Simd, C::Mov) => Resources::new(1_700, 900, 0, 0),
        SubUnit::Alu(U::Simd, C::Logic) => Resources::new(3_200, 1_700, 0, 0),
        SubUnit::Alu(U::Simd, C::Shift) => Resources::new(3_800, 2_000, 0, 0),
        SubUnit::Alu(U::Simd, C::Bitwise) => Resources::new(2_700, 1_400, 0, 0),
        SubUnit::Alu(U::Simd, C::Control) => Resources::new(300, 180, 0, 0),
        SubUnit::Alu(U::Simd, C::Add) => Resources::new(6_800, 3_600, 8, 0),
        SubUnit::Alu(U::Simd, C::Mul) => Resources::new(10_200, 5_400, 48, 0),
        SubUnit::Alu(U::Simd, _) => Resources::new(1_000, 550, 0, 0),
        // Floating-point vector sub-units (16-lane datapath; the costliest
        // blocks in the design — the SIMF totals ~2x the SIMD).
        SubUnit::Alu(U::Simf, C::Convert) => Resources::new(6_800, 3_600, 8, 0),
        SubUnit::Alu(U::Simf, C::Add) => Resources::new(15_500, 8_300, 32, 0),
        SubUnit::Alu(U::Simf, C::Mul) => Resources::new(18_000, 9_700, 56, 0),
        SubUnit::Alu(U::Simf, C::Div) => Resources::new(13_500, 7_200, 16, 0),
        SubUnit::Alu(U::Simf, C::Trans) => Resources::new(14_500, 7_800, 16, 0),
        SubUnit::Alu(U::Simf, _) => Resources::new(2_000, 1_100, 0, 0),
        // LSU datapaths per memory-instruction format.
        SubUnit::LsuPath(Format::Smrd) => Resources::new(1_600, 950, 0, 0),
        SubUnit::LsuPath(Format::Ds) => Resources::new(4_200, 2_300, 0, 0),
        SubUnit::LsuPath(Format::Mubuf) => Resources::new(5_200, 2_900, 0, 0),
        SubUnit::LsuPath(Format::Mtbuf) => Resources::new(4_700, 2_600, 0, 0),
        SubUnit::LsuPath(_) => Resources::new(1_000, 600, 0, 0),
        // The LSU is modelled through `LsuPath`; no `Alu(Lsu, _)` granule
        // is ever produced by `subunit`.
        SubUnit::Alu(U::Lsu, _) => Resources::ZERO,
    }
}

/// Fixed CU blocks the trimming tool never touches (fetch and issue have
/// generic functionality and limited area/power impact — §3.2).
fn cu_fixed_cost() -> Resources {
    // Fetch + wavepool + issue/scheduler + branch&message + register files
    // + decode base logic.
    Resources::new(3_000, 2_000, 0, 0)     // fetch
        + Resources::new(4_200, 2_500, 0, 4) // wavepool
        + Resources::new(6_200, 4_600, 0, 0) // issue + scoreboards
        + fu_base_cost(FuncUnit::Branch)
        + Resources::new(6_000, 5_000, 0, 60) // SGPR/VGPR register files
        + Resources::new(2_100, 1_500, 0, 0) // decode base
}

/// Architectural shape of one compute unit: which instructions it retains,
/// how many vector units it instantiates, and its vector datapath width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuShape {
    /// Retained instructions (the full ISA for untrimmed CUs).
    pub kept: Vec<Opcode>,
    /// Integer VALU count.
    pub int_valus: u8,
    /// Floating-point VALU count.
    pub fp_valus: u8,
    /// Vector datapath width in bits (32 by default; the paper's INT8 NIN
    /// variant shortens it to 8, shrinking the vector sub-units — §4.2).
    pub datapath_bits: u8,
}

impl CuShape {
    /// An untrimmed CU with the given vector-unit counts.
    #[must_use]
    pub fn full(int_valus: u8, fp_valus: u8) -> CuShape {
        CuShape {
            kept: Opcode::ALL.to_vec(),
            int_valus,
            fp_valus,
            datapath_bits: 32,
        }
    }

    /// Builder-style override of the datapath width.
    #[must_use]
    pub fn with_datapath_bits(mut self, bits: u8) -> CuShape {
        self.datapath_bits = bits;
        self
    }

    /// `true` if any retained instruction executes on `unit`.
    #[must_use]
    pub fn uses_unit(&self, unit: FuncUnit) -> bool {
        self.kept.iter().any(|o| o.unit() == unit)
    }
}

/// Resources of one compute unit with the given shape.
#[must_use]
pub fn cu_resources(shape: &CuShape) -> Resources {
    let mut total = cu_fixed_cost();

    // Decode entries: one per retained instruction.
    total += decode_entry_cost() * shape.kept.len() as u64;

    // Survived sub-units.
    let mut subs: Vec<SubUnit> = shape.kept.iter().map(|&o| subunit(o)).collect();
    // FPU-core granularity: the fused floating-point datapath implements
    // addition and multiplication in one hard block, so retaining *any*
    // SIMF functionality keeps at least the add/mul core. (This is why the
    // paper's FP designs trim less and fit only two CUs.)
    if subs
        .iter()
        .any(|s| matches!(s, SubUnit::Alu(FuncUnit::Simf, _)))
    {
        subs.push(SubUnit::Alu(FuncUnit::Simf, Category::Add));
        subs.push(SubUnit::Alu(FuncUnit::Simf, Category::Mul));
    }
    subs.sort_unstable();
    subs.dedup();

    let unit_multiplier = |unit: FuncUnit| -> u64 {
        match unit {
            FuncUnit::Simd => u64::from(shape.int_valus.max(u8::from(false))),
            FuncUnit::Simf => u64::from(shape.fp_valus),
            _ => 1,
        }
    };

    // FU bases for units with any survivor.
    for unit in FuncUnit::ALL {
        let used = subs.iter().any(|s| match s {
            SubUnit::Alu(u, _) => *u == unit,
            SubUnit::LsuPath(_) => unit == FuncUnit::Lsu,
        });
        if used && unit != FuncUnit::Branch {
            let mult = unit_multiplier(unit).max(1);
            total += fu_base_cost(unit) * mult;
        }
    }

    // Vector-datapath bit-width scaling: arithmetic area grows roughly
    // linearly with operand width, so an 8-bit datapath keeps ~1/4 of the
    // 32-bit vector sub-unit cost (registers/control keep a floor share).
    let scale = |r: Resources| -> Resources {
        let bits = u64::from(shape.datapath_bits.clamp(8, 32));
        Resources {
            ff: r.ff * (bits + 8) / 40,
            lut: r.lut * (bits + 8) / 40,
            dsp: r.dsp * bits / 32,
            bram: r.bram,
        }
    };

    for sub in subs {
        let (mult, vector) = match sub {
            SubUnit::Alu(u @ (FuncUnit::Simd | FuncUnit::Simf), _) => {
                (unit_multiplier(u).max(1), true)
            }
            _ => (1, false),
        };
        let cost = subunit_cost(sub) * mult;
        total += if vector { scale(cost) } else { cost };
    }
    total
}

/// Which base-system features are present (maps from the system kinds of
/// `scratch-system` without a crate dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Dual clock domain (memory side at 200 MHz).
    pub dual_clock: bool,
    /// In-fabric prefetch memory present.
    pub prefetch: bool,
}

impl SystemProfile {
    /// The original MIAOW system.
    pub const ORIGINAL: SystemProfile = SystemProfile {
        dual_clock: false,
        prefetch: false,
    };
    /// Dual clock domain.
    pub const DCD: SystemProfile = SystemProfile {
        dual_clock: true,
        prefetch: false,
    };
    /// Dual clock domain + prefetch memory (the paper's baseline).
    pub const DCD_PM: SystemProfile = SystemProfile {
        dual_clock: true,
        prefetch: true,
    };
}

/// Base-system overhead outside the CUs: MicroBlaze, MIG memory controller,
/// AXI interconnect, timer, debug module and instruction memory.
fn overhead_cost(profile: SystemProfile) -> Resources {
    let mut r = Resources::new(30_500, 20_400, 6, 150);
    // Instruction memory.
    r += Resources::new(500, 400, 0, 9);
    if profile.dual_clock {
        // Clock-domain crossing FIFOs.
        r += Resources::new(800, 500, 0, 0);
    }
    r
}

/// Prefetch-memory cost: the design methodology distributes most otherwise
/// unused BRAM blocks to the CUs' prefetch buffers (§4.1.1), so the block
/// count is fixed per system, not per CU.
fn prefetch_cost() -> Resources {
    Resources::new(1_100, 850, 0, 928)
}

/// Total system resources for `cus` identical compute units under
/// `profile`.
#[must_use]
pub fn system_resources(profile: SystemProfile, shape: &CuShape, cus: u8) -> Resources {
    let mut total = overhead_cost(profile);
    if profile.prefetch {
        total += prefetch_cost();
    }
    total += cu_resources(shape) * u64::from(cus.max(1));
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    #[test]
    fn baseline_matches_paper_figure6() {
        // DCD+PM with one full CU must land near the paper's reported
        // utilisation: ~213 k FF, ~123 k LUT, 198 DSP, 1,151 BRAM.
        let r = system_resources(SystemProfile::DCD_PM, &CuShape::full(1, 1), 1);
        assert!(
            (150_000..=250_000).contains(&r.ff),
            "FF {} out of calibration band",
            r.ff
        );
        assert!(
            (90_000..=140_000).contains(&r.lut),
            "LUT {} out of calibration band",
            r.lut
        );
        assert!((150..=230).contains(&r.dsp), "DSP {}", r.dsp);
        assert_eq!(r.bram, 1_151, "BRAM calibration is exact");
        assert!(r.fits_in(&Device::XC7VX690T.capacity));
    }

    #[test]
    fn original_has_few_brams() {
        let r = system_resources(SystemProfile::ORIGINAL, &CuShape::full(1, 1), 1);
        assert_eq!(
            r.bram, 223,
            "matches the paper's original-design BRAM count"
        );
    }

    #[test]
    fn simf_is_roughly_twice_simd() {
        let int_only: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.unit() == FuncUnit::Simd)
            .collect();
        let fp_only: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.unit() == FuncUnit::Simf)
            .collect();
        let simd: Resources = int_only
            .iter()
            .map(|&o| subunit(o))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(subunit_cost)
            .fold(fu_base_cost(FuncUnit::Simd), |a, b| a + b);
        let simf: Resources = fp_only
            .iter()
            .map(|&o| subunit(o))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(subunit_cost)
            .fold(fu_base_cost(FuncUnit::Simf), |a, b| a + b);
        let ratio = simf.ff as f64 / simd.ff as f64;
        assert!(
            (1.7..=2.6).contains(&ratio),
            "SIMF/SIMD FF ratio {ratio:.2} should be ~2x (paper §3.2)"
        );
    }

    #[test]
    fn fetch_issue_share_is_small() {
        let full = cu_resources(&CuShape::full(1, 1));
        let fixed = cu_fixed_cost();
        let share = fixed.ff as f64 / full.ff as f64;
        assert!(share < 0.25, "fixed-logic share {share:.2} too large");
    }

    #[test]
    fn trimming_integer_kernel_removes_simf() {
        let int_kernel: Vec<Opcode> = vec![
            Opcode::SMovB32,
            Opcode::SMulI32,
            Opcode::VAddI32,
            Opcode::VMulLoI32,
            Opcode::VLshlrevB32,
            Opcode::BufferLoadDword,
            Opcode::BufferStoreDword,
            Opcode::SWaitcnt,
            Opcode::SEndpgm,
        ];
        let trimmed = CuShape {
            kept: int_kernel,
            int_valus: 1,
            fp_valus: 0,
            datapath_bits: 32,
        };
        let full = cu_resources(&CuShape::full(1, 1));
        let small = cu_resources(&trimmed);
        let savings = 1.0 - small.ff as f64 / full.ff as f64;
        assert!(
            savings > 0.5,
            "integer-only trim should free >50% of CU flip-flops, got {savings:.2}"
        );
    }

    #[test]
    fn valu_replication_scales_vector_units_only() {
        let one = cu_resources(&CuShape::full(1, 0));
        let four = cu_resources(&CuShape::full(4, 0));
        let delta = four - one;
        // Three extra SIMD units, nothing else.
        assert!(delta.ff > 0);
        let five = cu_resources(&CuShape::full(5, 0));
        assert_eq!((five - four).ff, (four - one).ff / 3);
    }

    #[test]
    fn subunit_mapping() {
        assert_eq!(
            subunit(Opcode::VAddF32),
            SubUnit::Alu(FuncUnit::Simf, Category::Add)
        );
        assert_eq!(
            subunit(Opcode::BufferLoadDword),
            SubUnit::LsuPath(Format::Mubuf)
        );
        assert_eq!(subunit(Opcode::DsReadB32), SubUnit::LsuPath(Format::Ds));
    }

    #[test]
    fn multicore_scales_linearly_in_cu_resources() {
        let shape = CuShape::full(1, 1);
        let one = system_resources(SystemProfile::DCD_PM, &shape, 1);
        let three = system_resources(SystemProfile::DCD_PM, &shape, 3);
        assert_eq!(three.ff - one.ff, 2 * cu_resources(&shape).ff);
        // Prefetch + overhead BRAM are paid once.
        assert_eq!(three.bram - one.bram, 2 * cu_resources(&shape).bram);
    }
}
