//! The board-level power model.

use serde::{Deserialize, Serialize};

use crate::model::{cu_resources, CuShape, SystemProfile};
use crate::{system_resources, Resources};

/// Static + dynamic power of a system configuration, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Static (leakage) power, grows mildly with occupied area.
    pub static_w: f64,
    /// Dynamic power of the base system (MicroBlaze, MIG, DDR3 interface).
    pub overhead_dynamic_w: f64,
    /// Dynamic power of the compute units.
    pub cu_dynamic_w: f64,
}

impl PowerBreakdown {
    /// Total dynamic power.
    #[must_use]
    pub fn dynamic_w(&self) -> f64 {
        self.overhead_dynamic_w + self.cu_dynamic_w
    }

    /// Total board power.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w()
    }
}

/// Dynamic power of a resource bundle at the 50 MHz CU clock, in mW.
///
/// Coefficients calibrated so a full CU draws ≈1.3 W and a trimmed
/// integer-only CU ≈0.5–0.8 W (the deltas behind Fig. 6's per-benchmark
/// power rows and the multi-CU totals of ~4.5–5.6 W).
fn dynamic_mw(r: &Resources) -> f64 {
    r.ff as f64 * 0.005 + r.lut as f64 * 0.003 + r.dsp as f64 * 1.0 + r.bram as f64 * 0.15
}

/// Power of a system with `cus` compute units of the given `shape`.
#[must_use]
pub fn power(profile: SystemProfile, shape: &CuShape, cus: u8) -> PowerBreakdown {
    let total = system_resources(profile, shape, cus);
    let cu = cu_resources(shape) * u64::from(cus.max(1));
    let overhead = total.saturating_sub(&cu);

    // Static power: base leakage plus a mild area term (matches 0.39 W
    // original → 0.46 W with the prefetch BRAMs powered).
    let static_w = 0.320 + total.ff as f64 * 2.0e-7 + total.bram as f64 * 1.0e-4;

    // Base-system dynamic power: MicroBlaze + MIG + DDR3 PHY. The DCD runs
    // the memory side at 200 MHz (paper: ×1.02 system power); the prefetch
    // path adds BRAM switching (paper: ×1.10).
    let mut overhead_dynamic_w = 1.55 + dynamic_mw(&overhead) / 1000.0;
    if profile.dual_clock {
        overhead_dynamic_w *= 1.04;
    }
    if profile.prefetch {
        overhead_dynamic_w += 0.12;
    }

    let cu_dynamic_w = dynamic_mw(&cu) / 1000.0;

    PowerBreakdown {
        static_w,
        overhead_dynamic_w,
        cu_dynamic_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> CuShape {
        CuShape::full(1, 1)
    }

    #[test]
    fn calibration_matches_figure6_left() {
        // Paper: Original 0.39+3.20 W; DCD 0.39+3.27 W; DCD+PM 0.46+3.49 W.
        let orig = power(SystemProfile::ORIGINAL, &full(), 1);
        let dcd = power(SystemProfile::DCD, &full(), 1);
        let pm = power(SystemProfile::DCD_PM, &full(), 1);
        assert!(
            (orig.static_w - 0.39).abs() < 0.06,
            "static {}",
            orig.static_w
        );
        assert!((pm.static_w - 0.46).abs() < 0.06, "static {}", pm.static_w);
        assert!(
            (orig.dynamic_w() - 3.20).abs() < 0.45,
            "dynamic {}",
            orig.dynamic_w()
        );
        assert!(
            (pm.dynamic_w() - 3.49).abs() < 0.45,
            "dynamic {}",
            pm.dynamic_w()
        );
        // Orderings from the paper: DCD ≈ 1.02x, PM ≈ 1.10x.
        assert!(dcd.total_w() > orig.total_w());
        assert!(pm.total_w() > dcd.total_w());
        let ratio = pm.total_w() / orig.total_w();
        assert!(
            (1.04..=1.16).contains(&ratio),
            "PM/original ratio {ratio:.3}"
        );
    }

    #[test]
    fn trimming_reduces_power() {
        use scratch_isa::{FuncUnit, Opcode};
        let int_only = CuShape {
            kept: Opcode::ALL
                .iter()
                .copied()
                .filter(|o| o.unit() != FuncUnit::Simf)
                .collect(),
            int_valus: 1,
            fp_valus: 0,
            datapath_bits: 32,
        };
        let base = power(SystemProfile::DCD_PM, &full(), 1);
        let trimmed = power(SystemProfile::DCD_PM, &int_only, 1);
        assert!(trimmed.total_w() < base.total_w());
        assert!(trimmed.cu_dynamic_w < base.cu_dynamic_w * 0.7);
        // Overhead power is untouched by trimming.
        assert!((trimmed.overhead_dynamic_w - base.overhead_dynamic_w).abs() < 0.05);
    }

    #[test]
    fn extra_cus_add_power() {
        let one = power(SystemProfile::DCD_PM, &full(), 1);
        let three = power(SystemProfile::DCD_PM, &full(), 3);
        let per_cu = (three.cu_dynamic_w - one.cu_dynamic_w) / 2.0;
        assert!(
            (0.4..=2.0).contains(&per_cu),
            "per-CU dynamic power {per_cu:.2} W out of band"
        );
        assert!(three.total_w() > one.total_w() + 0.8);
    }
}
