//! FPGA resource vectors and device capacities.

use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A vector of the four FPGA resource classes reported in the paper's
/// Fig. 6: slice flip-flops, slice LUTs, DSP48 slices and BRAM36 blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Slice flip-flops.
    pub ff: u64,
    /// Slice LUTs.
    pub lut: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// 36 Kb block RAMs.
    pub bram: u64,
}

impl Resources {
    /// A zero resource vector.
    pub const ZERO: Resources = Resources {
        ff: 0,
        lut: 0,
        dsp: 0,
        bram: 0,
    };

    /// Construct from the four counts.
    #[must_use]
    pub fn new(ff: u64, lut: u64, dsp: u64, bram: u64) -> Resources {
        Resources { ff, lut, dsp, bram }
    }

    /// `true` when every class of `self` fits within `other`.
    #[must_use]
    pub fn fits_in(&self, other: &Resources) -> bool {
        self.ff <= other.ff
            && self.lut <= other.lut
            && self.dsp <= other.dsp
            && self.bram <= other.bram
    }

    /// Component-wise saturating subtraction.
    #[must_use]
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            ff: self.ff.saturating_sub(other.ff),
            lut: self.lut.saturating_sub(other.lut),
            dsp: self.dsp.saturating_sub(other.dsp),
            bram: self.bram.saturating_sub(other.bram),
        }
    }

    /// Fraction of `self` relative to `total`, per class, as percentages.
    #[must_use]
    pub fn percent_of(&self, total: &Resources) -> [f64; 4] {
        let pct = |a: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                100.0 * a as f64 / b as f64
            }
        };
        [
            pct(self.ff, total.ff),
            pct(self.lut, total.lut),
            pct(self.dsp, total.dsp),
            pct(self.bram, total.bram),
        ]
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            ff: self.ff + rhs.ff,
            lut: self.lut + rhs.lut,
            dsp: self.dsp + rhs.dsp,
            bram: self.bram + rhs.bram,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(&rhs)
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, k: u64) -> Resources {
        Resources {
            ff: self.ff * k,
            lut: self.lut * k,
            dsp: self.dsp * k,
            bram: self.bram * k,
        }
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} FF, {} LUT, {} DSP48, {} BRAM",
            self.ff, self.lut, self.dsp, self.bram
        )
    }
}

/// An FPGA device with its resource capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// Total capacities.
    pub capacity: Resources,
}

impl Device {
    /// The Xilinx Virtex-7 XC7VX690T on the AlphaData ADM-PCIE-7V3 board
    /// used throughout the paper's evaluation.
    pub const XC7VX690T: Device = Device {
        name: "XC7VX690T",
        capacity: Resources {
            ff: 866_400,
            lut: 433_200,
            dsp: 3_600,
            bram: 1_470,
        },
    };

    /// The *routable* capacity the parallelism allocator plans against.
    ///
    /// MIAOW is notoriously routing- and timing-hungry on the Virtex-7
    /// (§4.3: "a limited amount of resources ... impose a maximum number of
    /// 3 CUs"), so only a fraction of the raw fabric is usable before
    /// placement fails at 50 MHz. The fractions are calibrated to the
    /// paper's achievable configurations: 1 untrimmed CU, 3 trimmed
    /// integer CUs, 2 trimmed FP CUs, 4 INT8 CUs.
    #[must_use]
    pub fn routable_capacity(&self) -> Resources {
        Resources {
            ff: self.capacity.ff * 36 / 100,
            lut: self.capacity.lut * 39 / 100,
            dsp: self.capacity.dsp * 60 / 100,
            bram: self.capacity.bram,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::XC7VX690T
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(10, 20, 3, 1);
        let b = Resources::new(5, 5, 1, 0);
        assert_eq!(a + b, Resources::new(15, 25, 4, 1));
        assert_eq!(a - b, Resources::new(5, 15, 2, 1));
        assert_eq!(b * 3, Resources::new(15, 15, 3, 0));
        assert_eq!(b.saturating_sub(&a), Resources::ZERO);
    }

    #[test]
    fn fitting() {
        let dev = Device::XC7VX690T;
        assert!(Resources::new(100_000, 50_000, 100, 500).fits_in(&dev.capacity));
        assert!(!Resources::new(900_000, 0, 0, 0).fits_in(&dev.capacity));
        assert!(!Resources::new(0, 0, 0, 1_471).fits_in(&dev.capacity));
    }

    #[test]
    fn percentage() {
        let total = Resources::new(200, 100, 50, 10);
        let part = Resources::new(100, 25, 50, 0);
        let p = part.percent_of(&total);
        assert_eq!(p, [50.0, 25.0, 100.0, 0.0]);
    }
}
