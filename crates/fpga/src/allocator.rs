//! Reinvesting trimmed-away area into parallelism (paper §4.2).

use serde::{Deserialize, Serialize};

use scratch_isa::{FuncUnit, Opcode};

use crate::model::{system_resources, CuShape, SystemProfile};
use crate::Device;

/// A parallelism configuration produced by the allocator — the
/// "CUs / INT VALUs / FP VALUs" rows of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// Number of compute units.
    pub cus: u8,
    /// Integer VALUs per CU.
    pub int_valus: u8,
    /// Floating-point VALUs per CU.
    pub fp_valus: u8,
}

impl ParallelPlan {
    /// The single-CU, single-VALU baseline shape.
    #[must_use]
    pub fn baseline(needs_fp: bool) -> ParallelPlan {
        ParallelPlan {
            cus: 1,
            int_valus: 1,
            fp_valus: u8::from(needs_fp),
        }
    }
}

fn shape(kept: &[Opcode], int_valus: u8, fp_valus: u8, bits: u8) -> CuShape {
    CuShape {
        kept: kept.to_vec(),
        int_valus,
        fp_valus,
        datapath_bits: bits,
    }
}

fn needs_fp(kept: &[Opcode]) -> bool {
    kept.iter().any(|o| o.unit() == FuncUnit::Simf)
}

fn needs_int(kept: &[Opcode]) -> bool {
    kept.iter().any(|o| o.unit() == FuncUnit::Simd)
}

/// Multi-core allocation: replicate whole (trimmed) CUs — each with a
/// single VALU of the kinds the kernel needs — until the device is full.
///
/// MIAOW's fetch controller and the board's routing pressure bound the
/// practical CU count; the paper reports a maximum of 3 CUs for 32-bit
/// designs (4 for the INT8 NIN variant), so the count is capped at
/// `max_cus`.
#[must_use]
pub fn allocate_multicore(device: &Device, kept: &[Opcode], max_cus: u8) -> ParallelPlan {
    allocate_multicore_bits(device, kept, max_cus, 32)
}

/// [`allocate_multicore`] with an explicit vector datapath width: the INT8
/// NIN variant of §4.2 shrinks the datapath to 8 bits and fits a fourth CU.
#[must_use]
pub fn allocate_multicore_bits(
    device: &Device,
    kept: &[Opcode],
    max_cus: u8,
    bits: u8,
) -> ParallelPlan {
    let fp = needs_fp(kept);
    let int = needs_int(kept) || !fp;
    let int_valus = u8::from(int);
    let fp_valus = u8::from(fp);
    let mut best = 1u8;
    for cus in 2..=max_cus {
        let total = system_resources(
            SystemProfile::DCD_PM,
            &shape(kept, int_valus, fp_valus, bits),
            cus,
        );
        if total.fits_in(&device.routable_capacity()) {
            best = cus;
        } else {
            break;
        }
    }
    ParallelPlan {
        cus: best,
        int_valus,
        fp_valus,
    }
}

/// The hard ceiling on compute units the allocator will ever place on
/// `device`: the count at which even the *smallest* allocatable CU — a
/// maximally trimmed integer core on the narrowest (8-bit) datapath — no
/// longer fits the routable capacity.
///
/// Every [`ParallelPlan`] the allocator produces satisfies
/// `plan.cus <= cu_capacity_bound(device)`, so the system simulator uses
/// this bound to validate user-requested CU counts
/// (`SystemConfig::with_cus`) before building CUs that no allocation
/// could ever back.
#[must_use]
pub fn cu_capacity_bound(device: &Device) -> u8 {
    // An empty kept-set is the minimal trimmed shape: the fixed fetch /
    // wavepool / issue fabric plus one integer VALU.
    let minimal = shape(&[], 1, 0, 8);
    let mut best = 1u8;
    for cus in 2..=u8::MAX {
        let total = system_resources(SystemProfile::DCD_PM, &minimal, cus);
        if total.fits_in(&device.routable_capacity()) {
            best = cus;
        } else {
            break;
        }
    }
    best
}

/// Multi-thread allocation: one CU, replicating the vector units the
/// kernel actually uses (up to MIAOW's limit of four VALUs per CU).
#[must_use]
pub fn allocate_multithread(device: &Device, kept: &[Opcode], max_valus: u8) -> ParallelPlan {
    let fp = needs_fp(kept);
    let int = needs_int(kept);
    // Integer-only kernels scale SIMD units; FP kernels keep one SIMD for
    // address arithmetic and scale the SIMF units (Fig. 6: "1 INT, 3 FP").
    let mut plan = ParallelPlan {
        cus: 1,
        int_valus: u8::from(int || !fp),
        fp_valus: u8::from(fp),
    };
    loop {
        let mut next = plan;
        let total_valus = next.int_valus + next.fp_valus;
        if total_valus >= max_valus {
            break;
        }
        if fp {
            next.fp_valus += 1;
        } else {
            next.int_valus += 1;
        }
        let total = system_resources(
            SystemProfile::DCD_PM,
            &shape(kept, next.int_valus, next.fp_valus, 32),
            1,
        );
        if total.fits_in(&device.routable_capacity()) {
            plan = next;
        } else {
            break;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A typical trimmed integer application (the 2D-conv INT32 subset).
    fn int_kernel() -> Vec<Opcode> {
        vec![
            Opcode::SMovB32,
            Opcode::SMulI32,
            Opcode::SAddU32,
            Opcode::SSubU32,
            Opcode::SSubI32,
            Opcode::SLshlB32,
            Opcode::SCmpLgI32,
            Opcode::SAndSaveexecB64,
            Opcode::SMovB64,
            Opcode::VAddI32,
            Opcode::VMovB32,
            Opcode::VLshlrevB32,
            Opcode::VMulLoI32,
            Opcode::VCmpGtU32,
            Opcode::SBufferLoadDwordx4,
            Opcode::SLoadDword,
            Opcode::BufferLoadDword,
            Opcode::BufferStoreDword,
            Opcode::SWaitcnt,
            Opcode::SBranch,
            Opcode::SCbranchScc1,
            Opcode::SEndpgm,
        ]
    }

    /// The same application in SP-FP (keeps the SIMF core).
    fn fp_kernel() -> Vec<Opcode> {
        let mut v = int_kernel();
        v.extend([Opcode::VMacF32, Opcode::VSubrevF32, Opcode::VCmpLtF32]);
        v
    }

    #[test]
    fn integer_kernels_fit_three_cores() {
        let plan = allocate_multicore(&Device::XC7VX690T, &int_kernel(), 3);
        assert_eq!(plan.fp_valus, 0);
        assert_eq!(plan.int_valus, 1);
        assert_eq!(plan.cus, 3, "paper reaches 3 CUs for integer kernels");
    }

    #[test]
    fn fp_kernels_fit_fewer_cores() {
        let fp_plan = allocate_multicore(&Device::XC7VX690T, &fp_kernel(), 3);
        assert_eq!(fp_plan.fp_valus, 1);
        assert_eq!(fp_plan.cus, 2, "paper reaches 2 CUs for FP kernels");
    }

    #[test]
    fn int8_datapath_fits_a_fourth_cu() {
        let p32 = allocate_multicore_bits(&Device::XC7VX690T, &int_kernel(), 4, 32);
        let p8 = allocate_multicore_bits(&Device::XC7VX690T, &int_kernel(), 4, 8);
        assert!(
            p8.cus > p32.cus.min(3),
            "INT8: {} vs INT32: {}",
            p8.cus,
            p32.cus
        );
        assert_eq!(p8.cus, 4, "paper: 4 CUs for the INT8 NIN");
    }

    #[test]
    fn multithread_reaches_four_valus() {
        let plan = allocate_multithread(&Device::XC7VX690T, &int_kernel(), 4);
        assert_eq!(plan.cus, 1);
        assert_eq!(plan.int_valus, 4, "paper: 1 CU with 4 INT VALUs");
        assert_eq!(plan.fp_valus, 0);

        let fp = allocate_multithread(&Device::XC7VX690T, &fp_kernel(), 4);
        assert_eq!(fp.cus, 1);
        assert_eq!(fp.int_valus, 1);
        assert_eq!(fp.fp_valus, 3, "paper: 1 CU with 1 INT + 3 FP VALUs");
    }

    #[test]
    fn plans_respect_routable_capacity() {
        for plan_kept in [int_kernel(), fp_kernel()] {
            let mc = allocate_multicore(&Device::XC7VX690T, &plan_kept, 8);
            let total = system_resources(
                SystemProfile::DCD_PM,
                &CuShape {
                    kept: plan_kept.clone(),
                    int_valus: mc.int_valus,
                    fp_valus: mc.fp_valus,
                    datapath_bits: 32,
                },
                mc.cus,
            );
            assert!(total.fits_in(&Device::XC7VX690T.routable_capacity()));
        }
    }

    #[test]
    fn capacity_bound_dominates_every_plan() {
        let bound = cu_capacity_bound(&Device::XC7VX690T);
        // The paper reaches 4 CUs for the INT8 NIN, so the ceiling is at
        // least that; it stays single-digit on this device.
        assert!(bound >= 4, "bound {bound}");
        assert!(bound < 16, "bound {bound}");
        for kept in [int_kernel(), fp_kernel(), Vec::new()] {
            let plan = allocate_multicore_bits(&Device::XC7VX690T, &kept, u8::MAX, 8);
            assert!(plan.cus <= bound);
        }
    }

    #[test]
    fn tiny_device_gets_baseline() {
        let tiny = Device {
            name: "tiny",
            capacity: crate::Resources::new(200_000, 110_000, 250, 1_200),
        };
        let plan = allocate_multicore(&tiny, &fp_kernel(), 4);
        assert_eq!(plan.cus, 1);
    }
}
