//! Exhaustive disassembler round-trip: for *every* opcode in the ISA,
//! assemble a minimal instance, disassemble it to text, reassemble the
//! text, and demand the encodings are bit-exact. This pins the textual
//! syntax of all mnemonics — any opcode whose printed form the parser
//! cannot read back (or reads back as a different encoding) fails here
//! by name rather than surfacing as a flaky fuzz divergence.

use scratch::asm::{assemble, KernelBuilder};
use scratch::check::minimal_instruction;
use scratch::isa::Opcode;

/// Build a one-instruction kernel around `op` (plus the terminating
/// `s_endpgm`), generous enough in registers/LDS for any minimal operand
/// choice.
fn minimal_kernel(op: Opcode) -> scratch::asm::Kernel {
    let mut b = KernelBuilder::new(format!("rt_{}", op.mnemonic()));
    b.sgprs(24).vgprs(8).lds_bytes(256).workgroup_size(64);
    b.push(minimal_instruction(op));
    b.endpgm()
        .unwrap_or_else(|e| panic!("{}: endpgm: {e}", op.mnemonic()));
    b.finish()
        .unwrap_or_else(|e| panic!("{}: does not assemble: {e}", op.mnemonic()))
}

#[test]
fn every_opcode_round_trips() {
    let mut failures = Vec::new();
    for &op in Opcode::ALL {
        let kernel = minimal_kernel(op);
        let text = match kernel.disassemble() {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{}: disassemble: {e}", op.mnemonic()));
                continue;
            }
        };
        match assemble(&text) {
            Ok(back) if back.words() == kernel.words() => {}
            Ok(back) => failures.push(format!(
                "{}: encodings differ\n  original:    {:08x?}\n  reassembled: {:08x?}\n  text:\n{text}",
                op.mnemonic(),
                kernel.words(),
                back.words()
            )),
            Err(e) => failures.push(format!(
                "{}: reassembly failed: {e}\n  text:\n{text}",
                op.mnemonic()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} opcodes fail the round trip:\n{}",
        failures.len(),
        Opcode::ALL.len(),
        failures.join("\n")
    );
}

/// The ISA model's 208 opcodes (a superset of the paper's 156, per
/// DESIGN.md) stay put — a tripwire against accidentally dropping
/// opcodes from the macro list.
#[test]
fn opcode_count_is_stable() {
    assert_eq!(Opcode::ALL.len(), 208);
}
