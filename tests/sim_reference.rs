//! Property test: the simulator's functional execution matches a CPU
//! reference interpreter over random straight-line integer programs — the
//! software analogue of the paper's §2.3 instruction-domain validation.

use proptest::prelude::*;

use scratch::asm::KernelBuilder;
use scratch::isa::{Opcode, Operand};
use scratch::system::{System, SystemConfig, SystemKind};

#[derive(Debug, Clone, Copy)]
enum Step {
    Bin(u8, u8, i8, u8), // op, dst, int-const src0, vsrc1
    Un(u8, u8, u8),      // op, dst, vsrc0
}

const BIN_OPS: [Opcode; 10] = [
    Opcode::VAddI32,
    Opcode::VSubI32,
    Opcode::VSubrevI32,
    Opcode::VAndB32,
    Opcode::VOrB32,
    Opcode::VXorB32,
    Opcode::VLshlrevB32,
    Opcode::VLshrrevB32,
    Opcode::VAshrrevI32,
    Opcode::VMaxU32,
];

const UN_OPS: [Opcode; 3] = [Opcode::VNotB32, Opcode::VBfrevB32, Opcode::VMovB32];

fn reference_bin(op: Opcode, a: u32, b: u32) -> u32 {
    match op {
        Opcode::VAddI32 => a.wrapping_add(b),
        Opcode::VSubI32 => a.wrapping_sub(b),
        Opcode::VSubrevI32 => b.wrapping_sub(a),
        Opcode::VAndB32 => a & b,
        Opcode::VOrB32 => a | b,
        Opcode::VXorB32 => a ^ b,
        Opcode::VLshlrevB32 => b << (a & 31),
        Opcode::VLshrrevB32 => b >> (a & 31),
        Opcode::VAshrrevI32 => ((b as i32) >> (a & 31)) as u32,
        Opcode::VMaxU32 => a.max(b),
        _ => unreachable!(),
    }
}

fn reference_un(op: Opcode, a: u32) -> u32 {
    match op {
        Opcode::VNotB32 => !a,
        Opcode::VBfrevB32 => a.reverse_bits(),
        Opcode::VMovB32 => a,
        _ => unreachable!(),
    }
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (any::<u8>(), 1u8..6, -16i8..=16, 0u8..6).prop_map(|(op, d, c, s)| Step::Bin(op, d, c, s)),
        (any::<u8>(), 1u8..6, 0u8..6).prop_map(|(op, d, s)| Step::Un(op, d, s)),
    ];
    prop::collection::vec(step, 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_matches_reference_interpreter(steps in arb_steps()) {
        // Build the kernel.
        let mut b = KernelBuilder::new("ref");
        b.sgprs(32).vgprs(8);
        for step in &steps {
            match *step {
                Step::Bin(op, d, c, s) => {
                    let op = BIN_OPS[usize::from(op) % BIN_OPS.len()];
                    b.vop2(op, d, Operand::IntConst(c), s).unwrap();
                }
                Step::Un(op, d, s) => {
                    let op = UN_OPS[usize::from(op) % UN_OPS.len()];
                    b.vop1(op, d, Operand::Vgpr(s)).unwrap();
                }
            }
        }
        // Store v1..v5 to out.
        b.smrd(
            Opcode::SBufferLoadDword,
            Operand::Sgpr(20),
            scratch::system::abi::CONST_BUF1,
            scratch::isa::SmrdOffset::Imm(0),
        )
        .unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 0).unwrap();
        for (i, reg) in (1u8..6).enumerate() {
            b.mubuf(
                Opcode::BufferStoreDword,
                reg,
                6,
                4,
                Operand::Sgpr(20),
                (i * 256) as u16,
            )
            .unwrap();
        }
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        // Reference interpreter over all 64 lanes.
        let mut regs = [[0u32; 64]; 6];
        for (lane, r0) in regs[0].iter_mut().enumerate() {
            *r0 = lane as u32;
        }
        for step in &steps {
            match *step {
                Step::Bin(op, d, c, s) => {
                    let op = BIN_OPS[usize::from(op) % BIN_OPS.len()];
                    let src = regs[s as usize];
                    for (dst, &sv) in regs[d as usize].iter_mut().zip(src.iter()) {
                        *dst = reference_bin(op, c as i32 as u32, sv);
                    }
                }
                Step::Un(op, d, s) => {
                    let op = UN_OPS[usize::from(op) % UN_OPS.len()];
                    let src = regs[s as usize];
                    for (dst, &sv) in regs[d as usize].iter_mut().zip(src.iter()) {
                        *dst = reference_un(op, sv);
                    }
                }
            }
        }

        // Simulate.
        let mut sys =
            System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        let out = sys.alloc(5 * 256);
        sys.set_args(&[out as u32]);
        sys.dispatch([1, 1, 1]).unwrap();
        for (i, reg) in (1usize..6).enumerate() {
            let got = sys.read_words(out + (i as u64) * 256, 64);
            prop_assert_eq!(&got[..], &regs[reg][..], "v{} differs", reg);
        }
    }
}
