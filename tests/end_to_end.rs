//! Cross-crate integration: the full SCRATCH pipeline (compile → analyse →
//! trim → configure → run → summarise) over real benchmarks and all three
//! system configurations.

use scratch::core::{configure, trim_kernels, Scratch};
use scratch::fpga::ParallelPlan;
use scratch::kernels::{
    conv2d::Conv2d, gaussian::Gaussian, pooling, transpose::Transpose, vec_ops::MatrixAdd,
    Benchmark,
};
use scratch::system::{SystemConfig, SystemKind};

#[test]
fn every_system_kind_runs_every_small_benchmark() {
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(MatrixAdd::new(16, false)),
        Box::new(MatrixAdd::new(16, true)),
        Box::new(Transpose::new(64)),
        Box::new(pooling::Pooling::new(32, pooling::Mode::Median)),
        Box::new(Conv2d::new(16, 3, true)),
        Box::new(Gaussian::new(8)),
    ];
    for bench in &benches {
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            bench
                .run(SystemConfig::preset(kind))
                .unwrap_or_else(|e| panic!("{} on {kind:?}: {e}", bench.name()));
        }
    }
}

#[test]
fn trimmed_architectures_preserve_results_and_save_energy() {
    let scratch = Scratch::new();
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(MatrixAdd::new(16, false)),
        Box::new(Conv2d::new(16, 3, false)),
        Box::new(Transpose::new(64)),
        Box::new(Conv2d::new(16, 3, true)),
    ];
    for bench in &benches {
        let trim = trim_kernels(&bench.kernels().unwrap()).unwrap();
        let plan = ParallelPlan::baseline(trim.uses_fp);
        let full = ParallelPlan::baseline(true);

        let base_report = bench
            .run(configure(SystemKind::DcdPm, full, None))
            .unwrap_or_else(|e| panic!("{} untrimmed: {e}", bench.name()));
        let trim_report = bench
            .run(configure(SystemKind::DcdPm, plan, Some(&trim)))
            .unwrap_or_else(|e| panic!("{} trimmed: {e}", bench.name()));

        // Identical cycle counts (trimming removes hardware, not time) and
        // both validated internally against the CPU reference.
        assert_eq!(
            base_report.cu_cycles,
            trim_report.cu_cycles,
            "{}: trimming changed timing",
            bench.name()
        );

        let s_base = scratch.summarize(SystemKind::DcdPm, None, full, &base_report);
        let s_trim = scratch.summarize(SystemKind::DcdPm, Some(&trim), plan, &trim_report);
        assert!(
            s_trim.energy_j < s_base.energy_j,
            "{}: trimmed energy {} >= baseline {}",
            bench.name(),
            s_trim.energy_j,
            s_base.energy_j
        );
    }
}

#[test]
fn parallel_plans_speed_up_real_workloads() {
    let scratch = Scratch::new();
    let bench = Conv2d::new(64, 5, false);
    let trim = trim_kernels(&bench.kernels().unwrap()).unwrap();

    let base_plan = ParallelPlan::baseline(true);
    let base = bench
        .run(configure(SystemKind::DcdPm, base_plan, None))
        .unwrap();
    let s_base = scratch.summarize(SystemKind::DcdPm, None, base_plan, &base);

    for (label, plan) in [
        ("multicore", scratch.plan_multicore(&trim, 3)),
        ("multithread", scratch.plan_multithread(&trim, 4)),
    ] {
        let run = bench
            .run(configure(SystemKind::DcdPm, plan, Some(&trim)))
            .unwrap();
        let s = scratch.summarize(SystemKind::DcdPm, Some(&trim), plan, &run);
        let speedup = s.speedup_vs(&s_base);
        assert!(
            speedup > 1.2 && speedup < 4.5,
            "{label} speedup {speedup:.2} out of band"
        );
    }
}

#[test]
fn foreign_instructions_rejected_by_trimmed_hardware() {
    // Trim for the integer transpose, then try to run an FP benchmark.
    let transpose = Transpose::new(64);
    let trim = trim_kernels(&transpose.kernels().unwrap()).unwrap();
    let fp_bench = MatrixAdd::new(16, true);
    let err = fp_bench
        .run(configure(
            SystemKind::DcdPm,
            ParallelPlan::baseline(false),
            Some(&trim),
        ))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("trimmed") || msg.contains("unit"),
        "unexpected error: {msg}"
    );
}

#[test]
fn characterization_matches_trim_requirements() {
    // Dynamic execution may only touch statically-required instructions.
    let bench = Conv2d::new(16, 3, false);
    let kernels = bench.kernels().unwrap();
    let trim = trim_kernels(&kernels).unwrap();
    let report = bench.run(SystemConfig::preset(SystemKind::DcdPm)).unwrap();
    for op in report.stats.executed_opcodes() {
        assert!(
            trim.kept.contains(op),
            "executed {op:?} absent from the static trim set"
        );
    }
}

#[test]
fn per_kernel_reconfiguration_analysis_on_cnn() {
    use scratch::core::{analyze_per_kernel, ReconfigModel};
    let cnn = scratch::kernels::cnn::Cnn {
        size: 8,
        fp: false,
        layers: 2,
        maps: 4,
    };
    let kernels = cnn.kernels().unwrap();
    let report = cnn
        .run(configure(
            SystemKind::DcdPm,
            ParallelPlan::baseline(true),
            None,
        ))
        .unwrap();
    assert!(report.kernel_switches > 0, "CNN alternates conv and pool");
    let a = analyze_per_kernel(
        "CNN",
        &kernels,
        &report,
        ParallelPlan::baseline(false),
        &ReconfigModel::default(),
    )
    .unwrap();
    // Conv and pool kernels need different (strictly smaller) sets.
    assert!(a.per_kernel_kept.iter().all(|&k| k < a.union_kept));
    assert!(a.reconfigurations > 0);
    assert!(a.reconfig_seconds > 0.0);
    // The §4.3 trade-off is visible: per-kernel power is lower in at least
    // one phase, and the crossover latency is reported.
    assert!(a.per_kernel_power_w.iter().any(|&p| p < a.union_power_w));
}
