//! End-to-end checks of the metrics plane against real runs: the
//! extended `RunReport` (stall attribution, per-unit busy cycles,
//! prefetch byte counts) survives a serde round-trip; registry
//! aggregates agree with the report they were flushed from; the
//! engine's logical-clock job stamps are coherent; and the fuzz
//! campaign publishes its own counters.

use scratch::check::{fuzz, FuzzConfig, OracleKind};
use scratch::engine::Engine;
use scratch::kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch::metrics::Registry;
use scratch::system::{RunReport, SystemConfig, SystemKind};

#[test]
fn run_report_round_trips_with_metrics_aggregates() {
    let config = SystemConfig::preset(SystemKind::DcdPm);
    let report = MatrixAdd::new(32, false).run(config).unwrap();

    // The metrics-era fields are populated.
    assert!(report.stats.instructions > 0);
    assert!(
        report.stats.stall_total() > 0,
        "stall attribution on by default"
    );
    assert!(!report.stats.fu_busy.is_empty());
    assert!(report.stats.ipc() > 0.0);

    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.stats.stall_cycles, report.stats.stall_cycles);
}

#[test]
fn registry_aggregates_agree_with_the_report() {
    let registry = Registry::new();
    let config = SystemConfig::preset(SystemKind::Dcd).with_registry(registry.clone());
    let report = MatrixAdd::new(16, true).run(config).unwrap();

    let snap = registry.snapshot();
    let labels = [("system", "DCD")];
    assert_eq!(
        snap.counter("scratch_system_dispatches_total", &labels),
        Some(1)
    );
    assert_eq!(
        snap.counter("scratch_system_instructions_total", &labels),
        Some(report.stats.instructions)
    );
    assert_eq!(
        snap.counter("scratch_system_cu_cycles_total", &labels),
        Some(report.cu_cycles)
    );
    assert_eq!(
        snap.counter("scratch_system_prefetch_hits_total", &labels),
        Some(report.prefetch_hits)
    );
    let h = snap
        .histogram("scratch_system_dispatch_cycles", &labels)
        .expect("dispatch latency histogram");
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum, report.cu_cycles);
    let ipc = snap
        .gauge("scratch_system_ipc", &labels)
        .expect("ipc gauge");
    assert!((ipc - report.stats.ipc()).abs() < 1e-12);
}

#[test]
fn engine_job_stamps_are_coherent_under_load() {
    let registry = Registry::new();
    let outcomes = Engine::new(3)
        .with_registry(registry.clone())
        .run_batch((0..8).map(|i| (format!("job-{i}"), move || Ok(i))));
    for o in &outcomes {
        assert!(o.timing.enqueued < o.timing.started);
        assert!(o.timing.started < o.timing.finished);
        assert_eq!(
            o.timing.wait_ticks() + o.timing.run_ticks(),
            o.timing.finished - o.timing.enqueued
        );
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("scratch_engine_jobs_submitted_total", &[]),
        Some(8)
    );
    assert_eq!(
        snap.counter("scratch_engine_jobs_completed_total", &[]),
        Some(8)
    );
    let waits = snap
        .histogram("scratch_engine_job_wait_ticks", &[])
        .expect("wait histogram");
    assert_eq!(waits.count(), 8);
}

#[test]
fn fuzz_campaign_publishes_counters() {
    let report = fuzz(&FuzzConfig {
        seed: 7,
        cases: 4,
        oracles: vec![OracleKind::Roundtrip],
        ..FuzzConfig::default()
    });
    // The campaign publishes to the process-global registry; other tests
    // in this binary use private registries, so only fuzz runs touch
    // these counters — but another fuzz test may too, so bound below.
    let snap = scratch::metrics::global().snapshot();
    let cases = snap
        .counter("scratch_check_cases_total", &[])
        .expect("campaign counter registered");
    assert!(cases >= report.cases, "{cases} < {}", report.cases);
    assert!(
        snap.counter("scratch_check_oracle_checks_total", &[])
            .unwrap_or(0)
            >= report.checks
    );
}
