//! Fast-tier conformance: the block-compiled wavefront executor must be
//! word-identical to the cycle pipeline. Three layers of proof:
//!
//! 1. a pinned-seed 300-case fuzz campaign through the `fastpath` oracle
//!    (the same shape the `fastpath-smoke` CI job runs);
//! 2. directed kernels for every fallback trigger — exec-mask-all-zero
//!    regions, LDS traffic across a barrier, scc skip branches, and
//!    per-workgroup output pages — each diffed word for word between
//!    `ExecMode::Cycle` and `ExecMode::Fast`;
//! 3. a determinism property: translating and executing the same kernel
//!    twice on fresh systems yields the same words *and* the same
//!    block-dispatch counters.

use proptest::prelude::*;

use scratch::asm::{Kernel, KernelBuilder};
use scratch::check::{fuzz, FuzzConfig, OracleKind};
use scratch::isa::{Opcode, Operand, SmrdOffset};
use scratch::system::{abi, ExecMode, FastStats, System, SystemConfig, SystemKind};

/// Run `kernel` on a fresh system in `exec` mode with `input` preloaded;
/// args are `[in, out]`. Returns the first `n` output words plus the fast
/// tier's counters (populated only for the fast modes).
fn run(
    kernel: &Kernel,
    exec: ExecMode,
    grid: [u32; 3],
    n: u32,
    input: &[u32],
) -> (Vec<u32>, Option<FastStats>) {
    let config = SystemConfig::preset(SystemKind::DcdPm).with_exec(exec);
    let mut sys = System::new(config, kernel).unwrap();
    let a_in = sys.alloc_words(input);
    let a_out = sys.alloc(u64::from(n.max(1)) * 4);
    sys.set_args(&[a_in as u32, a_out as u32]);
    sys.dispatch(grid).unwrap();
    let stats = sys.fast_stats(0).cloned();
    (sys.read_words(a_out, n as usize), stats)
}

/// Assert the fast tier reproduces the cycle pipeline bit for bit on one
/// directed kernel, and return the matching words for further checks.
fn assert_tiers_agree(kernel: &Kernel, grid: [u32; 3], n: u32, input: &[u32]) -> Vec<u32> {
    let (cycle, none) = run(kernel, ExecMode::Cycle, grid, n, input);
    assert!(none.is_none(), "cycle dispatches never touch the fast slot");
    let (fast, stats) = run(kernel, ExecMode::Fast, grid, n, input);
    assert_eq!(cycle, fast, "fast tier diverged from the cycle pipeline");
    let stats = stats.expect("fast dispatch populates the kernel slot");
    assert!(stats.instructions > 0);
    let (shadow, _) = run(kernel, ExecMode::FastWithTiming, grid, n, input);
    assert_eq!(cycle, shadow, "shadow-checked run diverged");
    cycle
}

/// Common prologue: `s20 = in base`, `s21 = out base`, `v1 = gid << 2`.
fn prologue(b: &mut KernelBuilder, wg_size: u32) {
    b.smrd(
        Opcode::SBufferLoadDwordx2,
        Operand::Sgpr(20),
        abi::CONST_BUF1,
        SmrdOffset::Imm(0),
    )
    .unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_X),
        Operand::Literal(wg_size),
    )
    .unwrap();
    b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), abi::TID_X)
        .unwrap();
    b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 1)
        .unwrap();
}

/// Epilogue: store `v(data)` to `out[gid]` and end the program.
fn store_and_end(b: &mut KernelBuilder, data: u8) {
    b.mubuf(
        Opcode::BufferStoreDword,
        data,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(21),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
}

/// An `s_and_saveexec_b64` region whose mask is all-zero: the guarded
/// store must execute for no lane in either tier.
#[test]
fn exec_mask_all_zero_region_is_skipped_identically() {
    let mut b = KernelBuilder::new("exec_zero");
    b.vgprs(8).sgprs(40).workgroup_size(64);
    prologue(&mut b, 64);
    // v2 = poison, v3 = gid (the honest answer).
    b.vop1(Opcode::VMovB32, 2, Operand::Literal(0xdead_beef))
        .unwrap();
    b.vop2(Opcode::VAddI32, 3, Operand::Sgpr(0), abi::TID_X)
        .unwrap();
    // vcc = 0, exec &= vcc — every lane is masked off.
    b.sop1(Opcode::SMovB64, Operand::VccLo, Operand::IntConst(0))
        .unwrap();
    b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(34), Operand::VccLo)
        .unwrap();
    // Under the empty mask: poison the result and the output buffer.
    b.vop1(Opcode::VMovB32, 3, Operand::Literal(0xdead_beef))
        .unwrap();
    b.mubuf(
        Opcode::BufferStoreDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(21),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    // Restore exec and store the honest answer.
    b.sop1(Opcode::SMovB64, Operand::ExecLo, Operand::Sgpr(34))
        .unwrap();
    store_and_end(&mut b, 3);
    let kernel = b.finish().unwrap();

    let words = assert_tiers_agree(&kernel, [2, 1, 1], 128, &[0; 128]);
    for (i, &w) in words.iter().enumerate() {
        assert_eq!(w, i as u32, "masked-off region leaked into lane {i}");
    }
}

/// LDS write → barrier → reversed LDS read: both tiers must order the
/// workgroup's waves around the barrier the same way.
#[test]
fn lds_barrier_reversal_matches() {
    let wg_size = 64;
    let mut b = KernelBuilder::new("lds_rev");
    b.vgprs(8).sgprs(40).workgroup_size(wg_size).lds_bytes(256);
    prologue(&mut b, wg_size);
    // LDS[tid*4] = in[gid]
    b.mubuf(
        Opcode::BufferLoadDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(20),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), abi::TID_X)
        .unwrap();
    b.ds_write(Opcode::DsWriteB32, 4, 2, 0).unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    b.sopp(Opcode::SBarrier, 0).unwrap();
    // v5 = (wg_size-1 - tid) * 4; v6 = LDS[v5]
    b.vop2(
        Opcode::VSubI32,
        5,
        Operand::Literal(wg_size - 1),
        abi::TID_X,
    )
    .unwrap();
    b.vop2(Opcode::VLshlrevB32, 5, Operand::IntConst(2), 5)
        .unwrap();
    b.ds_read(Opcode::DsReadB32, 6, 5, 0).unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    store_and_end(&mut b, 6);
    let kernel = b.finish().unwrap();

    let n = 2 * wg_size;
    let input: Vec<u32> = (0..n).map(|i| i * 7 + 3).collect();
    let words = assert_tiers_agree(&kernel, [2, 1, 1], n, &input);
    for wg in 0..2u32 {
        for tid in 0..wg_size {
            let got = words[(wg * wg_size + tid) as usize];
            let want = input[(wg * wg_size + (wg_size - 1 - tid)) as usize];
            assert_eq!(got, want, "wg {wg} lane {tid}");
        }
    }
}

/// An scc-conditional forward branch: even workgroups skip the `+100`,
/// odd ones take it. Both tiers must resolve the skip identically.
#[test]
fn scc_skip_branch_matches() {
    let mut b = KernelBuilder::new("skip");
    b.vgprs(8).sgprs(40).workgroup_size(64);
    prologue(&mut b, 64);
    b.vop2(Opcode::VAddI32, 2, Operand::Sgpr(0), abi::TID_X)
        .unwrap();
    // s1 = wg_id & 1; skip the bump when it is zero.
    b.sop2(
        Opcode::SAndB32,
        Operand::Sgpr(1),
        Operand::Sgpr(abi::WG_ID_X),
        Operand::IntConst(1),
    )
    .unwrap();
    b.sopc(Opcode::SCmpEqU32, Operand::Sgpr(1), Operand::IntConst(0))
        .unwrap();
    let skip = b.new_label();
    b.branch(Opcode::SCbranchScc1, skip);
    b.vop2(Opcode::VAddI32, 2, Operand::Literal(100), 2)
        .unwrap();
    b.bind(skip).unwrap();
    store_and_end(&mut b, 2);
    let kernel = b.finish().unwrap();

    let words = assert_tiers_agree(&kernel, [4, 1, 1], 256, &[0; 256]);
    for (i, &w) in words.iter().enumerate() {
        let bump = if (i / 64) % 2 == 1 { 100 } else { 0 };
        assert_eq!(w, i as u32 + bump, "lane {i}");
    }
}

/// Per-workgroup output pages: each workgroup owns a disjoint page of the
/// output buffer, across more workgroups than CUs so assignment wraps.
#[test]
fn per_workgroup_output_pages_match() {
    let mut b = KernelBuilder::new("wg_pages");
    b.vgprs(8).sgprs(40).workgroup_size(64);
    prologue(&mut b, 64);
    // v2 = wg_id * 1000 + tid
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(1),
        Operand::Sgpr(abi::WG_ID_X),
        Operand::Literal(1000),
    )
    .unwrap();
    b.vop2(Opcode::VAddI32, 2, Operand::Sgpr(1), abi::TID_X)
        .unwrap();
    store_and_end(&mut b, 2);
    let kernel = b.finish().unwrap();

    let wgs = 7u32; // odd on purpose: wraps unevenly over the CUs
    let words = assert_tiers_agree(&kernel, [wgs, 1, 1], wgs * 64, &[0; 8]);
    for wg in 0..wgs {
        for tid in 0..64 {
            assert_eq!(
                words[(wg * 64 + tid) as usize],
                wg * 1000 + tid,
                "wg {wg} lane {tid}"
            );
        }
    }
}

/// The acceptance campaign: 300 pinned-seed cases through the `fastpath`
/// oracle — every generated kernel (LDS traffic, exec regions, loops,
/// skip branches, …) must agree across all three execution tiers.
#[test]
fn pinned_fastpath_campaign_is_clean() {
    let report = fuzz(&FuzzConfig {
        seed: 0,
        cases: 300,
        oracles: vec![OracleKind::Fastpath],
        ..FuzzConfig::default()
    });
    assert_eq!(report.cases, 300);
    assert_eq!(
        report.skipped, 0,
        "generator produced unassemblable kernels"
    );
    assert_eq!(report.checks, 300, "the fastpath oracle was skipped");
    assert!(
        report.divergences.is_empty(),
        "fast tier diverged from the cycle pipeline:\n{}",
        report.divergences[0].render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Translate/execute/re-translate/re-execute is deterministic: two
    /// fresh systems over the same kernel produce the same words and the
    /// same per-block dispatch counters.
    #[test]
    fn translation_and_execution_are_deterministic(
        wgs in 1u32..5,
        seed in any::<u32>(),
    ) {
        let mut b = KernelBuilder::new("det");
        b.vgprs(8).sgprs(40).workgroup_size(64);
        prologue(&mut b, 64);
        b.mubuf(Opcode::BufferLoadDword, 2, 1, abi::UAV_DESC, Operand::Sgpr(20), 0).unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.vop2(Opcode::VXorB32, 2, Operand::Literal(seed), 2).unwrap();
        store_and_end(&mut b, 2);
        let kernel = b.finish().unwrap();

        let n = wgs * 64;
        let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(seed | 1)).collect();
        let (w1, s1) = run(&kernel, ExecMode::Fast, [wgs, 1, 1], n, &input);
        let (w2, s2) = run(&kernel, ExecMode::Fast, [wgs, 1, 1], n, &input);
        prop_assert_eq!(&w1, &w2, "re-execution changed the output");
        let (s1, s2) = (s1.unwrap(), s2.unwrap());
        prop_assert_eq!(
            &s1.block_dispatches, &s2.block_dispatches,
            "re-translation changed the block dispatch profile"
        );
        prop_assert_eq!(s1, s2);
        // And the fast tier still matches the cycle pipeline.
        let (wc, _) = run(&kernel, ExecMode::Cycle, [wgs, 1, 1], n, &input);
        prop_assert_eq!(w1, wc);
    }
}
