//! Scrape-path integration test: after real work flows through the
//! engine + system simulators, a TCP scrape of the metrics server must
//! return valid Prometheus text with every layer's counters populated —
//! the same check a `curl http://.../metrics | grep` smoke test makes
//! in CI, but hermetic (own registry, ephemeral port).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;

use scratch::engine::{Engine, JobError, PreemptiveEngine, Slice};
use scratch::kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch::metrics::{MetricsServer, Registry};
use scratch::system::{SystemConfig, SystemKind};

/// One HTTP/1.1 GET against the server; returns (status line, body).
fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

#[test]
fn scraping_after_a_dispatch_sees_every_layer() {
    let registry = Registry::new();

    // Dispatch two kernels through an engine batch so the engine queue,
    // the system dispatcher and the CU aggregates all publish.
    let reg = registry.clone();
    let outcomes =
        Engine::new(2)
            .with_registry(registry.clone())
            .run_batch([false, true].into_iter().map(move |fp| {
                let reg = reg.clone();
                let label = if fp { "fp" } else { "int" };
                (label, move || {
                    let config = SystemConfig::preset(SystemKind::DcdPm).with_registry(reg);
                    MatrixAdd::new(16, fp)
                        .run(config)
                        .map(|_| ())
                        .map_err(|e| JobError::Failed(e.to_string()))
                })
            }));
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.result.is_ok(), "{}: {:?}", o.label, o.result);
    }

    let server =
        MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind ephemeral port");
    let addr = server.addr();

    let (status, body) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "{status}");

    // Engine layer.
    assert!(
        body.contains("scratch_engine_jobs_submitted_total 2\n"),
        "{body}"
    );
    assert!(body.contains("scratch_engine_jobs_completed_total 2\n"));
    assert!(body.contains("scratch_engine_job_wait_ticks_count 2\n"));
    // System layer (labeled by preset).
    assert!(body.contains("scratch_system_dispatches_total{system=\"DCD+PM\"} 2\n"));
    assert!(body.contains("scratch_system_prefetch_hits_total{system=\"DCD+PM\"}"));
    // CU aggregates: instructions flowed and stall reasons attributed.
    assert!(body.contains("scratch_system_instructions_total{system=\"DCD+PM\"}"));
    assert!(
        body.contains("scratch_system_stall_cycles_total{reason=\"waitcnt-vm\",system=\"DCD+PM\"}")
    );
    assert!(body.contains("scratch_system_fu_occupancy_ratio{system=\"DCD+PM\",unit=\"iVALU\"}"));

    // The JSON endpoint serves the same snapshot, deserializable.
    let (status, json_body) = scrape(addr, "/metrics.json");
    assert!(status.contains("200"), "{status}");
    let snap: scratch::metrics::MetricsSnapshot =
        serde_json::from_str(&json_body).expect("valid snapshot JSON");
    assert_eq!(
        snap.counter("scratch_engine_jobs_submitted_total", &[]),
        Some(2)
    );
    assert_eq!(
        snap.counter("scratch_system_dispatches_total", &[("system", "DCD+PM")]),
        Some(2)
    );

    // Unknown paths 404 without killing the server.
    let (status, _) = scrape(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "{status}");

    server.shutdown();
}

#[test]
fn preemptive_slicing_publishes_to_the_scrape_path() {
    let registry = Registry::new();
    let engine = PreemptiveEngine::new(1)
        .with_registry(registry.clone())
        .start();

    // One job sliced into three quanta (two yields, then done) and one
    // that never finishes on its own — cancellation stops it at a
    // quantum boundary. Together they drive all three preempt counters.
    let mut left = 2u32;
    let sliced = engine.submit("acme".to_owned(), "sliced".to_owned(), move |_| {
        if left == 0 {
            Slice::Done(Ok(7u32))
        } else {
            left -= 1;
            Slice::Yield
        }
    });
    let victim = engine.submit("acme".to_owned(), "victim".to_owned(), |_| {
        Slice::<u32>::Yield
    });
    assert!(engine.cancel(victim), "victim must be cancellable");
    let mut outcomes = Vec::new();
    while outcomes.len() < 2 {
        outcomes.extend(engine.recv_timeout(std::time::Duration::from_secs(30)));
    }
    for o in &outcomes {
        if o.id == sliced {
            assert_eq!(o.result.as_ref().ok(), Some(&7));
        } else {
            assert!(matches!(o.result, Err(JobError::Cancelled)), "{o:?}");
        }
    }
    let drained = engine.join();
    assert!(drained.is_empty(), "all outcomes were already received");

    let server =
        MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind ephemeral port");
    let (status, body) = scrape(server.addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("scratch_preempt_quanta_total"), "{body}");
    assert!(body.contains("scratch_preempt_preemptions_total"), "{body}");
    assert!(
        body.contains("scratch_preempt_cancelled_total 1\n"),
        "{body}"
    );

    // Exact floors via the typed snapshot: the sliced job alone runs 3
    // quanta and yields twice.
    let snap = registry.snapshot();
    assert!(
        snap.counter("scratch_preempt_quanta_total", &[])
            .unwrap_or(0)
            >= 3
    );
    assert!(
        snap.counter("scratch_preempt_preemptions_total", &[])
            .unwrap_or(0)
            >= 2
    );
    assert_eq!(
        snap.counter("scratch_preempt_cancelled_total", &[]),
        Some(1)
    );

    server.shutdown();
}
