//! End-to-end tracing: full-fidelity traces of real benchmarks under every
//! system preset must satisfy the attribution invariant and export to a
//! Chrome-loadable `trace_event` document.

use scratch::kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch::system::{SystemConfig, SystemKind, TraceMode};
use scratch::trace::{chrome_trace, StallReason, TraceEvent};

#[test]
fn full_traces_hold_for_int_and_fp_kernels_under_every_preset() {
    for fp in [false, true] {
        let bench = MatrixAdd::new(16, fp);
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            let config = SystemConfig::preset(kind).with_trace(TraceMode::Full);
            let report = bench
                .run(config)
                .unwrap_or_else(|e| panic!("{} on {kind:?}: {e}", bench.name()));

            // Attribution invariant: every wave's residency tiles exactly.
            let trace = report
                .trace
                .unwrap_or_else(|| panic!("no summary for {kind:?} fp={fp}"));
            trace
                .check_invariant()
                .unwrap_or_else(|e| panic!("{kind:?} fp={fp}: {e}"));
            assert!(!trace.waves.is_empty());

            // The event stream covers dispatch through retirement.
            let events = report.trace_events.expect("full mode buffers events");
            assert!(matches!(
                events.first(),
                Some(TraceEvent::KernelDispatch { .. })
            ));
            assert!(events
                .iter()
                .any(|e| matches!(e, TraceEvent::Retire { .. })));

            // The Chrome export is a JSON object with a traceEvents array.
            let json = chrome_trace(&events).to_string();
            assert!(json.starts_with('{'), "not a JSON object: {kind:?}");
            assert!(json.contains("\"traceEvents\""));
            assert!(json.contains("\"displayTimeUnit\""));
            assert!(json.contains("thread_name"));
        }
    }
}

#[test]
fn presets_shift_the_stall_profile() {
    // The serialised Original memory path must queue more than DCD+PM,
    // where prefetch hits bypass the MicroBlaze server entirely.
    let bench = MatrixAdd::new(32, false);
    let mut queueing = Vec::new();
    for kind in [SystemKind::Original, SystemKind::DcdPm] {
        let config = SystemConfig::preset(kind).with_trace(TraceMode::Summary);
        let report = bench.run(config).unwrap();
        let trace = report.trace.unwrap();
        trace.check_invariant().unwrap();
        queueing.push(trace.stall_cycles(StallReason::MemoryQueue));
    }
    assert!(
        queueing[0] > queueing[1],
        "Original queueing {} not above DcdPm {}",
        queueing[0],
        queueing[1]
    );
}
