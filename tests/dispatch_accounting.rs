//! Dispatcher accounting: per-kernel cycle attribution, dispatch counts and
//! kernel-switch tracking (the inputs of the §4.3 reconfiguration study).

use scratch::asm::{Kernel, KernelBuilder};
use scratch::isa::{Opcode, Operand};
use scratch::system::{System, SystemConfig, SystemKind};

fn tiny_kernel(name: &str, adds: usize) -> Kernel {
    let mut b = KernelBuilder::new(name);
    // The dispatcher ABI initialises s4..s18, so every kernel budgets at
    // least 19 SGPRs.
    b.sgprs(24).vgprs(4);
    for _ in 0..adds {
        b.vop2(Opcode::VAddI32, 1, Operand::IntConst(1), 1).unwrap();
    }
    b.endpgm().unwrap();
    b.finish().unwrap()
}

#[test]
fn per_kernel_cycles_attributed_to_the_right_kernel() {
    let kernels = [tiny_kernel("short", 2), tiny_kernel("long", 64)];
    let mut sys = System::with_kernels(SystemConfig::preset(SystemKind::DcdPm), &kernels).unwrap();
    sys.set_args(&[0]);

    sys.dispatch_kernel(0, [1, 1, 1]).unwrap();
    sys.dispatch_kernel(1, [1, 1, 1]).unwrap();
    sys.dispatch_kernel(1, [1, 1, 1]).unwrap();

    let report = sys.report();
    assert_eq!(report.per_kernel_dispatches, vec![1, 2]);
    assert_eq!(report.kernel_switches, 1, "0 -> 1 is the only switch");
    assert!(
        report.per_kernel_cycles[1] > report.per_kernel_cycles[0] * 4,
        "the long kernel must dominate: {:?}",
        report.per_kernel_cycles
    );
    assert_eq!(
        report.per_kernel_cycles.iter().sum::<u64>(),
        report.cu_cycles,
        "attribution must cover the whole timeline"
    );
}

#[test]
fn alternating_dispatches_count_every_switch() {
    let kernels = [tiny_kernel("a", 1), tiny_kernel("b", 1)];
    let mut sys = System::with_kernels(SystemConfig::preset(SystemKind::DcdPm), &kernels).unwrap();
    sys.set_args(&[0]);
    for i in 0..6 {
        sys.dispatch_kernel(i % 2, [1, 1, 1]).unwrap();
    }
    let report = sys.report();
    assert_eq!(report.kernel_switches, 5);
    assert_eq!(report.per_kernel_dispatches, vec![3, 3]);
}

#[test]
fn out_of_range_kernel_index_rejected() {
    let kernels = [tiny_kernel("only", 1)];
    let mut sys = System::with_kernels(SystemConfig::preset(SystemKind::DcdPm), &kernels).unwrap();
    sys.set_args(&[0]);
    assert!(sys.dispatch_kernel(1, [1, 1, 1]).is_err());
    assert!(sys.dispatch_kernel(0, [1, 1, 1]).is_ok());
}

#[test]
fn empty_kernel_list_rejected() {
    assert!(System::with_kernels(SystemConfig::preset(SystemKind::DcdPm), &[]).is_err());
}
