//! Property tests of the trimming tool's safety guarantee: an application
//! always runs identically on the architecture trimmed for it ("the removal
//! of unused resources does not affect execution ... without compromising
//! the correct program execution", §3.2), and anything outside the trimmed
//! set is rejected by the hardware.

use proptest::prelude::*;

use scratch::asm::{Kernel, KernelBuilder};
use scratch::core::{configure, trim_kernel};
use scratch::fpga::{cu_resources, CuShape, ParallelPlan};
use scratch::isa::{Opcode, Operand};
use scratch::system::{System, SystemConfig, SystemKind};

/// A random straight-line vector kernel: a sequence of integer/FP vector
/// operations over v0 (the lane id) and previously produced registers,
/// storing the final value of v5.
#[derive(Debug, Clone)]
struct RandomProgram {
    steps: Vec<(u8, Operand, u8)>, // (op selector, src0, vsrc1)
}

fn vector_op(selector: u8) -> Opcode {
    const OPS: [Opcode; 12] = [
        Opcode::VAddI32,
        Opcode::VSubI32,
        Opcode::VAndB32,
        Opcode::VOrB32,
        Opcode::VXorB32,
        Opcode::VLshlrevB32,
        Opcode::VLshrrevB32,
        Opcode::VMaxI32,
        Opcode::VMinU32,
        Opcode::VAddF32,
        Opcode::VMulF32,
        Opcode::VMaxF32,
    ];
    OPS[usize::from(selector) % OPS.len()]
}

fn arb_program() -> impl Strategy<Value = RandomProgram> {
    let step = (
        any::<u8>(),
        prop_oneof![
            (0u8..6).prop_map(Operand::Vgpr),
            (-16i8..=16).prop_map(Operand::IntConst),
            (0u8..4).prop_map(|i| Operand::FloatConst(Operand::INLINE_FLOATS[i as usize])),
        ],
        0u8..6,
    );
    prop::collection::vec(step, 1..12).prop_map(|steps| RandomProgram { steps })
}

fn build(program: &RandomProgram) -> Kernel {
    let mut b = KernelBuilder::new("random");
    b.sgprs(32).vgprs(8);
    // Seed v1..v5 deterministically from v0 so every register is defined.
    for d in 1..6u8 {
        b.vop2(Opcode::VAddI32, d, Operand::IntConst(d as i8), 0)
            .unwrap();
    }
    for &(sel, src0, vsrc1) in &program.steps {
        let op = vector_op(sel);
        // Shifts mask their amount; everything else is total. Write the
        // result into v5 so the final value depends on the whole program.
        b.vop2(op, 5, src0, vsrc1).unwrap();
    }
    // Store v5 to out[tid] (arg 0 carries the buffer address in s20).
    b.smrd(
        Opcode::SBufferLoadDword,
        Operand::Sgpr(20),
        scratch::system::abi::CONST_BUF1,
        scratch::isa::SmrdOffset::Imm(0),
    )
    .unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 0)
        .unwrap();
    b.mubuf(Opcode::BufferStoreDword, 5, 6, 4, Operand::Sgpr(20), 0)
        .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
    b.finish().unwrap()
}

fn run(kernel: &Kernel, config: SystemConfig) -> Result<Vec<u32>, String> {
    let mut sys = System::new(config, kernel).map_err(|e| e.to_string())?;
    let out = sys.alloc(64 * 4);
    sys.set_args(&[out as u32]);
    sys.dispatch([1, 1, 1]).map_err(|e| e.to_string())?;
    Ok(sys.read_words(out, 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core guarantee of the SCRATCH tool: running a kernel on the
    /// architecture trimmed *for that kernel* yields bit-identical results.
    #[test]
    fn trimmed_architecture_is_safe_for_its_own_kernel(program in arb_program()) {
        let kernel = build(&program);
        let trim = trim_kernel(&kernel).unwrap();

        let full = run(&kernel, configure(SystemKind::DcdPm, ParallelPlan::baseline(true), None))
            .expect("untrimmed run");
        let trimmed = run(
            &kernel,
            configure(
                SystemKind::DcdPm,
                ParallelPlan::baseline(trim.uses_fp),
                Some(&trim),
            ),
        )
        .expect("trimmed run must always succeed for its own kernel");
        prop_assert_eq!(full, trimmed);
    }

    /// Conversely: an instruction outside the trimmed set is always caught.
    #[test]
    fn foreign_opcode_always_rejected(program in arb_program(), foreign_sel in any::<u8>()) {
        let kernel = build(&program);
        let trim = trim_kernel(&kernel).unwrap();

        // Find a vector opcode the trim removed.
        let foreign = (0..12u8)
            .map(|i| vector_op(foreign_sel.wrapping_add(i)))
            .find(|op| !trim.kept.contains(*op));
        prop_assume!(foreign.is_some());
        let foreign = foreign.unwrap();

        let mut b = KernelBuilder::new("foreign");
        b.sgprs(32).vgprs(8);
        b.vop2(foreign, 1, Operand::Vgpr(0), 0).unwrap();
        b.endpgm().unwrap();
        let bad = b.finish().unwrap();

        let err = run(
            &bad,
            configure(
                SystemKind::DcdPm,
                ParallelPlan::baseline(trim.uses_fp),
                Some(&trim),
            ),
        )
        .expect_err("foreign instruction must be rejected");
        prop_assert!(
            err.contains("trimmed") || err.contains("unit"),
            "unexpected error: {}", err
        );
    }

    /// Trimming is monotone: adding instructions to a kernel never shrinks
    /// the trim set, and never shrinks the modelled FPGA resource cost of
    /// the trimmed CU. (If this broke, growing an application could
    /// silently drop hardware it still needs.)
    #[test]
    fn trimming_is_monotone(base in arb_program(), extra in arb_program()) {
        let mut extended = base.clone();
        extended.steps.extend(extra.steps.iter().cloned());

        let small = trim_kernel(&build(&base)).unwrap();
        let large = trim_kernel(&build(&extended)).unwrap();

        // Trim-set monotonicity: everything the base kernel keeps, the
        // extended kernel keeps too.
        for op in small.kept.iter() {
            prop_assert!(
                large.kept.contains(op),
                "extending the kernel dropped {} from the trim set",
                op.mnemonic()
            );
        }

        // Resource-cost monotonicity, component-wise on the additive model.
        let shape = |kept: Vec<Opcode>, fp: bool| CuShape {
            kept,
            int_valus: 1,
            fp_valus: u8::from(fp),
            datapath_bits: 32,
        };
        let small_cost = cu_resources(&shape(small.kept.iter().collect(), small.uses_fp));
        let large_cost = cu_resources(&shape(large.kept.iter().collect(), large.uses_fp));
        prop_assert!(
            small_cost.ff <= large_cost.ff
                && small_cost.lut <= large_cost.lut
                && small_cost.dsp <= large_cost.dsp
                && small_cost.bram <= large_cost.bram,
            "resource cost shrank: {small_cost:?} -> {large_cost:?}"
        );
    }

    /// The trim set equals the set of statically decoded opcodes.
    #[test]
    fn trim_set_is_exactly_static_usage(program in arb_program()) {
        let kernel = build(&program);
        let trim = trim_kernel(&kernel).unwrap();
        let static_ops: std::collections::BTreeSet<Opcode> = kernel
            .instructions()
            .unwrap()
            .into_iter()
            .map(|(_, i)| i.opcode)
            .collect();
        let kept: std::collections::BTreeSet<Opcode> = trim.kept.iter().collect();
        prop_assert_eq!(kept, static_ops);
    }
}
