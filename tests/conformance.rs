//! Differential conformance suite: the six `scratch-check` oracles over
//! proptest-driven seeds, plus the fuzzer-proves-itself tests — inject a
//! deliberate semantic bug into the reference interpreter and demand the
//! campaign both *catches* it and *minimizes* it to a tiny repro.

use proptest::prelude::*;

use scratch::check::{
    check, check_with_bug, fuzz, minimize, Divergence, FuzzConfig, FuzzReport, GenKernel,
    InjectedBug, OracleKind, Outcome,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every oracle agrees on every seed (proptest explores beyond the
    /// pinned campaign below).
    #[test]
    fn all_oracles_agree(seed in any::<u64>()) {
        let gk = GenKernel::generate(seed);
        for oracle in OracleKind::ALL {
            match check(oracle, &gk) {
                Outcome::Agree => {}
                Outcome::Skip(why) => {
                    prop_assert!(false, "seed {seed:#x}: kernel did not assemble: {why}")
                }
                Outcome::Diverge(detail) => {
                    prop_assert!(false, "seed {seed:#x} oracle {oracle}: {detail}")
                }
            }
        }
    }
}

/// A pinned campaign (the same shape CI runs) is clean: every case runs
/// every oracle, nothing is skipped, nothing diverges.
#[test]
fn pinned_campaign_is_clean() {
    let report = fuzz(&FuzzConfig {
        seed: 0,
        cases: 40,
        ..FuzzConfig::default()
    });
    assert_eq!(report.cases, 40);
    assert_eq!(
        report.skipped, 0,
        "generator produced unassemblable kernels"
    );
    assert_eq!(
        report.checks,
        40 * OracleKind::ALL.len() as u64,
        "some oracle was skipped"
    );
    assert!(
        report.divergences.is_empty(),
        "campaign found divergences:\n{}",
        report.divergences[0].render()
    );
}

/// Find the first seed in `0..limit` where the reference oracle catches
/// `bug`, and return the minimized divergence report.
fn catch_bug(bug: InjectedBug, limit: u64) -> Divergence {
    for seed in 0..limit {
        let gk = GenKernel::generate(seed);
        if let Outcome::Diverge(detail) = check_with_bug(OracleKind::Reference, &gk, bug) {
            let minimized = minimize(&gk, OracleKind::Reference, bug);
            return Divergence::new(&gk, &minimized, OracleKind::Reference, detail);
        }
    }
    panic!("{bug:?} was never caught in {limit} seeds — the fuzzer has no teeth");
}

/// The acceptance test from the issue: a deliberately injected semantic
/// bug (a mutated VOP2 handler) must be caught and minimized to a repro
/// of at most ten body instructions.
#[test]
fn injected_bugs_are_caught_and_minimized() {
    for bug in [
        InjectedBug::XorFlipsBit0,
        InjectedBug::AddDropsCarry,
        InjectedBug::MinIsMax,
    ] {
        let d = catch_bug(bug, 64);
        assert!(
            d.minimized_ops <= 10,
            "{bug:?}: minimized repro still has {} body ops",
            d.minimized_ops
        );
        assert!(
            d.minimized_ops <= d.original_ops,
            "{bug:?}: minimization grew the kernel"
        );
        // The report must be self-contained: a repro command and the
        // minimized assembly.
        let text = d.render();
        assert!(
            text.contains("scratch-tool fuzz --seed"),
            "missing repro line"
        );
        assert!(text.contains(".kernel fuzz_"), "missing assembly listing");
    }
}

/// Campaigns are deterministic: same seed, same verdicts. (This is what
/// makes the `reproduce:` line in a divergence report trustworthy.)
#[test]
fn campaign_is_deterministic() {
    let run = || -> FuzzReport {
        fuzz(&FuzzConfig {
            seed: 0x5eed,
            cases: 8,
            bug: InjectedBug::XorFlipsBit0,
            ..FuzzConfig::default()
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.summary(), b.summary());
    let lines =
        |r: &FuzzReport| -> Vec<String> { r.divergences.iter().map(|d| d.render()).collect() };
    assert_eq!(lines(&a), lines(&b));
}
